"""Benchmark configuration: one measured round per harness.

Each benchmark regenerates a paper table/figure (the measured quantity is
the harness wall time) and asserts the figure's qualitative shape so a
regression in either speed or result fails the run.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a harness exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
