"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablations (Fig. 10/12), these sweep the knobs our
reproduction introduces, checking each is load-bearing:

- hardware generation (A100 vs V100 spec);
- the sharing-policy constants separating stream/MPS from RAP;
- the scheduler's demand-fitting (vs naive same-stage placement);
- inter-batch interleaving (§6.3);
- the hybrid CPU+GPU split of §10.
"""

import pytest

from repro.baselines import run_mps_baseline
from repro.core import RapPlanner
from repro.core.hybrid import HybridPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.gpusim import RAP_POLICY, V100_SPEC
from repro.preprocessing import build_plan


@pytest.fixture(scope="module")
def plan2():
    return build_plan(2, rows=4096)


def test_ablation_gpu_generation(run_once, plan2):
    """A100 vs V100: the slower part is slower, but RAP still hides."""
    graphs, schema = plan2
    model = model_for_plan(graphs, schema)

    def run():
        out = {}
        for name, spec_kwargs in (("a100", {}), ("v100", {"spec": V100_SPEC})):
            workload = TrainingWorkload(model, num_gpus=4, local_batch=4096, **spec_kwargs)
            out[name] = RapPlanner(workload).plan_and_evaluate(graphs)
        return out

    reports = run_once(run)
    assert reports["a100"].throughput > reports["v100"].throughput
    for rep in reports.values():
        assert rep.training_slowdown < 1.10


def test_ablation_scheduler_vs_naive_placement(run_once, plan2):
    """Resource-aware placement vs dumping all kernels at iteration start."""
    graphs, schema = plan2
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)

    def run():
        planner = RapPlanner(workload)
        plan = planner.plan(graphs)
        scheduled = planner.evaluate(plan)
        # Naive: same fused kernels, all released at stage 0.
        naive_assignments = []
        for per_gpu, trailing in zip(plan.assignments_per_gpu, plan.trailing_per_gpu):
            kernels = [k for idx in sorted(per_gpu) for k in per_gpu[idx]] + list(trailing)
            naive_assignments.append({0: kernels} if kernels else {})
        naive = workload.simulate(
            assignments_per_gpu=naive_assignments,
            input_comm_bytes=plan.input_comm_bytes,
            policy=RAP_POLICY,
        )
        return scheduled, naive

    scheduled, naive = run_once(run)
    assert scheduled.cluster_result.iteration_time_us <= naive.iteration_time_us * 1.001


def test_ablation_interleaving(run_once, plan2):
    """Inter-batch interleaving hides the host-side data preparation."""
    graphs, schema = plan2
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)

    def run():
        on = RapPlanner(workload, interleaving_enabled=True).plan_and_evaluate(graphs)
        off = RapPlanner(workload, interleaving_enabled=False).plan_and_evaluate(graphs)
        return on, off

    on, off = run_once(run)
    assert on.iteration_us < off.iteration_us
    assert on.timeline.hidden_fraction == pytest.approx(1.0)


def test_ablation_hybrid_split(run_once):
    """§10 hybrid: when GPU capacity is artificially constrained, the
    CPU split happens, keeps the CPU-hostile graphs on the GPUs, and the
    hybrid beats sending *everything* to the CPU pool."""
    from repro.baselines import run_torcharrow_baseline

    graphs, schema = build_plan(3, rows=4096)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)

    def run():
        hybrid = HybridPlanner(workload, capacity_fill=0.02).plan_and_evaluate(graphs)
        pure_cpu = run_torcharrow_baseline(graphs, workload)
        return hybrid, pure_cpu

    hybrid, pure_cpu = run_once(run)
    assert hybrid.split.num_cpu_features > 0
    assert hybrid.throughput > pure_cpu.throughput
    # With ample capacity the split disappears and RAP hides everything.
    full = HybridPlanner(workload, capacity_fill=0.9).plan_and_evaluate(graphs)
    assert full.split.num_cpu_features == 0
    assert full.throughput > hybrid.throughput


def test_sensitivity_sweep(run_once):
    """Calibration-sensitivity sweep: RAP's win must be robust across the
    efficiency, launch-overhead, and GPU-generation knobs."""
    from repro.experiments import sensitivity

    results = run_once(sensitivity.run)
    assert results["robust"]
    for r in results["rows"]:
        assert r["rap_over_mps"] > 1.0, r
        assert 0.9 <= r["rap_vs_ideal"] <= 1.001, r

    print()
    print(sensitivity.render(results))
