"""Online-calibration acceptance benchmarks.

Two bars, pinned as regressions:

- after the calibration window under injected per-op-type drift, the
  :class:`repro.telemetry.CalibratedPredictor` must cut the predictor's
  MAPE by at least ``MIN_MAPE_REDUCTION`` against the uncalibrated model;
- the drift-triggered replan must lower the plan's exposed preprocessing
  latency against continuing to execute the stale plan under the same
  drift, by at least ``MIN_EXPOSURE_REDUCTION``.
"""

import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan
from repro.runtime import FaultTolerantRuntime
from repro.telemetry import LatencyDrift, TelemetrySession

#: Required relative MAPE improvement after the calibration window.
MIN_MAPE_REDUCTION = 0.30
#: Required relative exposed-latency improvement of the recalibrated
#: replan over the stale plan at steady state.
MIN_EXPOSURE_REDUCTION = 0.10


@pytest.fixture(scope="module")
def clamp_setting():
    graphs, schema = build_plan(1, rows=1024)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=2, local_batch=1024
    )
    return graphs, workload


@pytest.fixture(scope="module")
def ngram_setting():
    # Plan 2 concentrates its Ngram ops in a minority of feature graphs, so
    # per-op drift loads the GPUs hosting them asymmetrically -- the case
    # where replanning (not just recalibrating) pays off.
    graphs, schema = build_plan(2, rows=1024)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=4, local_batch=1024
    )
    return graphs, workload


def run_with_drift(graphs, workload, drift, iterations=12, telemetry=None):
    runtime = FaultTolerantRuntime(
        RapPlanner(workload), graphs, telemetry=telemetry, drift_schedule=[drift]
    )
    report = runtime.run(iterations)
    return runtime, report


def test_bench_calibration_mape_reduction(run_once, clamp_setting):
    """Calibration cuts predictor MAPE >= 30% under injected Clamp drift."""
    graphs, workload = clamp_setting
    telemetry = TelemetrySession()
    drift = LatencyDrift("Clamp", 2.5, start_iteration=2)

    runtime, _ = run_once(
        run_with_drift, graphs, workload, drift, telemetry=telemetry
    )

    assert runtime._calibrated, "drift never triggered recalibration"
    raw = telemetry.predictor_mape
    calibrated = telemetry.calibrated_mape
    assert raw > 0.0
    reduction = 1.0 - calibrated / raw
    assert reduction >= MIN_MAPE_REDUCTION, (
        f"calibration reduced MAPE only {reduction:.1%} "
        f"({raw:.3f} -> {calibrated:.3f}); need {MIN_MAPE_REDUCTION:.0%}"
    )


def test_bench_drift_replan_lowers_exposure(run_once, ngram_setting):
    """The drift-triggered replan beats the stale plan's exposed latency."""
    graphs, workload = ngram_setting
    drift = LatencyDrift("Ngram", 8.0, start_iteration=2)

    # Stale baseline: same drift, no telemetry, so the plan never adapts.
    _, stale_report = run_with_drift(graphs, workload, drift)
    telemetry = TelemetrySession()
    runtime, calibrated_report = run_once(
        run_with_drift, graphs, workload, drift, telemetry=telemetry
    )

    assert calibrated_report.replans >= 1
    assert runtime._calibrated
    stale_exposed = stale_report.iterations[-1].exposed_us
    new_exposed = calibrated_report.iterations[-1].exposed_us
    assert stale_exposed > 0.0
    reduction = 1.0 - new_exposed / stale_exposed
    assert reduction >= MIN_EXPOSURE_REDUCTION, (
        f"replan reduced exposed latency only {reduction:.1%} "
        f"({stale_exposed:.1f} -> {new_exposed:.1f} us); "
        f"need {MIN_EXPOSURE_REDUCTION:.0%}"
    )
    # Pre-replan iterations of the calibrated run match the stale plan:
    # the win comes from the replan, not from different execution.
    assert calibrated_report.iterations[2].exposed_us == pytest.approx(
        stale_report.iterations[2].exposed_us
    )
