"""Micro-benchmarks for RAP's planning components.

These time the pieces a production deployment cares about -- the offline
search must stay "a few minutes" (§10's regeneration argument), and here
it is fractions of a second per plan.
"""

import pytest

from repro.core import (
    HorizontalFusionPass,
    OverlappingCapacityEstimator,
    CoRunningCostModel,
    RapPlanner,
    ResourceAwareScheduler,
)
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.milp import FusionInstance, solve_fusion
from repro.preprocessing import SyntheticCriteoDataset, build_plan, execute_graph_set


@pytest.fixture(scope="module")
def plan2():
    return build_plan(2, rows=4096)


@pytest.fixture(scope="module")
def plan3():
    return build_plan(3, rows=4096)


def test_bench_fusion_heuristic_plan3(benchmark, plan3):
    """Heuristic fusion planning over the 1548-op Plan 3."""
    graphs, _ = plan3
    fusion = HorizontalFusionPass()

    def run():
        return fusion.run(list(graphs), rows=4096)

    plan = benchmark(run)
    assert plan.max_fusion_degree >= 32


def test_bench_fusion_milp_small(benchmark):
    """Exact MILP fusion on a conflict-heavy 12-op instance."""
    inst = FusionInstance(
        op_types=["A", "B", "A", "B", "B", "A", "A", "B", "A", "B", "B", "A"],
        deps=[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11)],
    )

    def run():
        return solve_fusion(inst, exact=True)

    assignment = benchmark(run)
    assert assignment.fused_pair_count() >= solve_fusion(inst, exact=False).fused_pair_count()


def test_bench_scheduler_plan2(benchmark, plan2):
    """Algorithm-1 scheduling of Plan 2's fused kernel queue."""
    graphs, schema = plan2
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)
    kernels = HorizontalFusionPass().run(list(graphs), rows=4096).kernels
    cost_model = CoRunningCostModel(OverlappingCapacityEstimator())
    scheduler = ResourceAwareScheduler(cost_model)
    stages = workload.stages_for_gpu(0)

    schedule = benchmark(scheduler.schedule, stages, kernels)
    assert schedule.num_assigned > 0


def test_bench_full_planner_plan3(benchmark, plan3):
    """End-to-end RAP planning (mapping + fusion + scheduling), Plan 3, 8 GPUs."""
    graphs, schema = plan3
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=8, local_batch=4096)

    def run():
        return RapPlanner(workload).plan(graphs)

    plan = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(plan.num_kernels_per_gpu()) > 0


def test_bench_functional_execution_plan1(benchmark):
    """Numpy execution of Plan 1's 104 operators on a 4096-row batch."""
    graphs, schema = build_plan(1, rows=4096)
    dataset = SyntheticCriteoDataset(schema, seed=1)
    batch = dataset.batch(4096)

    out = benchmark(execute_graph_set, graphs, batch)
    assert out.size == 4096


def test_bench_corun_simulation(benchmark, plan2):
    """One simulated co-running iteration of Plan 2 on 4 GPUs."""
    graphs, schema = plan2
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)
    plan = RapPlanner(workload).plan(graphs)

    def run():
        return workload.simulate(
            assignments_per_gpu=plan.assignments_per_gpu,
            trailing_per_gpu=plan.trailing_per_gpu,
            input_comm_bytes=plan.input_comm_bytes,
        )

    result = benchmark(run)
    assert result.iteration_time_us > 0
