"""Data-path throughput benchmark: naive executor vs compiled engine.

Measures batches/sec for the op-by-op naive ``execute_graph_set`` against
the compiled fused engine on the pinned Table-3 plans and a random-plan
sweep, plus the §6.3 pipelined-feeder end-to-end win and the
``_config_noise`` memoization microbenchmark (satellite of ISSUE 5). Every
measurement lands in ``BENCH_data_path.json`` at the repo root so future
PRs have a perf trajectory to regress against; the pinned bars below make
a regression fail the run itself.

Bars are calibrated to this reproduction's reality (see DESIGN.md §12):
the naive executor is already fully vectorized per op (no per-row Python
loops survive), and CI runs single-core, so the compiled engine's win
comes from dispatch elimination, buffer pooling, and fused grouped calls
-- not from beating an interpreter loop. Honest measured speedups are
~1.5-2.4x depending on the op mix; the bars sit below the measured values
by a CI-noise margin.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ioutil import atomic_write_json
from repro.preprocessing import (
    ParallelEngine,
    PipelinedFeeder,
    SyntheticBatchSource,
    SyntheticCriteoDataset,
    available_backends,
    build_plan,
    compile_graph_set,
    execute_graph_set,
)
from repro.preprocessing.ops import _config_noise, make_op
from repro.preprocessing.random_plans import RandomPlanConfig, generate_random_plan

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_data_path.json"

#: Compiled-over-naive bar on the quickstart plan (plan 1 @ 4096 rows).
MIN_COMPILED_SPEEDUP = 1.7
#: Compiled-over-naive bar on the heavier plan 2 (Ngram-dominated).
MIN_SWEEP_SPEEDUP = 1.2
#: Random-plan sweep floors. Isolated runs measure 1.5-1.9x, but inside
#: the full suite the warm allocator narrows the gap (naive's temporary
#: allocations hit free lists grown by earlier tests, eroding part of the
#: arena's advantage) to 1.2-1.4x depending on machine load, so these are
#: win-guards -- compiled must beat naive on every random plan -- rather
#: than magnitude bars; the recorded speedups carry the magnitude.
MIN_SWEEP_SEED_SPEEDUP = 1.05
MIN_SWEEP_MEAN_SPEEDUP = 1.15
#: Fused grouped execution vs one-op-per-step compiled execution. On host
#: CPU the per-step dispatch cost is sub-microsecond, so fusion is
#: wall-clock neutral here (its win is modeled in the GPU cost model, not
#: the host path) -- this bar guards that grouping never becomes a real
#: regression, not that it is a speedup.
MIN_FUSION_RATIO = 0.85
#: Pipelined feeder end-to-end bar when per-batch prep is nontrivial.
MIN_PIPELINE_SPEEDUP = 1.3
#: Memoized _config_noise over the raw digest computation.
MIN_NOISE_MEMO_SPEEDUP = 2.0
#: Multi-core engine scaling gates (ISSUE 10). Gated only on hosts with
#: at least that many physical cores -- a 1-core CI container records the
#: curve and a skip notice instead of a meaningless failure.
MIN_PARALLEL_SPEEDUP_4W = 4.0
MIN_PARALLEL_SPEEDUP_8W = 6.0

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def write_bench_json():
    """Publish every recorded measurement to BENCH_data_path.json."""
    yield
    payload = {
        "benchmark": "data_path",
        "numpy": np.__version__,
        "bars": {
            "compiled_vs_naive_quickstart": MIN_COMPILED_SPEEDUP,
            "compiled_vs_naive_plan2": MIN_SWEEP_SPEEDUP,
            "sweep_per_seed": MIN_SWEEP_SEED_SPEEDUP,
            "sweep_mean": MIN_SWEEP_MEAN_SPEEDUP,
            "fused_vs_unfused": MIN_FUSION_RATIO,
            "pipelined_vs_sequential": MIN_PIPELINE_SPEEDUP,
            "config_noise_memo": MIN_NOISE_MEMO_SPEEDUP,
            "parallel_speedup_4_workers": MIN_PARALLEL_SPEEDUP_4W,
            "parallel_speedup_8_workers": MIN_PARALLEL_SPEEDUP_8W,
        },
        "results": RESULTS,
    }
    atomic_write_json(BENCH_PATH, payload)


def _best_s(fn, reps: int = 7) -> float:
    """Best-of-N wall time: robust to one-sided scheduler interference."""
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _engine_pair(plan_id: int, rows: int, seed: int = 17):
    graphs, schema = build_plan(plan_id, rows=rows)
    batch = SyntheticCriteoDataset(schema, seed=seed).batch(rows, index=0)
    program = compile_graph_set(graphs)
    # Warmup: first naive run touches every kernel; first compiled run
    # grows the arena to steady state.
    execute_graph_set(graphs, batch)
    program.execute(batch)
    return graphs, batch, program


def _record(key: str, naive_s: float, compiled_s: float, **extra) -> float:
    speedup = naive_s / compiled_s
    RESULTS[key] = {
        "naive_ms_per_batch": round(naive_s * 1e3, 4),
        "compiled_ms_per_batch": round(compiled_s * 1e3, 4),
        "naive_batches_per_s": round(1.0 / naive_s, 2),
        "compiled_batches_per_s": round(1.0 / compiled_s, 2),
        "speedup": round(speedup, 3),
        **extra,
    }
    return speedup


def test_bench_quickstart_naive_vs_compiled():
    """Plan 1 @ 4096 (the README quick-start workload)."""
    graphs, batch, program = _engine_pair(1, rows=4096)
    naive_s = _best_s(lambda: execute_graph_set(graphs, batch))
    compiled_s = _best_s(lambda: program.execute(batch))
    speedup = _record(
        "quickstart_plan1_rows4096",
        naive_s,
        compiled_s,
        steps=program.num_steps,
        ops=program.num_ops,
        max_fusion_degree=program.max_fusion_degree,
    )
    assert speedup >= MIN_COMPILED_SPEEDUP, (
        f"compiled engine only {speedup:.2f}x over naive "
        f"(bar {MIN_COMPILED_SPEEDUP}x): {naive_s * 1e3:.2f} ms vs "
        f"{compiled_s * 1e3:.2f} ms per batch"
    )


def test_bench_plan2_naive_vs_compiled():
    """Plan 2 @ 2048: Ngram-heavy, the least dispatch-bound plan."""
    graphs, batch, program = _engine_pair(2, rows=2048)
    naive_s = _best_s(lambda: execute_graph_set(graphs, batch))
    compiled_s = _best_s(lambda: program.execute(batch))
    speedup = _record("plan2_rows2048", naive_s, compiled_s, steps=program.num_steps)
    assert speedup >= MIN_SWEEP_SPEEDUP


def test_bench_fused_vs_unfused():
    """Fusion-aware grouping must not regress the host data path."""
    graphs, schema = build_plan(1, rows=4096)
    batch = SyntheticCriteoDataset(schema, seed=17).batch(4096, index=0)
    fused = compile_graph_set(graphs, fusion=True)
    unfused = compile_graph_set(graphs, fusion=False)
    fused.execute(batch)
    unfused.execute(batch)
    fused_s = _best_s(lambda: fused.execute(batch), reps=15)
    unfused_s = _best_s(lambda: unfused.execute(batch), reps=15)
    ratio = unfused_s / fused_s
    RESULTS["fused_vs_unfused_plan1_rows4096"] = {
        "fused_ms_per_batch": round(fused_s * 1e3, 4),
        "unfused_ms_per_batch": round(unfused_s * 1e3, 4),
        "fused_steps": fused.num_steps,
        "unfused_steps": unfused.num_steps,
        "ratio": round(ratio, 3),
    }
    assert ratio >= MIN_FUSION_RATIO, (
        f"fused execution regressed to {ratio:.3f}x of unfused "
        f"(non-regression bar {MIN_FUSION_RATIO}x)"
    )


def test_bench_random_plan_sweep():
    """Compiled wins across randomly generated workloads, not just pinned ones."""
    speedups = []
    for seed in (1, 2, 3):
        graphs, schema = generate_random_plan(RandomPlanConfig(seed=seed), rows=2048)
        batch = SyntheticCriteoDataset(schema, seed=seed).batch(2048, index=0)
        program = compile_graph_set(graphs)
        execute_graph_set(graphs, batch)
        program.execute(batch)
        naive_s = _best_s(lambda: execute_graph_set(graphs, batch), reps=5)
        compiled_s = _best_s(lambda: program.execute(batch), reps=5)
        speedups.append(
            _record(f"random_plan_seed{seed}_rows2048", naive_s, compiled_s)
        )
    RESULTS["random_plan_sweep"] = {
        "seeds": [1, 2, 3],
        "min_speedup": round(min(speedups), 3),
        "mean_speedup": round(statistics.mean(speedups), 3),
    }
    assert min(speedups) >= MIN_SWEEP_SEED_SPEEDUP
    assert statistics.mean(speedups) >= MIN_SWEEP_MEAN_SPEEDUP


def test_bench_pipelined_feeder():
    """§6.3 inter-batch interleaving: prep of batch i+1 hides under batch i.

    Per-batch prep is synthesis (~9 ms of host CPU at 4096 rows) plus a
    simulated storage-fetch latency (sleep, which releases the GIL exactly
    like real file/network I/O). The sequential baseline pays
    prep + execute per batch; the pipelined feeder overlaps them. Two
    workers are needed so the storage-fetch sleeps of consecutive batches
    overlap each other -- with one worker the per-batch floor is a single
    worker's full prep wall time.
    """
    graphs, schema = build_plan(1, rows=4096)
    program = compile_graph_set(graphs)
    source = SyntheticBatchSource(schema, batch_size=4096, seed=3, io_delay_s=0.012)
    num_batches = 12
    program.execute(source(0))  # warmup engine + arena

    t0 = time.perf_counter()
    for i in range(num_batches):
        program.execute(source(i))
    sequential_s = time.perf_counter() - t0

    with PipelinedFeeder(source, num_batches, depth=4, workers=2) as feeder:
        t0 = time.perf_counter()
        for batch in feeder:
            program.execute(batch)
        pipelined_s = time.perf_counter() - t0

    speedup = sequential_s / pipelined_s
    RESULTS["pipelined_feeder_plan1_rows4096"] = {
        "num_batches": num_batches,
        "io_delay_ms": 12.0,
        "depth": 4,
        "workers": 2,
        "sequential_ms_per_batch": round(sequential_s / num_batches * 1e3, 4),
        "pipelined_ms_per_batch": round(pipelined_s / num_batches * 1e3, 4),
        "speedup": round(speedup, 3),
    }
    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"pipelined feeder only {speedup:.2f}x over sequential "
        f"(bar {MIN_PIPELINE_SPEEDUP}x)"
    )


def test_bench_parallel_scaling():
    """Per-core scaling curve of the sharded shm engine (ISSUE 10).

    The curve (parallel engine at 1/2/4/8 workers vs the single-core
    compiled engine) is always measured and recorded; the 4x@4 / 6x@8
    gates only apply on hosts that actually have that many cores. On a
    1-core container the parallel engine cannot beat single-core (its
    workers time-slice one CPU and pay the shm handoff on top), so the
    gates skip with a notice instead of failing on physics.
    """
    cores = len(os.sched_getaffinity(0))
    rows = 4096
    graphs, schema = build_plan(1, rows=rows)
    batch = SyntheticCriteoDataset(schema, seed=17).batch(rows, index=0)
    program = compile_graph_set(graphs)
    program.execute(batch)
    single_s = _best_s(lambda: program.execute(batch), reps=5)

    curve = {}
    worker_counts = [1, 2, 4, 8]
    for workers in worker_counts:
        with ParallelEngine(graphs, workers=workers) as engine:
            engine.execute(batch)  # warm: spawn, per-shard compile, arenas
            par_s = _best_s(lambda: engine.execute(batch), reps=5)
            curve[str(workers)] = {
                "shards": engine.num_shards,
                "ms_per_batch": round(par_s * 1e3, 4),
                "batches_per_s": round(1.0 / par_s, 2),
                "speedup_vs_single_core": round(single_s / par_s, 3),
                "shm_bytes_in_flight": engine.shm_bytes_in_flight(),
                "worker_busy_fraction": engine.worker_busy_fractions(),
            }

    gates = {
        "4_workers": {
            "bar": MIN_PARALLEL_SPEEDUP_4W,
            "applied": cores >= 4,
            "measured": curve["4"]["speedup_vs_single_core"],
        },
        "8_workers": {
            "bar": MIN_PARALLEL_SPEEDUP_8W,
            "applied": cores >= 8,
            "measured": curve["8"]["speedup_vs_single_core"],
        },
    }
    RESULTS["parallel_scaling_plan1_rows4096"] = {
        "cores": cores,
        "backends_available": available_backends(),
        "single_core_ms_per_batch": round(single_s * 1e3, 4),
        "curve": curve,
        "gates": gates,
        "arena_stats": program.arena.stats(),
    }
    if cores >= 4:
        assert curve["4"]["speedup_vs_single_core"] >= MIN_PARALLEL_SPEEDUP_4W
    if cores >= 8:
        assert curve["8"]["speedup_vs_single_core"] >= MIN_PARALLEL_SPEEDUP_8W
    if cores < 4:
        pytest.skip(
            f"scaling gates need >= 4 cores, host has {cores}; "
            "curve recorded in BENCH_data_path.json"
        )


def test_bench_config_noise_memoization():
    """Satellite: the digest memo must beat recomputing the md5 every call."""
    op = make_op("SigridHash", ("s0",), "h", salt=1, max_value=101)
    key = ("SigridHash", 4096, 2.0) + op._params_key()
    calls = 20_000

    def memoized():
        for _ in range(calls):
            _config_noise(key)

    def uncached():
        for _ in range(calls):
            _config_noise.__wrapped__(key)

    _config_noise.cache_clear()
    _config_noise(key)  # populate
    memo_s = _best_s(memoized, reps=5)
    raw_s = _best_s(uncached, reps=5)
    speedup = raw_s / memo_s
    RESULTS["config_noise_memo"] = {
        "calls": calls,
        "memoized_us_per_call": round(memo_s / calls * 1e6, 4),
        "uncached_us_per_call": round(raw_s / calls * 1e6, 4),
        "speedup": round(speedup, 3),
    }
    assert speedup >= MIN_NOISE_MEMO_SPEEDUP


def test_bench_json_shape():
    """The artifact CI uploads is well-formed and self-describing."""
    # Runs after the measurements in file order; the session fixture writes
    # at teardown, so validate the payload we are about to publish.
    assert "quickstart_plan1_rows4096" in RESULTS
    json.dumps(RESULTS)  # everything must be JSON-serializable
