"""Benchmark: regenerate Figure 1 (opportunity and challenge profiling).

(a) training utilization swings, (b) NGram kernel demand vs width,
(c) MLP-forward latency when overlapped with growing NGram kernels.
"""

from repro.experiments import fig1


def test_fig1_profiles(run_once):
    results = run_once(fig1.run)

    # Fig. 1a: large underutilized area on both resources.
    a = results["fig1a"]
    assert max(a["sm_utilization"]) > 0.85 and min(a["sm_utilization"]) < 0.3
    assert max(a["dram_utilization"]) > 0.9 and min(a["dram_utilization"]) < 0.4

    # Fig. 1b: demand grows monotonically and saturates by 128 features.
    sweep = results["fig1b"]
    sms = [r["sm_utilization"] for r in sweep]
    assert sms == sorted(sms) and sms[-1] >= 0.99

    # Fig. 1c: overlapped MLP latency rises sharply at large widths while
    # small widths co-run for free.
    overlap = results["fig1c"]
    assert [r["mlp_fwd_us"] for r in overlap] == sorted(r["mlp_fwd_us"] for r in overlap)
    assert overlap[1]["slowdown"] < 1.02  # 8 features: fits the leftover
    assert overlap[-1]["slowdown"] > 1.15  # 128 features: heavy contention
    assert overlap[-1]["mlp_fwd_us"] - overlap[0]["mlp_fwd_us"] > 200.0

    print()
    print(fig1.render(results))
