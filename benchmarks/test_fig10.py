"""Benchmark: regenerate Figure 10 (speedup breakdown and optimality).

Six configurations on 8 GPUs across Plans 0-3. Shape checks: both partial
RAP variants beat MPS, full RAP beats both partials and Sequential by
about 2x, and lands within a few percent of Ideal (paper: 3.24% gap).
"""

from repro.experiments import fig10


def test_fig10_breakdown(run_once):
    results = run_once(fig10.run)
    for r in results["rows"]:
        assert r["sequential"] < r["mps"], r["plan"]
        assert r["mps"] < r["rap"], r["plan"]
        assert r["rap_wo_mapping"] <= r["rap"] * 1.001, r["plan"]
        assert r["rap_wo_fusion"] <= r["rap"] * 1.001, r["plan"]
        assert r["rap"] <= r["ideal"] * 1.001, r["plan"]

    s = results["summary"]
    assert s["rap_wo_mapping_over_mps"] > 1.05  # paper: 1.19x
    assert s["rap_wo_fusion_over_mps"] > 1.05  # paper: 1.15x
    assert 1.5 < s["rap_over_sequential"] < 3.0  # paper: 1.99x
    assert s["rap_vs_ideal"] > 0.93  # paper: 96.76%

    print()
    print(fig10.render(results))
