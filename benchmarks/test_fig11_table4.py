"""Benchmark: regenerate Figure 11 and Table 4 (turning-point study).

Latency stays flat then rises as NGram workload grows; the turning point
arrives earliest for the naive baseline, later with horizontal fusion, and
latest for full RAP. Table 4's utilization at the turning points rises in
the same order.
"""

from repro.experiments import fig11


def test_fig11_turning_points(run_once):
    results = run_once(fig11.run, workload_sizes=tuple(range(0, 161, 8)))
    tp = results["turning_points"]
    cap = max(r["ngram_ops"] for r in results["rows"]) + 1
    base = tp["baseline"] if tp["baseline"] is not None else cap
    fusion = tp["fusion"] if tp["fusion"] is not None else cap
    rap = tp["rap"] if tp["rap"] is not None else cap
    assert base < fusion < rap, tp

    t4 = results["table4"]
    assert t4["rap"]["gpu_utilization"] > t4["baseline"]["gpu_utilization"]
    assert t4["rap"]["sm_utilization"] > t4["baseline"]["sm_utilization"]

    print()
    print(fig11.render(results))
