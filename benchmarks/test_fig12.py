"""Benchmark: regenerate Figure 12 (mapping adaptability, skewed workload).

Data-parallel mapping pays per-feature input communication; data-locality
mapping piles work onto GPU 0; RAP's joint mapping beats both by multiples
(paper: 4.3x and 4.0x exposed-latency reductions).
"""

from repro.experiments import fig12


def test_fig12_mapping_adaptability(run_once):
    results = run_once(fig12.run)
    s = results["summary"]
    assert s["dp_over_rap"] > 1.5
    assert s["dl_over_rap"] > 1.5

    rows = {r["mapping"]: r for r in results["rows"]}
    assert rows["data_parallel"]["exposed_comm_us"] > 0
    assert rows["data_locality"]["exposed_comm_us"] == 0
    # DL's imbalance: GPU 0 carries nearly all the exposure.
    dl = rows["data_locality"]["per_gpu_exposed_us"]
    assert max(dl) > 3 * (sorted(dl)[-2] + 1)

    print()
    print(fig12.render(results))
