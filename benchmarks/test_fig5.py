"""Benchmark: regenerate Figure 5 (latency abstraction validation).

Standalone latency must track overlapping latency as one consistent trend
across operator types (5b), while warp count misaligns across types (5c).
"""

from repro.experiments import fig5


def test_fig5_latency_abstraction(run_once):
    results = run_once(fig5.run)
    assert results["latency_rank_correlation"] > 0.75
    # The per-op Fig.-5c misalignment: at the same warp count, Ngram costs
    # much more than an elementwise op.
    by_op = {}
    for r in results["rows"]:
        by_op.setdefault(r["op"], {})[r["rows"]] = r
    big = max(by_op["Ngram"])
    assert by_op["Ngram"][big]["standalone_us"] > 2 * by_op["Logit"][big]["standalone_us"]

    print()
    print(fig5.render(results))
