"""Benchmark: regenerate Figure 9 (end-to-end training throughput grid).

Runs the full paper grid -- four systems x {2, 4, 8} GPUs x Plans 0-3 x
batch sizes {4096, 8192} -- and checks the headline speedups' shape:
RAP ~2x over the CUDA-stream baseline, ~1.4-1.7x over MPS, an order of
magnitude over TorchArrow, and within a few percent of the ideal.
"""

from repro.experiments import fig9


def test_fig9_end_to_end_grid(run_once):
    results = run_once(fig9.run)
    rows = results["rows"]
    assert len(rows) == 4 * 2 * 3  # plans x batches x gpu counts

    for r in rows:
        assert r["rap"] > r["torcharrow"], r
        assert r["rap"] > r["cuda_stream"], r
        assert r["rap"] > r["mps"], r
        assert r["rap"] <= r["ideal"] * 1.001, r

    s = results["summary"]
    # Paper: 17.8x / 2.01x / 1.43x; accept the same order of magnitude.
    assert s["rap_over_torcharrow"] > 8.0
    assert 1.5 < s["rap_over_cuda_stream"] < 3.0
    assert 1.2 < s["rap_over_mps"] < 2.2
    assert s["rap_vs_ideal"] > 0.93  # paper: 96.76%

    print()
    print(fig9.render(results))


def test_fig9_rap_scaling(run_once):
    """RAP scales nearly linearly in GPU count (per-plan check)."""
    results = run_once(fig9.run, gpu_counts=(2, 4, 8), plan_ids=(1, 3), batch_sizes=(4096,))
    by_plan: dict[int, dict[int, float]] = {}
    for r in results["rows"]:
        by_plan.setdefault(r["plan"], {})[r["gpus"]] = r["rap"]
    for plan, tput in by_plan.items():
        assert tput[8] > 2.8 * tput[2], f"plan {plan} scaling {tput}"
