"""Streaming-ingest benchmarks: feeder overlap and backpressure bounds.

Two pinned properties land in ``BENCH_ingest.json`` at the repo root:

1. The rewritten queue-mode :class:`PipelinedFeeder` still delivers the
   §6.3 inter-batch interleaving win -- producing batch ``i+1`` (storage
   fetch + synthesis) overlaps executing batch ``i``, same bar as the
   futures-mode bench in ``test_data_path.py``.
2. Under a bursty arrival curve that outruns the consumer, the
   :class:`BackpressureQueue` keeps resident depth bounded under EVERY
   overload policy -- ``block`` by stalling the producer, ``drop_oldest``
   by shedding, ``spill_to_disk`` by paging to disk -- and each policy's
   drop/spill accounting is exact.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.forge import ArrivalCurve
from repro.ingest import (
    OVERLOAD_POLICIES,
    IngestMetrics,
    PacedSource,
    PipelinedFeeder,
    QueueConfig,
    shm_available,
    source,
)
from repro.ingest.shmio import leaked_ingest_segments
from repro.ioutil import atomic_write_json
from repro.preprocessing import build_plan, compile_graph_set

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_ingest.json"

#: Queue-mode feeder end-to-end overlap bar (same rationale as the
#: futures-mode bar in test_data_path.py: 12 ms of GIL-releasing fetch
#: per batch must hide under ~9 ms of synthesis + engine execute).
MIN_QUEUE_PIPELINE_SPEEDUP = 1.3
#: Memory bound under burst: resident depth may never exceed the queue
#: capacity (block / drop_oldest) or the spill high watermark.
BURST_CAPACITY = 4
BURST_HIGH_WATERMARK = 2

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def write_bench_json():
    """Publish every recorded measurement to BENCH_ingest.json."""
    yield
    payload = {
        "benchmark": "ingest",
        "numpy": np.__version__,
        "bars": {
            "queue_pipeline_speedup": MIN_QUEUE_PIPELINE_SPEEDUP,
            "burst_resident_capacity": BURST_CAPACITY,
            "burst_spill_high_watermark": BURST_HIGH_WATERMARK,
        },
        "results": RESULTS,
    }
    atomic_write_json(BENCH_PATH, payload)


def test_bench_queue_mode_feeder_overlap():
    """Queue-mode feeder hides producer latency under consumer work."""
    graphs, _ = build_plan(1, rows=4096)
    program = compile_graph_set(graphs)
    src = source("synthetic://kaggle?batch=4096&batches=12&seed=3&io_delay_ms=12")
    num_batches = len(src)
    program.execute(src.batch(0))  # warmup engine + arena

    t0 = time.perf_counter()
    for i in range(num_batches):
        program.execute(src(i))  # __call__ pays the fetch delay inline
    sequential_s = time.perf_counter() - t0

    metrics = IngestMetrics()
    feeder = PipelinedFeeder(
        src, depth=4, workers=2, queue=QueueConfig(capacity=4), metrics=metrics
    )
    with feeder:
        t0 = time.perf_counter()
        for batch in feeder:
            program.execute(batch)
        pipelined_s = time.perf_counter() - t0

    speedup = sequential_s / pipelined_s
    RESULTS["queue_mode_feeder_plan1_rows4096"] = {
        "num_batches": num_batches,
        "io_delay_ms": 12.0,
        "depth": 4,
        "workers": 2,
        "queue_capacity": 4,
        "sequential_ms_per_batch": round(sequential_s / num_batches * 1e3, 4),
        "pipelined_ms_per_batch": round(pipelined_s / num_batches * 1e3, 4),
        "producer_stall_ratio": round(metrics.producer_stall_ratio.value, 4),
        "speedup": round(speedup, 3),
    }
    assert speedup >= MIN_QUEUE_PIPELINE_SPEEDUP, (
        f"queue-mode feeder only {speedup:.2f}x over sequential "
        f"(bar {MIN_QUEUE_PIPELINE_SPEEDUP}x)"
    )


@pytest.mark.parametrize("policy", OVERLOAD_POLICIES)
def test_bench_bursty_arrival_keeps_memory_bounded(policy, tmp_path):
    """Acceptance pin: every overload policy bounds resident depth.

    A bursty arrival curve compresses inter-batch gaps to ~2.8 ms while
    the consumer holds at 5 ms/batch, so the producer outruns the
    consumer for the whole burst window; without backpressure the queue
    would grow ~burst_length deep.
    """
    curve = ArrivalCurve(shape="bursty", amplitude=0.8, burst_at=8, burst_length=24)
    num_batches = 40
    inner = source(f"synthetic://kaggle?batch=32&batches={num_batches}&seed=5")
    paced = PacedSource(inner, curve.delay_schedule(num_batches, 0.005))

    metrics = IngestMetrics()
    feeder = PipelinedFeeder(
        paced,
        depth=2,
        workers=1,  # serial production preserves the arrival pacing
        queue=QueueConfig(
            capacity=BURST_CAPACITY,
            policy=policy,
            high_watermark=BURST_HIGH_WATERMARK if policy == "spill_to_disk" else None,
            low_watermark=1 if policy == "spill_to_disk" else None,
            spill_dir=str(tmp_path),
        ),
        metrics=metrics,
    )
    delivered = 0
    t0 = time.perf_counter()
    with feeder:
        for batch in feeder:
            time.sleep(0.005)  # fixed-rate consumer
            delivered += 1
    wall_s = time.perf_counter() - t0

    peak = int(metrics.queue_peak_depth.value)
    drops = int(metrics.drops_total.value)
    spills = int(metrics.spills_total.value)
    bound = BURST_HIGH_WATERMARK if policy == "spill_to_disk" else BURST_CAPACITY
    RESULTS[f"bursty_arrival_{policy}"] = {
        "num_batches": num_batches,
        "delivered": delivered,
        "peak_resident_depth": peak,
        "resident_bound": bound,
        "drops": drops,
        "spills": spills,
        "wall_s": round(wall_s, 3),
        "producer_stall_ratio": round(metrics.producer_stall_ratio.value, 4),
    }
    assert peak <= bound, f"{policy}: resident depth {peak} exceeded bound {bound}"
    if policy == "drop_oldest":
        assert delivered + drops == num_batches  # shedding is fully accounted
    else:
        assert delivered == num_batches  # block and spill lose nothing
    if policy == "spill_to_disk":
        assert not list(Path(tmp_path).glob("spill-*.pkl"))  # all restored


def test_bench_process_mode_shm_vs_pickle():
    """Satellite (ISSUE 10): shm handoff vs pickled results in process mode.

    Measures per-batch delivery wall time for the same process-mode feeder
    with the shared-memory handoff on (default) and forced off via the
    feeder's fallback knob, and records the delta. On a 1-core host the
    two paths time-slice the same CPU, so this is recorded as a
    measurement -- the win-guard is only that shm delivery stays within
    2x of pickle (it removes a full serialize/deserialize of ~5 MB per
    batch, so in practice it is the faster path on any real machine).
    """
    if not shm_available():
        pytest.skip("shared-memory handoff unavailable on this host")
    src = source("synthetic://kaggle?batch=4096&batches=8&seed=9")

    def run(feeder: PipelinedFeeder) -> float:
        # Warm the pool (first batch pays worker spawn), then time an epoch.
        for _ in feeder:
            break
        t0 = time.perf_counter()
        n = sum(1 for _ in feeder)
        wall = time.perf_counter() - t0
        assert n == len(src)
        return wall / n

    with PipelinedFeeder(src, mode="process", workers=2, depth=2) as feeder:
        assert feeder.shm_handoff
        shm_s = run(feeder)
    pickled = PipelinedFeeder(src, mode="process", workers=2, depth=2)
    pickled.shm_handoff = False  # transparent fallback path
    with pickled:
        pickle_s = run(pickled)
    assert not leaked_ingest_segments()

    batch_bytes = src(0).nbytes()
    RESULTS["process_handoff_shm_vs_pickle"] = {
        "rows": 4096,
        "batch_payload_bytes": batch_bytes,
        "pickle_ms_per_batch": round(pickle_s * 1e3, 4),
        "shm_ms_per_batch": round(shm_s * 1e3, 4),
        "speedup_shm_over_pickle": round(pickle_s / shm_s, 3),
    }
    assert shm_s <= pickle_s * 2.0, (
        f"shm handoff pathologically slow: {shm_s * 1e3:.2f} ms vs "
        f"{pickle_s * 1e3:.2f} ms pickled"
    )
