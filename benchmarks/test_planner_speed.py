"""Planner fast-path benchmark: cold search vs warm-cache replan.

The acceptance bar for the fast path -- a warm plan-cache replan of an
unchanged workload must be at least 5x faster than the cold search that
populated it, while producing a bit-identical plan. The measured numbers
are attached to the pytest-benchmark JSON (``--benchmark-json``) so CI can
archive them per commit.
"""

import time

import pytest

from repro.core import PlanCache, RapPlanner, plan_to_json
from repro.core.adaptation import drift_graph_set
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.preprocessing import build_plan

#: The warm-over-cold bar the fast path must clear.
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def setting():
    graphs, schema = build_plan(3, rows=4096)
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=4, local_batch=4096)
    return graphs, workload


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_bench_warm_cache_speedup(benchmark, setting):
    """Warm plan-cache replans are >= 5x faster and bit-identical."""
    graphs, workload = setting
    planner = RapPlanner(workload, cache=PlanCache())
    cold_plan, cold_s = _timed(lambda: planner.plan(graphs))

    warm_plan = benchmark(planner.plan, graphs)

    assert planner.stats.cache_hits >= 1
    assert plan_to_json(warm_plan) == plan_to_json(cold_plan)
    warm_s = benchmark.stats.stats.mean
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_s"] = cold_s
    benchmark.extra_info["warm_s"] = warm_s
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm replan only {speedup:.1f}x faster than cold "
        f"({warm_s * 1e3:.2f} ms vs {cold_s * 1e3:.2f} ms)"
    )


def test_bench_disk_tier_speedup(benchmark, setting, tmp_path):
    """A process restart (fresh planner, same cache dir) still clears 5x."""
    graphs, workload = setting
    _, cold_s = _timed(lambda: RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs))

    def restart_and_plan():
        return RapPlanner(workload, cache=PlanCache(tmp_path)).plan(graphs)

    benchmark(restart_and_plan)
    warm_s = benchmark.stats.stats.mean
    speedup = cold_s / warm_s
    benchmark.extra_info["cold_s"] = cold_s
    benchmark.extra_info["warm_s"] = warm_s
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_WARM_SPEEDUP


def test_bench_incremental_replan(benchmark, setting):
    """Drifted replans beat from-scratch searches without a cache hit.

    Uniform drift misses the plan cache (latencies changed) but keeps the
    graph structure, so the fusion memo and the warm-started mapping do the
    work. The bar is speed *and* quality: within 10% of from-scratch.
    """
    graphs, workload = setting
    planner = RapPlanner(workload)
    base, scratch_s = _timed(lambda: planner.plan(graphs))
    drifted = drift_graph_set(graphs, 1.4)

    replanned = benchmark(planner.replan, drifted, previous=base)

    assert planner.stats.incremental_replans >= 1
    replan_s = benchmark.stats.stats.mean
    scratch = RapPlanner(workload).plan(drifted)
    benchmark.extra_info["scratch_s"] = scratch_s
    benchmark.extra_info["replan_s"] = replan_s
    assert replanned.predicted_exposed_us <= scratch.predicted_exposed_us * 1.10 + 1.0
