"""Robustness scorecard benchmark: a seeded forge smoke sweep.

Runs the scenario forge end-to-end over a pinned block of seeds -- generate,
audit, execute planner+runtime under correlated faults and drift, score --
and publishes the gated scorecard to ``BENCH_scenarios.json`` at the repo
root. The nightly CI job runs hundreds of seeds; this smoke block keeps the
same machinery honest on every PR: every generated scenario must clear the
admission audit, every admitted scenario must complete, and every scoring
dimension in ``GATE_CRITERIA`` must hold on the aggregate.

The measured quantity is the sweep wall time (inline, no subprocess
isolation, so the benchmark times the actual planner+runtime work rather
than fork overhead).
"""

from pathlib import Path

import pytest

from repro.forge import GATE_CRITERIA, SweepConfig, sweep, write_scorecard

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_scenarios.json"

#: Pinned smoke block: seeds 0..9 of the default forge distribution.
SMOKE_SEEDS = 10


_CARD: dict | None = None


@pytest.fixture
def scorecard(run_once):
    # The sweep runs once (timed, in whichever test executes first) and the
    # card is shared -- ``run_once`` is function-scoped, so a module-scoped
    # fixture cannot depend on it directly.
    global _CARD
    if _CARD is None:

        def run():
            config = SweepConfig(
                seeds=SMOKE_SEEDS, start_seed=0, jobs=0, resume_check_every=3
            )
            return sweep(config)

        _CARD = run_once(run)
        write_scorecard(_CARD, BENCH_PATH)
    return _CARD


def test_every_scenario_is_admitted(scorecard):
    """The default forge distribution never emits an unauditable scenario."""
    assert scorecard["admission"]["generated"] == SMOKE_SEEDS
    assert scorecard["admission"]["rejected"] == 0


def test_every_scenario_completes(scorecard):
    """No crashes, hangs, or planner failures across the smoke block."""
    assert scorecard["statuses"] == {"ok": SMOKE_SEEDS}


def test_adversity_is_actually_exercised(scorecard):
    """The smoke block is not a kiddie pool: faults and drift really fire."""
    coverage = scorecard["coverage"]
    assert coverage["drifting"] > 0
    assert coverage["correlated"] > 0
    assert coverage["resume_checked"] > 0


def test_all_gates_hold(scorecard):
    failing = [
        name for name, dim in scorecard["dimensions"].items() if not dim["pass"]
    ]
    assert not failing, {name: scorecard["dimensions"][name] for name in failing}
    assert scorecard["pass"]
    assert set(scorecard["dimensions"]) == set(GATE_CRITERIA)


def test_resume_integrity_was_checked(scorecard):
    """At least one scenario in the block replayed through a checkpoint."""
    checked = [
        row for row in scorecard["scenarios"] if row["resume"]["checked"]
    ]
    assert checked
    assert all(row["resume"]["identical"] for row in checked)
