"""Service benchmarks: warm re-admission speed and fleet utilization.

Two acceptance bars for the preprocessing service:

- a returning tenant (identical workload, fresh service process) must
  re-admit through the shared plan cache at least 5x faster than its
  cold admission;
- packing three concurrent tenants must place at least as much
  preprocessing work on the fleet's GPUs as the single-tenant baseline.

Numbers land in the pytest-benchmark JSON (``--benchmark-json``) for CI.
"""

from repro.service import PreprocessingService, TenantSpec

#: The warm-over-cold bar for re-admission through the plan cache.
MIN_WARM_SPEEDUP = 5.0


def _admit_once(root, cache_dir, name="bench"):
    service = PreprocessingService(
        root, num_gpus=4, telemetry=False, cache_dir=cache_dir
    )
    service.submit(
        TenantSpec(name=name, plan_id=2, local_batch=4096, num_iterations=1)
    )
    summary = service.run()
    entry = summary.job(name)
    return entry["admission_us"], entry["plan_source"]


def test_bench_warm_readmission_speedup(benchmark, tmp_path):
    """A returning tenant admits >= 5x faster than its cold admission."""
    cache_dir = tmp_path / "cache"
    cold_us, source = _admit_once(tmp_path / "cold", cache_dir)
    assert source == "cold"

    counter = iter(range(10_000))
    results = []

    def readmit():
        outcome = _admit_once(tmp_path / f"warm{next(counter)}", cache_dir)
        results.append(outcome)
        return outcome

    benchmark.pedantic(readmit, rounds=5, iterations=1)
    assert all(source == "warm-exact" for _, source in results)
    # Best-of-rounds: admission latency is the quantity under test, and
    # the minimum is the scheduler-noise-robust estimate of it.
    warm_us = min(us for us, _ in results)
    speedup = cold_us / warm_us
    benchmark.extra_info["cold_admission_us"] = cold_us
    benchmark.extra_info["warm_admission_us"] = warm_us
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm re-admission only {speedup:.1f}x faster than cold "
        f"({warm_us / 1e3:.2f} ms vs {cold_us / 1e3:.2f} ms)"
    )


def test_bench_fleet_utilization_three_tenants(run_once, tmp_path):
    """Three concurrent tenants keep >= the single-tenant GPU workload."""
    solo = PreprocessingService(tmp_path / "solo", num_gpus=2, telemetry=False)
    solo.submit(TenantSpec(name="a", plan_id=2, local_batch=2048, num_iterations=4))
    baseline = solo.run().fleet_gpu_kernel_us
    assert baseline > 0

    def packed():
        service = PreprocessingService(
            tmp_path / "packed", num_gpus=2, telemetry=False
        )
        service.submit(
            TenantSpec(name="a", plan_id=2, local_batch=2048, num_iterations=4)
        )
        service.submit(
            TenantSpec(name="b", plan_id=0, local_batch=1024, num_iterations=4,
                       priority="best_effort")
        )
        service.submit(
            TenantSpec(name="c", plan_id=1, local_batch=1024, num_iterations=4,
                       priority="best_effort")
        )
        return service.run()

    summary = run_once(packed)
    assert all(e["state"] == "completed" for e in summary.jobs)
    assert len(summary.jobs) == 3
    assert summary.fleet_gpu_kernel_us >= baseline, (
        f"3-tenant fleet places {summary.fleet_gpu_kernel_us:.0f}us of GPU "
        f"work per iteration vs {baseline:.0f}us single-tenant"
    )
