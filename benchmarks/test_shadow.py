"""Shadow-promotion benchmarks: guarded promotion vs blind drift-replan.

Two pinned properties land in ``BENCH_shadow.json`` at the repo root:

1. Under oscillating per-op drift -- the regime where an edge-triggered
   drift->replan flaps -- the guarded shadow loop beats the blind
   baseline on cumulative exposed preprocessing latency while replanning
   an order of magnitude less often.
2. A deliberately miscalibrated candidate -- promoted on a predicted win
   that a second drift immediately invalidates -- is rolled back to the
   anchor checkpoint within the probation window, never later.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import RapPlanner
from repro.dlrm import TrainingWorkload, model_for_plan
from repro.ioutil import atomic_write_json
from repro.preprocessing import build_plan
from repro.runtime import (
    CheckpointManager,
    FaultTolerantRuntime,
    RunJournal,
    ShadowConfig,
    ShadowPlanner,
)
from repro.telemetry import LatencyDrift, TelemetrySession

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_shadow.json"

NUM_GPUS = 4
BATCH = 2048

#: Blind-vs-guarded cumulative exposed latency: the guarded loop must
#: win by at least this ratio under oscillating drift.
MIN_GUARDED_EXPOSED_WIN = 1.05
#: ...while replanning at most this fraction as often as the blind loop.
MAX_GUARDED_REPLAN_FRACTION = 0.5

#: Oscillating drift: SigridHash 20x in alternating two-iteration
#: windows. The blind loop replans on every edge (drift onset AND the
#: overshoot when the learned correction outlives the drift); the
#: guarded loop's margin + hysteresis + cooldown absorb the flapping.
OSCILLATING = [
    LatencyDrift("SigridHash", 20.0, start_iteration=s, end_iteration=e)
    for s, e in ((2, 4), (6, 8), (10, 12), (14, 16), (18, 20))
]
OSCILLATING_ITERS = 20

#: Miscalibration chaos: the first drift produces a genuinely winning
#: candidate; the second lands mid-probation and invalidates the
#: prediction it was promoted on.
CHAOS = [
    LatencyDrift("SigridHash", 20.0, start_iteration=2),
    LatencyDrift("MapId", 20.0, start_iteration=6),
]
CHAOS_ITERS = 14

RESULTS: dict = {}


@pytest.fixture(scope="session", autouse=True)
def write_bench_json():
    """Publish every recorded measurement to BENCH_shadow.json."""
    yield
    payload = {
        "benchmark": "shadow",
        "numpy": np.__version__,
        "bars": {
            "guarded_exposed_win": MIN_GUARDED_EXPOSED_WIN,
            "guarded_replan_fraction": MAX_GUARDED_REPLAN_FRACTION,
            "rollback_within_probation_iters": ShadowConfig().probation_iters,
        },
        "results": RESULTS,
    }
    atomic_write_json(BENCH_PATH, payload)


def run_scenario(schedule, iterations, shadow=None, run_dir=None):
    graphs, schema = build_plan(2, rows=BATCH)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=NUM_GPUS, local_batch=BATCH
    )
    journal = RunJournal(run_dir / "journal.jsonl") if run_dir else None
    runtime = FaultTolerantRuntime(
        RapPlanner(workload),
        graphs,
        telemetry=TelemetrySession(),
        drift_schedule=list(schedule),
        shadow=shadow,
        journal=journal,
    )
    kwargs = {}
    if run_dir is not None:
        kwargs = {"checkpoints": CheckpointManager(run_dir), "checkpoint_every": 5}
    report = runtime.run(iterations, **kwargs)
    return report, runtime


def test_bench_guarded_promotion_beats_blind_replan(run_once):
    """Figure: exposed latency + replan churn, blind vs guarded."""
    blind_report, _ = run_scenario(OSCILLATING, OSCILLATING_ITERS)
    guarded_report, guarded = run_once(
        lambda: run_scenario(
            OSCILLATING, OSCILLATING_ITERS, shadow=ShadowPlanner()
        )
    )

    def exposed(report):
        return float(sum(r.exposed_us for r in report.iterations))

    def replans(report):
        return sum(1 for r in report.iterations if r.replanned)

    blind_exposed, blind_replans = exposed(blind_report), replans(blind_report)
    guarded_exposed, guarded_replans = exposed(guarded_report), replans(guarded_report)
    win = blind_exposed / guarded_exposed

    RESULTS["oscillating_drift"] = {
        "iterations": OSCILLATING_ITERS,
        "blind_exposed_us": round(blind_exposed, 1),
        "guarded_exposed_us": round(guarded_exposed, 1),
        "exposed_win": round(win, 3),
        "blind_replans": blind_replans,
        "guarded_replans": guarded_replans,
        "guarded_counters": guarded.shadow.counters(),
    }

    assert win >= MIN_GUARDED_EXPOSED_WIN, (
        f"guarded exposed win {win:.3f} below bar {MIN_GUARDED_EXPOSED_WIN}"
    )
    assert guarded_replans <= MAX_GUARDED_REPLAN_FRACTION * blind_replans, (
        f"guarded loop replanned {guarded_replans}x vs blind {blind_replans}x"
    )


def test_bench_miscalibrated_candidate_rolled_back_in_probation(tmp_path, run_once):
    """Figure: rollback latency of a promotion whose prediction went stale."""
    shadow = ShadowPlanner()
    _, runtime = run_once(
        lambda: run_scenario(CHAOS, CHAOS_ITERS, shadow=shadow, run_dir=tmp_path)
    )

    records = RunJournal.read(tmp_path / "journal.jsonl")
    promotions = [r for r in records if r["type"] == "promotion"]
    results = [r for r in records if r["type"] == "promotion_result"]
    assert len(promotions) == 1 and len(results) == 1
    outcome = results[0]

    probation_len = outcome["iteration"] - promotions[0]["iteration"]
    RESULTS["miscalibrated_rollback"] = {
        "iterations": CHAOS_ITERS,
        "promotion_iteration": promotions[0]["iteration"],
        "predicted_win": promotions[0]["predicted_win"],
        "rollback_iteration": outcome["iteration"],
        "realized_win": outcome["realized_win"],
        "probation_len": probation_len,
        "counters": runtime.shadow.counters(),
    }

    assert outcome["outcome"] == "rolled_back"
    assert outcome["realized_win"] < 0 < promotions[0]["predicted_win"]
    assert probation_len <= ShadowConfig().probation_iters, (
        f"rollback took {probation_len} iterations, past the "
        f"{ShadowConfig().probation_iters}-iteration probation window"
    )
