"""Benchmark: regenerate Table 5 (latency-predictor accuracy).

Trains per-family GBDTs on ~11K sampled kernel configurations (9:1 split)
and checks every family clears the paper's 92.9-98.5% accuracy band.
"""

from repro.experiments import table5
from repro.experiments.table5 import PAPER_ACCURACY


def test_table5_predictor_accuracy(run_once):
    results = run_once(table5.run)
    accuracy = results["accuracy"]
    assert set(accuracy) == set(PAPER_ACCURACY)
    for family, acc in accuracy.items():
        assert acc >= 0.90, f"{family}: {acc:.3f}"

    print()
    print(table5.render(results))
