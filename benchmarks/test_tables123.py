"""Benchmark: regenerate the setup tables (1: operators, 2: models, 3: plans)."""

from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    run_table1,
    run_table2,
    run_table3,
)


def test_table1_operators(run_once):
    results = run_once(run_table1)
    assert len(results["rows"]) == 11
    print()
    print(render_table1(results))


def test_table2_models(run_once):
    results = run_once(run_table2)
    assert {r["dataset"] for r in results["rows"]} == {"Criteo Kaggle", "Criteo Terabyte"}
    print()
    print(render_table2(results))


def test_table3_plans(run_once):
    results = run_once(run_table3)
    assert [r["total_ops"] for r in results["rows"]] == [104, 104, 384, 1548]
    print()
    print(render_table3(results))
