#!/usr/bin/env python
"""Author a custom preprocessing plan and let RAP schedule it.

Shows the library the way a downstream user would adopt it: define your
own per-feature operator graphs (an ads-ranking-style workload mixing
normalization and cross-feature generation), map them onto a training job,
and inspect where RAP placed every fused kernel.

Run:  python examples/custom_preprocessing_plan.py
"""

from repro import RapPlanner, SyntheticCriteoDataset, TrainingWorkload, model_for_plan
from repro.experiments.reporting import format_table
from repro.preprocessing import (
    DENSE_CONSUMER,
    CriteoSchema,
    FeatureGraph,
    GraphSet,
    execute_graph_set,
)
from repro.preprocessing.ops import (
    Bucketize,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    Ngram,
    SigridHash,
)


def build_custom_plan(rows: int) -> tuple[GraphSet, CriteoSchema]:
    """An ads-ranking style workload: 8 dense + 12 sparse + 2 crosses."""
    schema = CriteoSchema(name="ads_ranking", num_dense=8, num_sparse=12,
                          total_hash_size=40_000_000, avg_list_length=3.0)
    graphs = []
    # Continuous features: impute, then squash.
    for i in range(schema.num_dense):
        graphs.append(
            FeatureGraph(
                name=f"user_age_bucket_{i}",
                ops=[
                    FillNull(inputs=(f"dense_{i}",), output=f"d{i}_fill", fill_value=0.5),
                    Logit(inputs=(f"d{i}_fill",), output=f"d{i}_norm"),
                ],
                consumer=DENSE_CONSUMER,
            )
        )
    # Categorical features: hash, truncate the history, clamp.
    for j in range(schema.num_sparse):
        graphs.append(
            FeatureGraph(
                name=f"item_history_{j}",
                ops=[
                    SigridHash(inputs=(f"sparse_{j}",), output=f"s{j}_hash", max_value=2_000_000),
                    FirstX(inputs=(f"s{j}_hash",), output=f"s{j}_recent", x=5),
                    Clamp(inputs=(f"s{j}_recent",), output=f"s{j}_out", upper=1_999_999),
                ],
                consumer=f"table:sparse_{j}",
                avg_list_length=schema.avg_list_length,
            )
        )
    # Cross features: n-grams over item/category histories.
    for k, feats in enumerate([(0, 1, 2), (3, 4, 5)]):
        inputs = tuple(f"sparse_{j}" for j in feats)
        graphs.append(
            FeatureGraph(
                name=f"item_category_cross_{k}",
                ops=[
                    Ngram(inputs=inputs, output=f"x{k}_gram", n=2, out_hash_size=5_000_000),
                    SigridHash(inputs=(f"x{k}_gram",), output=f"x{k}_out", max_value=3_000_000),
                ],
                consumer=f"table:sparse_{feats[0]}",
                avg_list_length=schema.avg_list_length * len(feats),
            )
        )
    return GraphSet(graphs, rows=rows), schema


def main() -> None:
    graphs, schema = build_custom_plan(rows=4096)
    print(f"Custom plan: {graphs.summary()}")

    # Functional sanity check on real synthetic data.
    batch = SyntheticCriteoDataset(schema, seed=3).batch(4096)
    out = execute_graph_set(graphs, batch)
    print(f"Executed functionally: {len(out.dense) + len(out.sparse)} columns materialized")

    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=4096)
    planner = RapPlanner(workload)
    plan = planner.plan(graphs)
    report = planner.evaluate(plan)

    # Where did every fused kernel land?
    rows = []
    for gpu in range(workload.num_gpus):
        stages = workload.stages_for_gpu(gpu)
        for stage_idx, kernels in sorted(plan.assignments_per_gpu[gpu].items()):
            for k in kernels:
                rows.append([gpu, stages[stage_idx].name, k.name,
                             k.duration_us, k.meta.get("members", 1)])
        for k in plan.trailing_per_gpu[gpu]:
            rows.append([gpu, "(exposed)", k.name, k.duration_us, k.meta.get("members", 1)])
    print()
    print(format_table(["gpu", "co-runs with", "kernel", "latency (us)", "fused ops"], rows,
                       title="RAP co-running schedule"))
    print()
    print(
        f"Iteration {report.iteration_us:,.0f} us "
        f"(ideal {workload.ideal_iteration_us():,.0f} us, "
        f"slowdown {report.training_slowdown:.3f}x)"
    )


if __name__ == "__main__":
    main()
