#!/usr/bin/env python
"""Online input-distribution drift and RAP's plan regeneration (§10).

Simulates weeks of online training during which users' average id-list
lengths drift upward (e.g. longer interaction histories), feeding each
observed distribution to the :class:`repro.core.AdaptiveReplanner`. Small
drift keeps the current plan; once drift crosses the threshold the plan is
regenerated -- a sub-second search here, "a few minutes" on the paper's
hardware, either way negligible against data-shift timescales of days.

Run:  python examples/drift_adaptation.py
"""

from repro import TrainingWorkload, build_plan, model_for_plan
from repro.core import AdaptiveReplanner
from repro.experiments.reporting import format_table


def main() -> None:
    graphs, schema = build_plan(1, rows=4096)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)
    replanner = AdaptiveReplanner(workload, graphs, drift_threshold=0.20)

    # A drifting input distribution: list lengths creep up 8% per "week",
    # with one sharp jump (a new surface launches in week 6).
    schedule = [1.00, 1.05, 1.12, 1.18, 1.26, 1.35, 2.10, 2.15, 2.20]
    rows = []
    for week, scale in enumerate(schedule):
        event = replanner.observe(scale)
        rows.append(
            [
                f"week {week}",
                f"{scale:.2f}x",
                "regenerated" if event.replanned else "kept",
                f"{event.regeneration_seconds * 1000:.0f} ms" if event.replanned else "-",
                event.iteration_us,
                event.training_slowdown,
            ]
        )

    print(
        format_table(
            ["time", "avg list length", "plan", "regen cost", "iteration (us)", "slowdown"],
            rows,
            title="Handling runtime variability (§10): drift-triggered replanning",
        )
    )
    replans = sum(1 for e in replanner.events if e.replanned)
    print(f"\n{replans} regenerations over {len(schedule)} observations; "
          f"worst training slowdown {max(e.training_slowdown for e in replanner.events):.3f}x")


if __name__ == "__main__":
    main()
