#!/usr/bin/env python
"""Surviving kernel failures: the runtime's graceful-degradation ladder.

Executes a searched co-running plan through
:class:`repro.runtime.FaultTolerantRuntime` while injecting faults against
one placed preprocessing kernel:

1. a *deep* failure -- in-place retries exhaust the per-stage deadline, so
   the kernel is re-sharded into smaller pieces that still co-run;
2. a *persistent* failure -- no GPU placement survives, so the ladder falls
   through trailing and sequential execution down to CPU fallback, and the
   host worker pool keeps paying for the kernel afterwards;
3. a seeded stochastic soak, the deterministic way resilience is measured
   (same seed => same fault schedule => same report, bit for bit).

Run:  python examples/fault_tolerant_run.py
"""

from repro import TrainingWorkload, build_plan, model_for_plan
from repro.core import RapPlanner
from repro.runtime import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    KERNEL_FAILURE,
    LatencyWatchdog,
)


class ScriptedInjector:
    """Replays a hand-written schedule (the seeded FaultInjector draws its
    own; scripting keeps this walkthrough deterministic and readable)."""

    def __init__(self, schedule):
        self.schedule = dict(schedule)

    def faults_for_iteration(self, iteration, plan):
        return list(self.schedule.get(iteration, []))


def first_placed_kernel(plan):
    for gpu, per_gpu in enumerate(plan.assignments_per_gpu):
        for stage in sorted(per_gpu):
            for kernel in per_gpu[stage]:
                return gpu, stage, kernel
    raise SystemExit("plan has no co-run kernels")


def quiet_watchdog():
    # Thresholds high enough that this walkthrough never replans mid-act.
    return LatencyWatchdog(error_threshold=1e9, fault_rate_threshold=1e9)


def main() -> None:
    graphs, schema = build_plan(1, rows=2048)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=2048)
    planner = RapPlanner(workload)
    plan = planner.plan(graphs)
    clean = planner.evaluate(plan)
    gpu, stage, kernel = first_placed_kernel(plan)
    print(f"clean iteration: {clean.iteration_us:.1f} us; "
          f"victim kernel {kernel.name!r} on GPU {gpu}, stage {stage}\n")

    # -- Act 1: deep failure -> retries exhausted -> re-shard ------------
    deep = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                      kernel=kernel.name, recover_after=10)
    runtime = FaultTolerantRuntime(planner, graphs, plan=plan,
                                   injector=ScriptedInjector({0: [deep]}),
                                   watchdog=quiet_watchdog())
    record, _, transitions = runtime.run_iteration(0)
    print("Act 1 -- deep kernel failure (needs 10 attempts, deadline allows "
          f"{record.retries}):")
    for t in transitions:
        print(f"  {t.from_rung} -> {t.to_rung}: {t.reason}")
    print(f"  iteration {record.iteration_us:.1f} us "
          f"(+{record.iteration_us - clean.iteration_us:.1f} us recovery)\n")

    # -- Act 2: persistent failure -> full descent to CPU fallback -------
    persistent = FaultEvent(KERNEL_FAILURE, iteration=0, gpu=gpu, stage=stage,
                            kernel=kernel.name, recover_after=-1)
    runtime = FaultTolerantRuntime(planner, graphs, plan=plan,
                                   injector=ScriptedInjector({0: [persistent]}),
                                   watchdog=quiet_watchdog())
    report = runtime.run(3)
    print("Act 2 -- persistent kernel failure:")
    print(f"  recovery path: {' -> '.join(report.recovery_path(kernel.name, 0))}")
    print(f"  evicted to host pool: {[k.name for k in runtime.cpu_evicted]}")
    for r in report.iterations:
        print(f"  iteration {r.iteration}: {r.iteration_us:.1f} us, "
              f"cpu fallback {r.cpu_fallback_us:.1f} us")
    print()

    # -- Act 3: the seeded soak ------------------------------------------
    injector = FaultInjector([FaultSpec(KERNEL_FAILURE, rate=0.4, persistence=0.1)],
                             seed=42)
    runtime = FaultTolerantRuntime(planner, graphs, plan=plan, injector=injector)
    report = runtime.run(30)
    print("Act 3 -- seeded soak (kernel_failure @ 0.4/iter, seed 42):")
    print("  " + report.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
