#!/usr/bin/env python
"""Explore horizontal-fusion planning: exact MILP vs greedy heuristic.

Reproduces the §6.1 conflict case interactively: two chains order FirstX
and SigridHash oppositely, so the two fusion opportunities cannot both be
taken. Greedy ASAP scheduling finds neither; the MILP (branch-and-bound
over the linearized quadratic objective) delays one chain and fuses one
pair. Then scales up to show the heuristic on a plan-sized instance.

Run:  python examples/fusion_explorer.py
"""

import time

from repro.experiments.reporting import format_table
from repro.milp import FusionInstance, build_fusion_milp, solve_fusion
from repro.preprocessing import build_plan
from repro.core import build_fusion_instance


def show_assignment(title: str, assignment) -> None:
    rows = [
        [op_type, step, len(members), members]
        for op_type, step, members in assignment.ordered_groups()
    ]
    print(
        format_table(
            ["op type", "time step", "degree", "member ops"],
            rows,
            title=(
                f"{title}: {assignment.fused_pair_count()} co-scheduled pairs, "
                f"quadratic objective {assignment.quadratic_objective()} "
                f"(method: {assignment.method})"
            ),
        )
    )
    print()


def main() -> None:
    # --- The paper's conflict case (Fig. 7 discussion) -----------------
    conflict = FusionInstance(
        op_types=["FirstX", "SigridHash", "SigridHash", "FirstX"],
        deps=[(0, 1), (2, 3)],  # FirstX->SigridHash vs SigridHash->FirstX
    )
    greedy = solve_fusion(conflict, exact=False)
    exact = solve_fusion(conflict, exact=True)
    show_assignment("Greedy ASAP on the conflict case", greedy)
    show_assignment("Exact MILP on the conflict case", exact)

    problem, _ = build_fusion_milp(conflict)
    print(
        f"MILP size: {problem.num_vars} variables, "
        f"{problem.num_constraints} constraints (after linearization)\n"
    )

    # --- Plan-scale heuristic fusion ------------------------------------
    for plan_id in (1, 2, 3):
        graphs, _ = build_plan(plan_id, rows=4096)
        instance, _ = build_fusion_instance(list(graphs))
        start = time.perf_counter()
        assignment = solve_fusion(instance)  # auto: heuristic at this size
        elapsed = time.perf_counter() - start
        print(
            f"Plan {plan_id}: {instance.num_ops} ops -> "
            f"{len(assignment.groups())} fused kernels "
            f"(max degree {assignment.max_fusion_degree()}, "
            f"{assignment.fused_pair_count()} pairs) in {elapsed * 1000:.0f} ms"
        )


if __name__ == "__main__":
    main()
