#!/usr/bin/env python
"""Online DLRM training: streaming batches through a compiled RAP plan.

The scenario from the paper's introduction: freshly generated click data
arrives continuously and the model retrains online. This example

1. searches a RAP plan once (the offline phase),
2. compiles it to an executable Python module (the paper's code-generation
   step), and
3. streams synthetic Criteo batches through the generated preprocessing
   schedule iteration by iteration, printing the inter-batch interleaving
   timeline (Fig. 8) and the steady-state throughput.

Run:  python examples/online_training_pipeline.py [num_iterations]
"""

import sys

from repro import (
    RapPlanner,
    SyntheticCriteoDataset,
    TrainingWorkload,
    build_plan,
    generate_plan_module,
    model_for_plan,
)
from repro.core import load_plan_module
from repro.experiments.reporting import format_table


def main(num_iterations: int = 5) -> None:
    graphs, schema = build_plan(1, rows=4096)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=2, local_batch=4096)
    planner = RapPlanner(workload)

    # Offline: search the plan and compile it to code.
    plan = planner.plan(graphs)
    source = generate_plan_module(plan)
    module = load_plan_module(source)
    print(
        f"Compiled plan: {sum(plan.num_kernels_per_gpu())} kernels across "
        f"{workload.num_gpus} GPUs, {len(source.splitlines())} lines of generated code"
    )

    # Online: stream batches. Each iteration trains on batch i while the
    # generated schedule preprocesses batch i+1 and the host prepares i+2.
    report = planner.evaluate(plan)
    dataset = SyntheticCriteoDataset(schema, seed=7)
    timeline = planner.interleaver.pipeline_timeline(
        num_iterations, report.cluster_result.iteration_time_us, plan.data_prep_per_gpu[0]
    )

    processed = 0
    for row in timeline:
        batch_index = int(row["preprocessing_batch"])
        batch = dataset.batch(workload.local_batch, index=batch_index)
        for gpu in module.SCHEDULE:
            module.run_gpu(gpu, batch)
        processed += batch.size
        row["columns_produced"] = len(batch.dense) + len(batch.sparse)

    print()
    print(
        format_table(
            ["iter", "t_start (us)", "training batch", "preprocessing batch",
             "preparing batch", "columns"],
            [
                [r["iteration"], r["t_start_us"], r["training_batch"],
                 r["preprocessing_batch"], r["preparing_batch"], r["columns_produced"]]
                for r in timeline
            ],
            title="Inter-batch interleaving timeline (Fig. 8)",
        )
    )
    print()
    print(
        f"Steady state: {report.iteration_us:,.0f} us/iteration, "
        f"{report.throughput:,.0f} samples/s "
        f"({100 * report.timeline.hidden_fraction:.0f}% of host data prep hidden); "
        f"preprocessed {processed} samples functionally."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
