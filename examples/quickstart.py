#!/usr/bin/env python
"""Quickstart: hide DLRM input preprocessing inside training with RAP.

Builds the paper's Plan 1 workload (Criteo-Terabyte recipe), derives the
matching DLRM, searches a RAP co-running plan for a 4-GPU node, and
compares the end-to-end throughput against the four baseline systems.

Run:  python examples/quickstart.py
"""

from repro import (
    RapPlanner,
    TrainingWorkload,
    build_plan,
    model_for_plan,
    run_cuda_stream_baseline,
    run_mps_baseline,
    run_sequential_baseline,
    run_torcharrow_baseline,
)
from repro.experiments.reporting import format_table


def main() -> None:
    # 1. The preprocessing workload: Table 3's Plan 1 at batch size 4096.
    graphs, schema = build_plan(1, rows=4096)
    print(f"Preprocessing plan: {graphs.summary()}")

    # 2. The training job: the matching DLRM on 4 simulated A100s.
    model = model_for_plan(graphs, schema)
    workload = TrainingWorkload(model, num_gpus=4, local_batch=4096)
    print(
        f"DLRM: {model.num_tables} embedding tables, "
        f"ideal iteration {workload.ideal_iteration_us():,.0f} us"
    )

    # 3. Search the RAP plan (mapping + fusion + Algorithm-1 schedule) and
    #    simulate one steady-state iteration.
    planner = RapPlanner(workload)
    report = planner.plan_and_evaluate(graphs)
    print(
        f"RAP: iteration {report.iteration_us:,.0f} us, "
        f"training slowdown {report.training_slowdown:.3f}x, "
        f"exposed preprocessing {report.exposed_preprocessing_us:.0f} us"
    )

    # 4. Compare against the paper's baselines.
    rows = []
    for name, baseline in (
        ("TorchArrow (CPU)", run_torcharrow_baseline),
        ("Sequential GPU", run_sequential_baseline),
        ("CUDA stream", run_cuda_stream_baseline),
        ("MPS", run_mps_baseline),
    ):
        b = baseline(graphs, workload)
        rows.append([name, b.throughput, report.throughput / b.throughput])
    rows.append(["RAP", report.throughput, 1.0])
    rows.append(["Ideal (no preprocessing)", workload.ideal_throughput(),
                 report.throughput / workload.ideal_throughput()])
    print()
    print(format_table(["system", "throughput (samples/s)", "RAP speedup"], rows))


if __name__ == "__main__":
    main()
