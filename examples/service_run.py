"""Multi-tenant preprocessing service: admit, carve, preempt, resume, reuse.

Four tenants share one simulated 2-GPU fleet:

- ``alice`` -- a production job (weight 4, relaxed deadline) on the heavy
  Table-3 plan 2 workload.
- ``bob`` and ``dave`` -- best-effort jobs on the light plan 0 workload;
  the only preemption candidates.
- ``carol`` -- a standard-priority job with a *strict* deadline arriving
  mid-run. At her weighted fair share (2/8 of the leftover) the carved
  plan exposes too much preprocessing latency, so the service evicts the
  most recently admitted best-effort tenant (``dave``) to CPU fallback,
  re-carves, and admits her at 2/7.

``dave`` keeps making (slow) progress on the CPU ladder rung and resumes
onto the GPUs when the higher classes complete. Afterwards a *second*
service process on the same root re-admits alice's exact workload (a
disk-tier exact-key plan hit) and an isomorphic renamed twin (a
tenant-invariant hit, renamed into the new tenant's namespace without a
single solver call) -- both in a fraction of the cold admission time.

Run with: ``PYTHONPATH=src python examples/service_run.py``
"""

import os
import tempfile
from pathlib import Path

from repro.service import PreprocessingService, TenantSpec


def main() -> None:
    run_dir = os.environ.get("RAP_SERVICE_RUN_DIR")
    root = Path(run_dir) if run_dir else Path(tempfile.mkdtemp(prefix="rap-service-"))
    service = PreprocessingService(root, num_gpus=2)

    service.submit(TenantSpec(name="alice", plan_id=2, local_batch=2048,
                              num_iterations=10, priority="prod", deadline="relaxed"))
    service.submit(TenantSpec(name="bob", plan_id=0, local_batch=1024,
                              num_iterations=12, priority="best_effort"))
    service.submit(TenantSpec(name="dave", plan_id=0, local_batch=1024,
                              num_iterations=12, priority="best_effort",
                              arrive_iteration=2))
    service.submit(TenantSpec(name="carol", plan_id=2, local_batch=2048,
                              num_iterations=6, priority="standard",
                              deadline="strict", arrive_iteration=4))

    print("=== service run: admission, carving, preemption, resume ===")
    summary = service.run()
    for line in summary.lines():
        print(line)
    print()
    for entry in summary.jobs:
        print(f"  {entry['tenant']}: {' -> '.join(entry['history'])}")

    dave = summary.job("dave")
    assert dave["preemptions"] == 1, "dave should be evicted once for carol"
    assert all(e["state"] == "completed" for e in summary.jobs)
    cold_us = summary.job("alice")["admission_us"]

    # ------------------------------------------------------------------
    # A fresh service process on the same root: warm re-admission.

    print("\n=== warm re-admission (fresh process, same service root) ===")
    second = PreprocessingService(root / "rerun", num_gpus=2, cache_dir=root / "cache")
    second.submit(TenantSpec(name="alice", plan_id=2, local_batch=2048,
                             num_iterations=2, priority="prod", deadline="relaxed"))
    rerun = second.run()
    warm_us = rerun.job("alice")["admission_us"]
    print(f"  alice re-admitted via {rerun.job('alice')['plan_source']} "
          f"in {warm_us:.0f}us (cold was {cold_us:.0f}us, "
          f"{cold_us / max(warm_us, 1e-9):.0f}x faster)")

    third = PreprocessingService(root / "twin", num_gpus=2, cache_dir=root / "cache")
    third.submit(TenantSpec(name="alice2", plan_id=2, local_batch=2048,
                            num_iterations=2, priority="prod", deadline="relaxed",
                            rename=True))
    twin = third.run()
    print(f"  isomorphic twin alice2 admitted via {twin.job('alice2')['plan_source']} "
          f"in {twin.job('alice2')['admission_us']:.0f}us")
    assert rerun.job("alice")["plan_source"] == "warm-exact"
    assert twin.job("alice2")["plan_source"] == "warm-invariant"
    print(f"\nservice root: {root}")


if __name__ == "__main__":
    main()
