#!/usr/bin/env python
"""Guarded shadow promotion, probation, and automatic rollback, end to end.

Injects two per-op latency drifts into a 4-GPU run with the shadow
promotion loop attached (DESIGN.md §15):

1. SigridHash kernels jump to 20x their modeled cost at iteration 2; the
   drift detector fires, the shadow planner prices a candidate on live
   calibrated costs, scores it over a replayed window, and -- the
   predicted exposed-latency win clearing the promote margin -- promotes
   it behind a sealed, pinned anchor checkpoint.
2. MapId kernels jump 20x at iteration 6, mid-probation. Realized
   iteration latency regresses past the rollback threshold against the
   candidate's own prediction, and the runtime automatically rolls the
   plan back to the anchor.

The whole cycle is narrated in the run journal (``promotion`` /
``promotion_result`` records), exported as ``rap_shadow_*`` metrics, and
bit-reproducible under the fixed seed.

Run:  python examples/shadow_promotion_run.py
"""

import os
import tempfile
from pathlib import Path

from repro import TrainingWorkload, build_plan, model_for_plan
from repro.core import RapPlanner
from repro.experiments.reporting import format_kv, format_table
from repro.runtime import (
    CheckpointManager,
    FaultTolerantRuntime,
    RunJournal,
    ShadowConfig,
    ShadowPlanner,
    validate_records,
)
from repro.telemetry import DriftDetector, LatencyDrift, TelemetrySession

ITERATIONS = 14
DRIFTS = [
    LatencyDrift("SigridHash", 20.0, start_iteration=2),
    LatencyDrift("MapId", 20.0, start_iteration=6),
]


def main() -> None:
    graphs, schema = build_plan(2, rows=2048)
    workload = TrainingWorkload(
        model_for_plan(graphs, schema), num_gpus=4, local_batch=2048
    )

    run_dir = Path(os.environ.get("RAP_SHADOW_RUN_DIR")
                   or tempfile.mkdtemp(prefix="rap-shadow-"))
    run_dir.mkdir(parents=True, exist_ok=True)
    telemetry = TelemetrySession(
        drift_detector=DriftDetector(threshold=0.25, window=3)
    )
    shadow = ShadowPlanner(config=ShadowConfig())
    journal = RunJournal(run_dir / "journal.jsonl")
    runtime = FaultTolerantRuntime(
        RapPlanner(workload),
        graphs,
        telemetry=telemetry,
        drift_schedule=DRIFTS,
        shadow=shadow,
        journal=journal,
    )

    for drift in DRIFTS:
        print(f"Injecting drift: {drift.op_type} x{drift.factor} from "
              f"iteration {drift.start_iteration}")
    print()
    report = runtime.run(
        ITERATIONS,
        checkpoints=CheckpointManager(run_dir),
        checkpoint_every=5,
    )

    rows = [
        [r.iteration, r.plan_epoch, f"{r.iteration_us:,.1f}",
         f"{r.exposed_us:,.1f}", "replanned" if r.replanned else ""]
        for r in report.iterations
    ]
    print(format_table(
        ["iteration", "epoch", "latency (us)", "exposed (us)", "event"],
        rows,
        title="Iterations under the shadow promotion loop",
    ))

    counters = shadow.counters()
    print()
    print(format_kv(
        {
            "candidates evaluated": counters["candidates_evaluated"],
            "promotions": counters["promotions"],
            "rollbacks": counters["rollbacks"],
            "commits": counters["commits"],
            "suppressed triggers": counters["suppressed_triggers"],
        },
        title="Shadow promotion counters",
    ))

    records = RunJournal.read(journal.path)
    print("\nPromotion lifecycle (from the run journal):")
    for rec in records:
        if rec["type"] == "promotion":
            print(f"  iteration {rec['iteration']}: promoted epoch "
                  f"{rec['from_epoch']} -> {rec['plan_epoch']} "
                  f"(predicted win {rec['predicted_win']:+.1%}, "
                  f"anchor {rec['anchor']})")
        elif rec["type"] == "promotion_result":
            print(f"  iteration {rec['iteration']}: {rec['outcome']} after "
                  f"{rec['probation_len']} iteration(s) "
                  f"(realized win {rec['realized_win']:+.1%})")

    errors, warnings = validate_records(records)
    assert not errors, errors
    assert counters["promotions"] == 1 and counters["rollbacks"] == 1

    print(f"\njournal validated clean ({len(records)} records, "
          f"{len(warnings)} warning(s)); artifacts in {run_dir}")


if __name__ == "__main__":
    main()
