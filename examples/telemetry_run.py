#!/usr/bin/env python
"""Telemetry and online cost-model calibration, end to end.

Injects a per-op-type latency drift -- SigridHash kernels suddenly run
2.5x their modeled latency, the kind of regression a driver update or a
noisy neighbour causes -- and lets the telemetry subsystem absorb it:

1. the runtime records one (predicted, observed) calibration sample per
   executed kernel;
2. the drift detector sees the SigridHash residual stay above threshold
   for a sustained window and fires;
3. the runtime wraps the latency predictor in a
   :class:`repro.telemetry.CalibratedPredictor` and replans with
   corrected costs;
4. the run journal records the recalibration with before/after predictor
   error, and the metrics directory fills with ``metrics.prom``,
   ``metrics.jsonl``, and ``trace.json``.

Run:  python examples/telemetry_run.py
"""

import os
import tempfile
from pathlib import Path

from repro import TrainingWorkload, build_plan, model_for_plan
from repro.core import RapPlanner
from repro.experiments.reporting import format_kv, format_table
from repro.runtime import FaultTolerantRuntime, RunJournal
from repro.telemetry import LatencyDrift, TelemetrySession

ITERATIONS = 12
DRIFT = LatencyDrift("SigridHash", 2.5, start_iteration=2)


def main() -> None:
    graphs, schema = build_plan(1, rows=4096)
    workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)

    run_dir = Path(os.environ.get("RAP_TELEMETRY_RUN_DIR")
                   or tempfile.mkdtemp(prefix="rap-telemetry-"))
    run_dir.mkdir(parents=True, exist_ok=True)
    telemetry = TelemetrySession(metrics_dir=run_dir / "metrics")
    journal = RunJournal(run_dir / "journal.jsonl")
    runtime = FaultTolerantRuntime(
        RapPlanner(workload),
        graphs,
        telemetry=telemetry,
        drift_schedule=[DRIFT],
        journal=journal,
    )

    print(f"Injecting drift: {DRIFT.op_type} x{DRIFT.factor} from iteration "
          f"{DRIFT.start_iteration}\n")
    report = runtime.run(ITERATIONS)
    artifacts = telemetry.write_artifacts(step=ITERATIONS)

    rows = [
        [r.iteration, f"{r.iteration_us:,.1f}", f"{r.exposed_us:,.1f}",
         "replanned" if r.replanned else ""]
        for r in report.iterations
    ]
    print(format_table(
        ["iteration", "latency (us)", "exposed (us)", "event"],
        rows,
        title="Iterations under injected per-op drift",
    ))

    records = RunJournal.read(journal.path)
    recalibrations = [r for r in records if r["type"] == "recalibrate"]
    print("\nRecalibrations (from the run journal):")
    for rec in recalibrations:
        corrections = ", ".join(f"{op}={c:.3f}" for op, c in sorted(rec["corrections"].items())
                                if c != 1.0)
        print(f"  iteration {rec['iteration']}: drift on {rec['op_type']} "
              f"(residual {rec['worst_residual']:.3f}); predictor error "
              f"{rec['mape_before']:.3f} -> {rec['mape_after']:.3f}; {corrections}")

    # The per-recalibration before/after is a mid-run snapshot (its window
    # still mixes pre-drift samples); the "calibration_summary" record that
    # run() journals at the end holds the settled numbers.
    summary = next(r for r in records if r["type"] == "calibration_summary")
    print("\n" + format_kv({
        "drift events": len(telemetry.drift_events),
        "replans": report.replans,
        "predictor MAPE (raw)": f"{summary['mape_raw']:.3f}",
        "predictor MAPE (calibrated)": f"{summary['mape_calibrated']:.3f}",
        "metrics artifacts": str(run_dir / "metrics"),
    }, title="Calibration summary (from the run journal)"))

    print("\nPrometheus scrape sample (metrics.prom):")
    wanted = ("rap_drift_events_total", "rap_replans_total", "rap_calibration_correction")
    for line in artifacts["prometheus"].read_text().splitlines():
        if line.startswith(wanted):
            print(f"  {line}")

    assert recalibrations, "expected the drift detector to fire"
    assert report.replans >= 1, "expected a drift-triggered replan"
    assert summary["mape_calibrated"] < summary["mape_raw"]


if __name__ == "__main__":
    main()
