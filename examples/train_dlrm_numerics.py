#!/usr/bin/env python
"""End-to-end online training: preprocessing graphs feeding a real DLRM.

Closes the loop the paper's pipeline describes: synthetic click logs flow
through Plan 0's preprocessing graphs (executed via RAP's generated plan
code) and the *preprocessed* columns train an actual numpy DLRM with SGD.
The synthetic labels follow a planted rule over the preprocessed features,
so the loss decrease demonstrates the whole chain is numerically sound.

Run:  python examples/train_dlrm_numerics.py [num_iterations]
"""

import sys

import numpy as np

from repro import RapPlanner, SyntheticCriteoDataset, TrainingWorkload, build_plan, model_for_plan
from repro.core import generate_plan_module, load_plan_module
from repro.dlrm import NumpyDLRM, bce_loss
from repro.preprocessing import DENSE_CONSUMER


def planted_labels(batch, dense_col: str, sparse_col: str) -> np.ndarray:
    """A synthetic CTR rule over *preprocessed* columns."""
    dense = np.nan_to_num(np.asarray(batch.column(dense_col).values, dtype=np.float64))
    sparse = batch.column(sparse_col)
    first_id = np.array([sparse.row(i)[0] if sparse.row(i).size else 0 for i in range(batch.size)])
    return ((dense > np.median(dense)) ^ (first_id % 3 == 0)).astype(float)


def main(iterations: int = 30) -> None:
    rows = 512
    graphs, schema = build_plan(0, rows=rows)
    config = model_for_plan(graphs, schema, dim=16)
    workload = TrainingWorkload(config, num_gpus=2, local_batch=rows)

    # RAP's offline phase: plan + generate the preprocessing code.
    plan = RapPlanner(workload).plan(graphs)
    module = load_plan_module(generate_plan_module(plan))

    # Map each embedding table to its preprocessing graph's output column,
    # and the dense stack to the dense graphs' outputs.
    sparse_inputs = {}
    dense_outputs = []
    for graph in graphs:
        if graph.consumer == DENSE_CONSUMER:
            dense_outputs.append(graph.output_op.output)
        else:
            sparse_inputs[graph.consumer] = graph.output_op.output
    model = NumpyDLRM(config, dense_outputs, sparse_inputs, seed=0, table_size_cap=20_000)
    print(
        f"DLRM: {config.num_tables} tables (dim {config.embedding_dim}), "
        f"{model.num_mlp_params:,} MLP parameters"
    )

    dataset = SyntheticCriteoDataset(schema, seed=11)
    losses = []
    for it in range(iterations):
        batch = dataset.batch(rows, index=it % 6)  # revisit a small pool
        for gpu in module.SCHEDULE:
            module.run_gpu(gpu, batch)  # RAP-generated preprocessing
        labels = planted_labels(batch, dense_outputs[0], list(sparse_inputs.values())[0])
        loss = model.train_step(batch, labels, lr=0.2)
        losses.append(loss)
        if it % 5 == 0 or it == iterations - 1:
            print(f"iter {it:3d}  bce loss {loss:.4f}")

    eval_batch = dataset.batch(rows, index=0)
    for gpu in module.SCHEDULE:
        module.run_gpu(gpu, eval_batch)
    labels = planted_labels(eval_batch, dense_outputs[0], list(sparse_inputs.values())[0])
    final_loss, _ = bce_loss(model.forward(eval_batch), labels)
    accuracy = float(np.mean((model.predict_proba(eval_batch) > 0.5) == labels))
    print(
        f"\nFinal: loss {final_loss:.4f} (first iteration {losses[0]:.4f}), "
        f"train-pool accuracy {accuracy:.2%}"
    )
    assert final_loss < losses[0], "training failed to reduce the loss"


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
