"""RAP: Resource-aware Automated GPU Sharing for Multi-GPU DLRM Training
and Input Preprocessing -- an ASPLOS'24 reproduction.

The package implements the paper's full system on a simulated multi-GPU
substrate (see DESIGN.md for the substitution table):

- :mod:`repro.gpusim` -- SM/DRAM co-running simulator (the A100 stand-in);
- :mod:`repro.preprocessing` -- the Table-1 operator library, preprocessing
  graphs, Table-3 plans, and a synthetic Criteo-schema data generator;
- :mod:`repro.dlrm` -- hybrid-parallel DLRM training (Table-2 models);
- :mod:`repro.milp` -- from-scratch branch-and-bound MILP (Gurobi stand-in);
- :mod:`repro.ml` -- from-scratch gradient-boosted trees (XGBoost stand-in);
- :mod:`repro.core` -- RAP itself: cost model, horizontal fusion,
  Algorithm-1 scheduling, joint graph mapping, planning, code generation;
- :mod:`repro.baselines` -- TorchArrow / sequential / CUDA-stream / MPS;
- :mod:`repro.experiments` -- harnesses regenerating every table & figure.

Quickstart
----------
>>> from repro import build_plan, model_for_plan, TrainingWorkload, RapPlanner
>>> graphs, schema = build_plan(1, rows=4096)
>>> workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=4, local_batch=4096)
>>> report = RapPlanner(workload).plan_and_evaluate(graphs)
>>> report.training_slowdown  # ~1.0: preprocessing fully hidden
"""

from .preprocessing import (
    Batch,
    GraphSet,
    SyntheticCriteoDataset,
    build_plan,
    build_skewed_plan,
    execute_graph_set,
)
from .dlrm import TrainingWorkload, kaggle_model, model_for_plan, terabyte_model
from .core import (
    PreprocessingLatencyPredictor,
    RapPlan,
    RapPlanner,
    RapRunReport,
    generate_plan_module,
    train_default_predictor,
)
from .baselines import (
    run_cuda_stream_baseline,
    run_mps_baseline,
    run_sequential_baseline,
    run_torcharrow_baseline,
)

__version__ = "1.0.0"

__all__ = [
    "Batch",
    "GraphSet",
    "SyntheticCriteoDataset",
    "build_plan",
    "build_skewed_plan",
    "execute_graph_set",
    "TrainingWorkload",
    "kaggle_model",
    "terabyte_model",
    "model_for_plan",
    "PreprocessingLatencyPredictor",
    "RapPlan",
    "RapPlanner",
    "RapRunReport",
    "generate_plan_module",
    "train_default_predictor",
    "run_cuda_stream_baseline",
    "run_mps_baseline",
    "run_sequential_baseline",
    "run_torcharrow_baseline",
    "__version__",
]
