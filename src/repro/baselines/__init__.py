"""``repro.baselines`` -- the comparison systems of §8.1.

TorchArrow-style CPU preprocessing, the sequential GPU baseline, and the
handcrafted CUDA-stream and MPS GPU-sharing baselines, all reporting
through a common :class:`BaselineReport`.
"""

from .common import BaselineReport, dp_mapping_comm_bytes, unfused_kernels_per_gpu
from .sequential import run_sequential_baseline
from .cuda_stream import run_cuda_stream_baseline
from .mps_baseline import run_mps_baseline
from .torcharrow import CpuWorkerPool, run_torcharrow_baseline

__all__ = [
    "BaselineReport",
    "dp_mapping_comm_bytes",
    "unfused_kernels_per_gpu",
    "run_sequential_baseline",
    "run_cuda_stream_baseline",
    "run_mps_baseline",
    "run_torcharrow_baseline",
    "CpuWorkerPool",
]
