"""Shared plumbing for the comparison systems of §8.1.

Every baseline reports through :class:`BaselineReport` so the experiment
harnesses can tabulate them uniformly, and the GPU-sharing baselines share
the same data-parallel mapping + unfused kernel lowering (the paper's
handcrafted baselines use the default DP input pipeline with one kernel
per operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dlrm.training import TrainingWorkload
from ..gpusim.kernel import KernelDesc
from ..core.mapping import map_data_parallel
from ..preprocessing.graph import GraphSet

__all__ = ["BaselineReport", "unfused_kernels_per_gpu", "dp_mapping_comm_bytes"]


@dataclass
class BaselineReport:
    """One system's measured (simulated) end-to-end performance."""

    system: str
    iteration_us: float
    throughput: float
    training_time_us: float = 0.0
    exposed_preprocessing_us: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def training_slowdown_vs(self) -> float:
        if self.training_time_us <= 0:
            return 1.0
        return self.iteration_us / self.training_time_us


def unfused_kernels_per_gpu(
    graph_set: GraphSet,
    workload: TrainingWorkload,
) -> tuple[list[list[KernelDesc]], float, int]:
    """DP-mapped, unfused preprocessing kernels for each GPU.

    Every GPU lowers its batch slice of every feature graph to one kernel
    per operator in dependency order. Returns the per-GPU kernel lists plus
    the input-communication volume and per-feature transfer count the DP
    mapping incurs.
    """
    mapping = map_data_parallel(graph_set, workload)
    per_gpu: list[list[KernelDesc]] = []
    for gpu in range(workload.num_gpus):
        kernels: list[KernelDesc] = []
        for graph, rows in mapping.graphs_on_gpu(graph_set, gpu):
            kernels.extend(graph.kernels(rows, workload.spec))
        per_gpu.append(kernels)
    return per_gpu, mapping.input_comm_bytes, mapping.input_comm_transfers


def dp_mapping_comm_bytes(graph_set: GraphSet, workload: TrainingWorkload) -> float:
    return map_data_parallel(graph_set, workload).input_comm_bytes
