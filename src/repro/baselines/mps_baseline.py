"""Handcrafted MPS GPU-sharing baseline (§8.1).

Two processes per GPU -- one training, one preprocessing -- sharing a CUDA
context through NVIDIA MPS so their kernels execute concurrently. Spatial
sharing is cleaner than priority streams (lower issue stalls and demand
inflation), which is why this baseline lands between the stream baseline
and RAP in the paper's Fig. 9/10, but it remains resource-oblivious:
kernels are unfused and issued sequentially from the top of the iteration.
"""

from __future__ import annotations

from ..dlrm.training import TrainingWorkload
from ..gpusim.device import MPS_POLICY
from ..preprocessing.executor import estimate_data_preparation
from ..preprocessing.graph import GraphSet
from .common import BaselineReport, unfused_kernels_per_gpu

__all__ = ["run_mps_baseline"]


def run_mps_baseline(
    graph_set: GraphSet,
    workload: TrainingWorkload,
) -> BaselineReport:
    kernels_per_gpu, comm_bytes, comm_transfers = unfused_kernels_per_gpu(graph_set, workload)
    assignments = [({0: kernels} if kernels else {}) for kernels in kernels_per_gpu]
    result = workload.simulate(
        assignments_per_gpu=assignments,
        input_comm_bytes=comm_bytes,
        input_comm_transfers=max(1, comm_transfers),
        policy=MPS_POLICY,
    )
    prep_us = estimate_data_preparation(graph_set, spec=workload.spec).total_us / workload.num_gpus
    iteration = result.iteration_time_us + prep_us
    return BaselineReport(
        system="mps",
        iteration_us=iteration,
        throughput=workload.throughput_from_iteration(iteration),
        training_time_us=workload.ideal_iteration_us(),
        exposed_preprocessing_us=result.max_exposed_preprocessing_us,
        details={
            "comm_bytes": comm_bytes,
            "training_slowdown": max(r.training_slowdown for r in result.per_gpu),
        },
    )
