"""Sequential GPU-based preprocessing baseline.

The simplest way to move preprocessing onto trainer GPUs: run the unfused
preprocessing kernels *before* each training iteration on the same device.
Every microsecond of preprocessing is exposed -- this is the baseline
against which the paper reports RAP's 1.99x average speedup, and the
"Sequential" bar of Fig. 10.
"""

from __future__ import annotations

from ..dlrm.training import TrainingWorkload
from ..preprocessing.executor import estimate_data_preparation
from ..preprocessing.graph import GraphSet
from .common import BaselineReport, unfused_kernels_per_gpu

__all__ = ["run_sequential_baseline"]


def run_sequential_baseline(
    graph_set: GraphSet,
    workload: TrainingWorkload,
) -> BaselineReport:
    """Iteration = data prep + preprocessing (exposed) + training + comm."""
    kernels_per_gpu, comm_bytes, comm_transfers = unfused_kernels_per_gpu(graph_set, workload)
    # All kernels trail after training; equivalently they run before it --
    # either way they are fully exposed, so simulate them as trailing work.
    result = workload.simulate(
        trailing_per_gpu=kernels_per_gpu,
        input_comm_bytes=comm_bytes,
        input_comm_transfers=max(1, comm_transfers),
    )
    prep_us = estimate_data_preparation(graph_set, spec=workload.spec).total_us / workload.num_gpus
    iteration = result.iteration_time_us + prep_us
    return BaselineReport(
        system="sequential",
        iteration_us=iteration,
        throughput=workload.throughput_from_iteration(iteration),
        training_time_us=workload.ideal_iteration_us(),
        exposed_preprocessing_us=result.max_exposed_preprocessing_us + prep_us,
        details={
            "comm_bytes": comm_bytes,
            "num_kernels_gpu0": len(kernels_per_gpu[0]) if kernels_per_gpu else 0,
        },
    )
