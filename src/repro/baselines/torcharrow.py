"""TorchArrow-style CPU input-preprocessing baseline (§8.1).

The state-of-the-art CPU path the paper compares against: a DataFrame
preprocessing pipeline executing on host cores, 8 workers per GPU,
feeding the GPU trainers. The pipeline is throughput-bound: when the CPU
cannot produce batches as fast as the GPUs consume them, training stalls
on input -- which is why the paper's TorchArrow curves barely improve as
GPUs are added (Fig. 9) while RAP scales nearly linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dlrm.training import TrainingWorkload
from ..preprocessing.graph import GraphSet
from .common import BaselineReport

__all__ = ["CpuWorkerPool", "run_torcharrow_baseline"]


@dataclass(frozen=True)
class CpuWorkerPool:
    """A pool of preprocessing workers on the host CPUs.

    ``workers_per_gpu`` follows the paper's setup (8). Parallel efficiency
    accounts for batch-granularity scheduling, and ``max_effective_workers``
    models the node-level ceiling -- host memory bandwidth and core budget
    are shared by all workers, so beyond a point extra workers add nothing.
    This ceiling is why the paper's TorchArrow curves barely move from 4 to
    8 GPUs (Fig. 9): the host is already saturated while the GPUs idle.
    """

    workers_per_gpu: int = 8
    parallel_efficiency: float = 0.85
    max_effective_workers: int = 24

    def effective_workers(self, num_gpus: int) -> float:
        workers = max(1, self.workers_per_gpu * num_gpus)
        return min(workers, self.max_effective_workers) * self.parallel_efficiency

    def batch_production_us(self, graph_set: GraphSet, num_gpus: int) -> float:
        """Steady-state time to produce one *global* batch of input.

        Each GPU consumes one local batch per iteration; the pool must
        produce ``num_gpus`` local batches per iteration. Work divides
        across the effective workers.
        """
        total_work_us = graph_set.cpu_latency_us() * num_gpus
        return total_work_us / self.effective_workers(num_gpus)


def run_torcharrow_baseline(
    graph_set: GraphSet,
    workload: TrainingWorkload,
    pool: CpuWorkerPool | None = None,
) -> BaselineReport:
    """Pipelined CPU preprocessing feeding GPU training.

    The CPU pipeline runs ahead of training (double buffering), so the
    steady-state iteration time is the max of GPU iteration time and CPU
    batch production time.
    """
    pool = pool or CpuWorkerPool()
    training_us = workload.ideal_iteration_us()
    production_us = pool.batch_production_us(graph_set, workload.num_gpus)
    iteration = max(training_us, production_us)
    return BaselineReport(
        system="torcharrow",
        iteration_us=iteration,
        throughput=workload.throughput_from_iteration(iteration),
        training_time_us=training_us,
        exposed_preprocessing_us=max(0.0, production_us - training_us),
        details={
            "cpu_batch_production_us": production_us,
            "workers": pool.workers_per_gpu * workload.num_gpus,
            "input_bound": production_us > training_us,
        },
    )
