"""``rap-repro`` -- command-line interface to the RAP reproduction.

Subcommands
-----------
plan
    Search a RAP co-running plan for one of the Table-3 workloads, print
    the schedule summary, and optionally write the generated plan module,
    a Chrome trace of the simulated iteration, or a JSON plan artifact.
run
    Execute a plan through the fault-tolerant runtime for N iterations,
    optionally injecting deterministic faults, and print the resilience
    report (recovery ladder, retries, replans). ``--shadow`` attaches
    the guarded shadow-promotion loop (DESIGN.md §15).
journal
    Pretty-print and validate a run journal: the control-plane event
    timeline, promotion/rollback transactions, and crash signatures
    (torn tail vs mid-file corruption).
sweep
    Expand N forge seeds into audited adversarial scenarios, execute each
    through planner + runtime with crash isolation, and publish the gated
    robustness scorecard (``BENCH_scenarios.json``).
compare
    Run RAP against all four baseline systems on one workload.
experiments
    Regenerate every paper table and figure (``--quick`` for a smoke run).
serve
    Run the multi-tenant preprocessing service: admit every ``--tenants``
    spec onto one simulated fleet, carve leftover capacity fair-share
    between them, and print the per-tenant service summary.
predictor
    Train the latency predictor offline and print Table-5 accuracy.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
import time
from collections import Counter
from pathlib import Path

from .baselines import (
    run_cuda_stream_baseline,
    run_mps_baseline,
    run_sequential_baseline,
    run_torcharrow_baseline,
)
from .core import (
    PlanCache,
    PlanLoadError,
    RapPlanner,
    compile_plan,
    generate_plan_module,
    load_plan,
    save_plan,
)
from .dlrm import TrainingWorkload, model_for_plan
from .experiments.reporting import format_kv, format_table
from .gpusim import GPU_PROFILES, render_gantt, resolve_profile, to_chrome_trace
from .ingest import (
    OVERLOAD_POLICIES,
    IngestMetrics,
    PipelinedFeeder,
    QueueConfig,
    build_source,
)
from .preprocessing import (
    BACKEND_NAMES,
    OP_REGISTRY,
    BufferArena,
    EngineMetrics,
    ParallelEngine,
    SyntheticCriteoDataset,
    build_plan,
)
from .preprocessing.executor import execute_graph_set
from .preprocessing.random_plans import RandomPlanConfig, generate_random_plan
from .runtime import (
    FAULT_KINDS,
    CheckpointManager,
    DataPathVerifier,
    FaultInjector,
    FaultSpec,
    FaultTolerantRuntime,
    RunJournal,
    ShadowConfig,
    ShadowPlanner,
    SimulatedKill,
    validate_records,
)
from .service import PreprocessingService, parse_tenant_specs
from .telemetry import LatencyDrift, TelemetrySession

__all__ = ["main", "build_parser"]


def _parse_fleet(spec: str) -> tuple:
    """Parse ``--fleet a100,h100,...`` into a tuple of GpuSpec profiles."""
    handles = [h.strip() for h in spec.split(",") if h.strip()]
    if not handles:
        raise ValueError(f"bad --fleet spec {spec!r}: expected PROFILE[,PROFILE...]")
    try:
        return tuple(resolve_profile(h) for h in handles)
    except ValueError as exc:
        raise ValueError(f"bad --fleet spec {spec!r}: {exc}") from None


def _describe_workload(args, workload) -> str:
    """One-line workload label reflecting the fleet actually built."""
    label = f"plan {args.plan}, {workload.num_gpus} GPUs, batch {args.batch}"
    if getattr(args, "fleet", None):
        label += f" ({', '.join(workload.fleet_profile)})"
    return label


def _workload(args) -> tuple:
    if getattr(args, "random_plan", False):
        graphs, schema = generate_random_plan(
            RandomPlanConfig(seed=args.seed), rows=args.batch
        )
    else:
        graphs, schema = build_plan(args.plan, rows=args.batch)
    model = model_for_plan(graphs, schema)
    fleet = getattr(args, "fleet", None)
    if fleet:
        specs = _parse_fleet(fleet)
        workload = TrainingWorkload(
            model,
            num_gpus=len(specs),
            local_batch=args.batch,
            spec=specs[0],
            specs=specs,
        )
    else:
        workload = TrainingWorkload(model, num_gpus=args.gpus, local_batch=args.batch)
    return graphs, schema, workload


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--plan", type=int, default=1, choices=(0, 1, 2, 3),
                        help="Table-3 preprocessing plan (default 1)")
    parser.add_argument("--gpus", type=int, default=4, help="number of simulated GPUs")
    parser.add_argument("--fleet", metavar="PROFILE[,PROFILE...]",
                        help="explicit per-GPU profile list (e.g. a100,h100,a100); "
                             f"overrides --gpus. Profiles: {', '.join(sorted(GPU_PROFILES))}")
    parser.add_argument("--batch", type=int, default=4096, help="per-GPU batch size")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for random-plan generation and fault injection")
    parser.add_argument("--random-plan", action="store_true",
                        help="use a randomly generated workload (seeded by --seed) "
                             "instead of a Table-3 plan")


def _add_fast_path_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--plan-cache", metavar="DIR",
                        help="content-addressed plan/solve cache directory; "
                             "an unchanged workload re-plans as a hash lookup")
    parser.add_argument("--no-parallel-search", action="store_true",
                        help="evaluate mapping candidates sequentially instead of "
                             "in a process pool (plans are identical either way)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite existing output files instead of failing")


def _parse_inject(spec: str) -> FaultSpec:
    """Parse ``KIND=RATE[:MAGNITUDE[:PERSISTENCE]]`` into a FaultSpec."""
    kind, sep, rest = spec.partition("=")
    if not sep or not rest:
        raise ValueError(
            f"bad --inject spec {spec!r}: expected KIND=RATE[:MAGNITUDE[:PERSISTENCE]]"
        )
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"bad --inject spec {spec!r}: unknown fault kind {kind!r} "
            f"(expected one of {', '.join(FAULT_KINDS)})"
        )
    parts = rest.split(":")
    if len(parts) > 3:
        raise ValueError(
            f"bad --inject spec {spec!r}: expected KIND=RATE[:MAGNITUDE[:PERSISTENCE]]"
        )
    try:
        rate = float(parts[0])
        magnitude = float(parts[1]) if len(parts) > 1 else 2.0
        persistence = float(parts[2]) if len(parts) > 2 else 0.0
    except ValueError:
        raise ValueError(f"bad --inject spec {spec!r}: non-numeric value") from None
    return FaultSpec(kind, rate=rate, magnitude=magnitude, persistence=persistence)


def _parse_drift(spec: str) -> LatencyDrift:
    """Parse ``OP=FACTOR[:START[:END]]`` into a LatencyDrift."""
    op, sep, rest = spec.partition("=")
    if not sep or not rest:
        raise ValueError(
            f"bad --drift spec {spec!r}: expected OP=FACTOR[:START[:END]]"
        )
    if op not in OP_REGISTRY:
        raise ValueError(
            f"bad --drift spec {spec!r}: unknown op {op!r} "
            f"(expected one of {', '.join(sorted(OP_REGISTRY))})"
        )
    parts = rest.split(":")
    if len(parts) > 3:
        raise ValueError(
            f"bad --drift spec {spec!r}: expected OP=FACTOR[:START[:END]]"
        )
    try:
        factor = float(parts[0])
        start = int(parts[1]) if len(parts) > 1 else 0
        end = int(parts[2]) if len(parts) > 2 else None
    except ValueError:
        raise ValueError(f"bad --drift spec {spec!r}: non-numeric value") from None
    return LatencyDrift(op, factor, start_iteration=start, end_iteration=end)


def _check_clobber(path: str | None, force: bool) -> None:
    """Refuse to silently overwrite an existing artifact (exit 2 without --force)."""
    if path and not force and Path(path).exists():
        raise ValueError(f"{path} exists; pass --force to overwrite")


def _make_planner(args, workload) -> RapPlanner:
    cache_dir = getattr(args, "plan_cache", None)
    return RapPlanner(
        workload,
        mapping_strategy=getattr(args, "mapping", "rap"),
        fusion_enabled=not getattr(args, "no_fusion", False),
        cache=PlanCache(cache_dir) if cache_dir else None,
        parallel_search=not getattr(args, "no_parallel_search", False),
    )


def _print_cache_stats(planner: RapPlanner) -> None:
    if planner.cache is None:
        return
    stats = {"plan cache": planner.cache.stats.to_dict()}
    if planner.solve_cache is not None:
        stats["solve cache"] = planner.solve_cache.stats.to_dict()
    lines = {
        name: f"{s['hits']} hit(s) ({s.get('disk_hits', 0)} disk-tier), "
        f"{s['misses']} miss(es), {s['stores']} store(s), "
        f"{s.get('lock_contention', 0)} lock-contended"
        for name, s in stats.items()
    }
    print()
    print(format_kv(lines, title="Planner fast path"))


def _make_telemetry(args) -> TelemetrySession | None:
    if getattr(args, "no_telemetry", False):
        if getattr(args, "metrics_dir", None):
            raise ValueError("--metrics-dir conflicts with --no-telemetry")
        return None
    return TelemetrySession(metrics_dir=getattr(args, "metrics_dir", None))


def _bind_cache_metrics(planner: RapPlanner, telemetry: TelemetrySession | None) -> None:
    if telemetry is None:
        return
    if planner.cache is not None:
        planner.cache.bind_metrics(telemetry.registry, "plan")
    if planner.solve_cache is not None:
        planner.solve_cache.bind_metrics(telemetry.registry, "milp")


def _print_telemetry_summary(telemetry: TelemetrySession | None) -> None:
    if telemetry is None:
        return
    lines = {}
    for line in telemetry.summary_lines():
        key, _, value = line.partition(":")
        lines[key.strip()] = value.strip()
    print()
    print(format_kv(lines, title="Telemetry"))


def _print_data_path(
    plan,
    schema,
    engine: str,
    seed: int,
    workers: int = 0,
    backend: str | None = None,
    registry=None,
) -> None:
    """Execute one real synthetic batch through the selected data-path engine."""
    graphs = plan.graph_set
    batch = SyntheticCriteoDataset(schema, seed=seed).batch(graphs.rows, index=0)
    parallel = None
    arena = None
    extra: dict[str, object] = {}
    if workers > 0:
        parallel = ParallelEngine(
            graphs,
            workers=workers,
            backend=backend,
            metrics=EngineMetrics(registry),
        )

        def run_once():
            parallel.execute(batch)

        label = f"parallel ({workers} workers)"
    elif engine == "compiled":
        arena = BufferArena()
        programs = compile_plan(plan, arena=arena, rows=graphs.rows, backend=backend)

        def run_once():
            for program in programs.values():
                program.execute(batch)

        label = engine
        extra["program"] = (
            f"{sum(p.num_ops for p in programs.values())} ops in "
            f"{sum(p.num_steps for p in programs.values())} fused steps "
            f"(max degree {max(p.max_fusion_degree for p in programs.values())})"
        )
    else:

        def run_once():
            execute_graph_set(graphs, batch)

        label = engine
        extra["program"] = f"{sum(len(g.ops) for g in graphs)} ops, one dispatch each"
    try:
        run_once()  # warmup: first execution pays compilation/arena growth
        reps = 5
        start = time.perf_counter()
        for _ in range(reps):
            run_once()
        per_batch_s = (time.perf_counter() - start) / reps
        if parallel is not None:
            info = parallel.summary()
            extra["program"] = (
                f"{info['steps']} fused steps over {parallel.num_shards} shards "
                f"{parallel.shard_sizes()}"
            )
            steps_by_backend = ", ".join(
                f"{name}={count}" for name, count in sorted(info["backend_steps"].items())
            )
            extra["kernel backend"] = f"{info['backend']} ({steps_by_backend})"
            busy = ", ".join(
                f"w{i} {frac:.2f}"
                for i, frac in sorted(parallel.worker_busy_fractions().items())
            )
            extra["worker busy fractions"] = busy or "n/a"
            extra["shm bytes in flight"] = parallel.shm_bytes_in_flight()
        elif engine == "compiled":
            extra["kernel backend"] = backend or "numpy"
        lines = {
            "engine": label,
            **extra,
            "batch rows": graphs.rows,
            "latency (ms/batch)": round(per_batch_s * 1e3, 3),
            "throughput (batches/s)": round(1.0 / per_batch_s, 1),
        }
        if arena is not None:
            stats = arena.stats()
            lines["arena"] = (
                f"{stats['pooled_bytes']} pooled bytes, hit rate "
                f"{stats['hit_rate']:.2f}, {stats['evicted_blocks']} evictions"
            )
        print(format_kv(lines, title="Functional data path"))
    finally:
        if parallel is not None:
            parallel.close()


def cmd_plan(args) -> int:
    _check_clobber(args.save_json, args.force)
    graphs, schema, workload = _workload(args)
    planner = _make_planner(args, workload)
    plan = planner.plan(graphs)
    report = planner.evaluate(plan)
    print(
        format_kv(
            {
                "workload": _describe_workload(args, workload),
                "mapping strategy": plan.mapping.strategy,
                "fusion": "on" if plan.fusion_enabled else "off",
                "kernels per GPU": plan.num_kernels_per_gpu(),
                "input comm bytes/iter": plan.input_comm_bytes,
                "iteration (us)": report.iteration_us,
                "ideal iteration (us)": workload.ideal_iteration_us(),
                "training slowdown": report.training_slowdown,
                "throughput (samples/s)": report.throughput,
            },
            title="RAP plan",
        )
    )
    if args.gantt:
        print()
        print(render_gantt(report.cluster_result.per_gpu[0]))
    if args.emit_code:
        Path(args.emit_code).write_text(generate_plan_module(plan))
        print(f"\ngenerated plan module -> {args.emit_code}")
    if args.emit_trace:
        Path(args.emit_trace).write_text(to_chrome_trace(report.cluster_result))
        print(f"chrome trace -> {args.emit_trace}")
    if args.save_json:
        save_plan(args.save_json, plan)
        print(f"plan artifact -> {args.save_json}")
    _print_cache_stats(planner)
    return 0


def _check_resume_compat(snapshot, specs, args, drift_schedule=(), shadow=None) -> None:
    """Refuse to resume under a configuration the checkpoint was not cut for.

    Resumption is only bit-identical when the seed, injection schedule, and
    workload shape match the killed process; anything else would silently
    diverge from the uninterrupted run.
    """
    state = snapshot.state
    echo = state.get("injector", {})
    if echo.get("seed") is not None and echo["seed"] != args.seed:
        raise ValueError(
            f"--resume: checkpoint was cut with seed {echo['seed']}, got --seed {args.seed}"
        )
    saved_specs = [
        (s["kind"], s["rate"], s["magnitude"], s["persistence"])
        for s in echo.get("specs", [])
    ]
    live_specs = [(s.kind, s.rate, s.magnitude, s.persistence) for s in specs]
    if saved_specs and saved_specs != live_specs:
        raise ValueError("--resume: --inject schedule differs from the checkpointed run")
    saved_drift = state.get("drift_schedule", [])
    live_drift = [d.to_dict() for d in drift_schedule]
    if saved_drift and saved_drift != live_drift:
        raise ValueError("--resume: --drift schedule differs from the checkpointed run")
    wl = state.get("workload", {})
    if wl.get("local_batch") is not None and wl["local_batch"] != args.batch:
        raise ValueError(
            f"--resume: checkpoint batch {wl['local_batch']} != --batch {args.batch}"
        )
    shrinks = sum(
        1 for m in state.get("membership", []) if int(m.get("survivors", 0)) >= 1
    )
    requested = (
        len(_parse_fleet(args.fleet)) if getattr(args, "fleet", None) else args.gpus
    )
    if wl.get("num_gpus") is not None and wl["num_gpus"] != requested - shrinks:
        raise ValueError(
            f"--resume: checkpoint fleet ({wl['num_gpus']} GPUs after {shrinks} "
            f"loss(es)) is inconsistent with the requested {requested} GPU(s)"
        )
    # Shadow promotion changes the replan trajectory, so resuming with a
    # different shadow configuration than the checkpoint's would diverge.
    saved_shadow = state.get("shadow")
    if saved_shadow is not None and shadow is None:
        raise ValueError(
            "--resume: checkpoint was cut with shadow planning enabled; pass --shadow"
        )
    if saved_shadow is None and shadow is not None:
        raise ValueError(
            "--resume: checkpoint was cut without shadow planning; drop --shadow"
        )
    if saved_shadow is not None and saved_shadow.get("config") != shadow.config.to_dict():
        raise ValueError(
            "--resume: shadow guardrail configuration differs from the checkpointed run"
        )


def _make_shadow(args) -> ShadowPlanner | None:
    """Build the shadow promotion loop from ``--shadow`` (DESIGN.md §15)."""
    shadow_flags = ("promote_margin", "probation_iters", "rollback_threshold")
    if not args.shadow:
        set_flags = [f for f in shadow_flags if getattr(args, f) is not None]
        if set_flags:
            raise ValueError(f"--{set_flags[0].replace('_', '-')} requires --shadow")
        return None
    overrides = {
        flag: getattr(args, flag)
        for flag in shadow_flags
        if getattr(args, flag) is not None
    }
    config = ShadowConfig(**{**ShadowConfig().to_dict(), **overrides})
    return ShadowPlanner(config=config)


def _print_shadow_summary(runtime) -> None:
    shadow = runtime.shadow
    if shadow is None:
        return
    counters = shadow.counters()
    lines = {
        "candidates evaluated": counters["candidates_evaluated"],
        "promotions": counters["promotions"],
        "commits / rollbacks / aborts": f"{counters['commits']} / "
        f"{counters['rollbacks']} / {counters['aborts']}",
        "suppressed triggers": counters["suppressed_triggers"],
        "state": "in probation" if shadow.in_probation else "idle",
    }
    if shadow.last_predicted_win is not None:
        lines["last predicted win"] = f"{shadow.last_predicted_win:.1%}"
    if shadow.last_realized_win is not None:
        lines["last realized win"] = f"{shadow.last_realized_win:.1%}"
    print()
    print(format_kv(lines, title="Shadow promotion"))


def _make_feeder(args, telemetry) -> tuple[PipelinedFeeder | None, IngestMetrics | None]:
    """Build the streaming-ingest feeder from ``--source`` (DESIGN.md §14)."""
    ingest_flags = ("overload_policy", "queue_capacity", "ingest_workers", "ingest_depth")
    if not args.source:
        set_flags = [f for f in ingest_flags if getattr(args, f) is not None]
        if set_flags:
            raise ValueError(
                f"--{set_flags[0].replace('_', '-')} requires --source"
            )
        return None, None
    src = build_source(args.source, seed=args.seed)
    rows = src.rows_per_batch
    if args.verify_data > 0 and rows is not None and rows != args.batch:
        raise ValueError(
            f"--verify-data checks the plan on ingested batches, but the source "
            f"yields {rows}-row batches while --batch is {args.batch}; align them"
        )
    metrics = IngestMetrics(telemetry.registry if telemetry is not None else None)
    queue = QueueConfig(
        capacity=args.queue_capacity if args.queue_capacity is not None else 4,
        policy=args.overload_policy if args.overload_policy is not None else "block",
    )
    feeder = PipelinedFeeder(
        src,
        depth=args.ingest_depth if args.ingest_depth is not None else 2,
        workers=args.ingest_workers if args.ingest_workers is not None else 1,
        queue=queue,
        metrics=metrics,
    )
    return feeder, metrics


def _print_ingest_summary(runtime, metrics: IngestMetrics | None) -> None:
    if metrics is None:
        return
    stalls = {
        "producer": metrics.producer_stall_ratio.value,
        "consumer": metrics.consumer_stall_ratio.value,
    }
    print()
    print(
        format_kv(
            {
                "source": runtime.feeder.produce.describe()
                if hasattr(runtime.feeder.produce, "describe")
                else "custom",
                "batches ingested": runtime.batches_ingested,
                "source epochs": runtime.ingest_epochs,
                "queue peak depth": int(metrics.queue_peak_depth.value),
                "drops / spills": f"{int(metrics.drops_total.value)} / "
                f"{int(metrics.spills_total.value)}",
                "stall ratios": f"producer {stalls['producer']:.3f}, "
                f"consumer {stalls['consumer']:.3f}",
            },
            title="Streaming ingest",
        )
    )


def cmd_run(args) -> int:
    _check_clobber(args.save_report, args.force)
    if args.resume and not args.checkpoint_dir:
        raise ValueError("--resume requires --checkpoint-dir")
    graphs, schema, workload = _workload(args)
    specs = [_parse_inject(s) for s in args.inject or []]
    drift_schedule = [_parse_drift(s) for s in args.drift or []]
    telemetry = _make_telemetry(args)
    shadow = _make_shadow(args)
    feeder, ingest_metrics = _make_feeder(args, telemetry)
    verifier = (
        DataPathVerifier(
            schema,
            every=args.verify_data,
            seed=args.seed,
            workers=args.engine_workers,
            backend=args.kernel_backend,
        )
        if args.verify_data > 0
        else None
    )

    checkpoints = None
    journal = None
    if args.checkpoint_dir:
        checkpoints = CheckpointManager(args.checkpoint_dir)
        journal = RunJournal(Path(args.checkpoint_dir) / "journal.jsonl")

    start = 0
    report = None
    try:
        if args.resume:
            snapshot = checkpoints.latest()
            if snapshot is None:
                raise ValueError(
                    f"--resume: no valid checkpoint under {args.checkpoint_dir}"
                )
            _check_resume_compat(snapshot, specs, args, drift_schedule, shadow)
            runtime, report, start = FaultTolerantRuntime.restore(
                snapshot,
                graphs,
                workload,
                lambda wl: _make_planner(args, wl),
                injector=FaultInjector(specs, seed=args.seed),
                journal=journal,
                telemetry=telemetry,
                drift_schedule=drift_schedule or None,
                verifier=verifier,
                feeder=feeder,
                shadow=shadow,
            )
            if start >= args.iterations:
                raise ValueError(
                    f"--resume: checkpoint is already at iteration {start}; "
                    f"nothing left of --iterations {args.iterations}"
                )
        else:
            planner = _make_planner(args, workload)
            _bind_cache_metrics(planner, telemetry)
            plan = load_plan(args.load_plan, workload, graphs) if args.load_plan else None
            runtime = FaultTolerantRuntime(
                planner,
                graphs,
                plan=plan,
                injector=FaultInjector(specs, seed=args.seed),
                journal=journal,
                telemetry=telemetry,
                drift_schedule=drift_schedule,
                verifier=verifier,
                feeder=feeder,
                shadow=shadow,
            )
        _bind_cache_metrics(runtime.planner, telemetry)
        print(
            format_kv(
                {
                    "workload": _describe_workload(args, runtime.workload),
                    "fault injection": ", ".join(f"{s.kind}@{s.rate}" for s in specs) or "off",
                    "seed": args.seed,
                    "resumed at iteration": start if args.resume else "n/a (fresh run)",
                    "predicted exposed (us)": runtime.plan.predicted_exposed_us,
                },
                title="Fault-tolerant run",
            )
        )
        try:
            report = runtime.run(
                args.iterations - start,
                start_iteration=start,
                report=report,
                checkpoints=checkpoints,
                checkpoint_every=args.checkpoint_every if checkpoints else 0,
                kill_after=args.kill_after_iter,
            )
        except SimulatedKill as exc:
            print(
                f"rap-repro: killed after iteration {exc.iteration} (simulated crash); "
                "rerun with --resume to continue",
                file=sys.stderr,
            )
            return 3
    finally:
        if feeder is not None:
            feeder.close()
        if verifier is not None:
            verifier.close()
        if journal is not None:
            journal.close()
    print()
    print(report.summary())
    _print_shadow_summary(runtime)
    _print_ingest_summary(runtime, ingest_metrics)
    # The data-path block reports measured wall-clock, so it only appears
    # when the engine or verification was explicitly requested; the
    # default output stays byte-reproducible under a fixed seed.
    if args.engine != "naive" or args.verify_data > 0 or args.engine_workers > 0:
        print()
        _print_data_path(
            runtime.plan,
            schema,
            args.engine,
            args.seed,
            workers=args.engine_workers,
            backend=args.kernel_backend,
            registry=telemetry.registry if telemetry is not None else None,
        )
    if runtime.verifier is not None and runtime.verifier.history:
        checks = runtime.verifier.history
        print(
            f"\ndata-path verification: {sum(1 for v in checks if v.ok)}/{len(checks)} "
            "check(s) bit-identical to the naive executor"
        )
    if args.save_report:
        save_plan(args.save_report, runtime.plan, resilience=report.to_dict())
        print(f"\nplan + resilience report -> {args.save_report}")
    _print_cache_stats(runtime.planner)
    if telemetry is not None:
        artifacts = telemetry.write_artifacts(step=args.iterations)
        if artifacts:
            print(f"\ntelemetry artifacts -> {args.metrics_dir}")
    _print_telemetry_summary(telemetry)
    return 0


#: Per-iteration noise records the journal timeline hides unless --all.
_JOURNAL_NOISE = ("transition", "data_verify")


def _journal_event_line(record: dict) -> str:
    record_type = record["type"]
    iteration = record.get("iteration")
    prefix = f"iter {iteration:>4}" if iteration is not None else " " * 9
    detail = ""
    if record_type == "run":
        detail = f"{record.get('num_iterations', '?')} iteration(s)"
    elif record_type == "resume":
        detail = f"from {record.get('checkpoint', '?')}"
    elif record_type in ("replan", "recalibrate"):
        detail = f"reason {record.get('reason', '?')}, epoch {record.get('plan_epoch', '?')}"
    elif record_type == "shadow_eval":
        verdict = "promote" if record.get("promote") else "decline"
        detail = (
            f"{verdict}: win {record.get('predicted_win', 0):+.1%} "
            f"(required {record.get('required_win', 0):.1%}, "
            f"trigger {record.get('reason', '?')})"
        )
    elif record_type == "promotion":
        detail = (
            f"epoch {record.get('from_epoch', '?')} -> {record.get('plan_epoch', '?')}, "
            f"predicted win {record.get('predicted_win', 0):+.1%}, "
            f"anchor {record.get('anchor') or 'in-memory'}"
        )
    elif record_type == "promotion_result":
        outcome = record.get("outcome", "?")
        realized = record.get("realized_win")
        detail = f"{outcome} after {record.get('probation_len', '?')} iteration(s)"
        if realized is not None:
            detail += f", realized win {realized:+.1%}"
    elif record_type == "membership":
        detail = (
            f"lost GPU {record.get('lost_gpu', '?')}, "
            f"{record.get('survivors', '?')} survivor(s)"
        )
    elif record_type == "checkpoint":
        detail = str(record.get("path", ""))
    elif record_type == "kill":
        detail = "simulated crash"
    return f"{prefix}  {record_type:<17} {detail}".rstrip()


def cmd_journal(args) -> int:
    path = Path(args.path)
    if path.is_dir():
        path = path / "journal.jsonl"
    if not path.exists():
        raise ValueError(f"no journal at {path}")
    records, flaws = RunJournal.scan(path)
    errors, warnings = validate_records(records)

    counts = Counter(r.get("type", "?") for r in records)
    print(
        format_table(
            ["record type", "count"],
            [[name, counts[name]] for name in sorted(counts)],
            title=f"Journal {path} ({len(records)} records)",
        )
    )

    timeline = [
        r for r in records
        if args.all or r.get("type") not in _JOURNAL_NOISE
    ]
    if timeline:
        print()
        hidden = len(records) - len(timeline)
        title = "Control-plane timeline"
        if hidden:
            title += f" ({hidden} per-iteration record(s) hidden; --all shows them)"
        print(title)
        for record in timeline:
            print("  " + _journal_event_line(record))

    status = 0
    for flaw in flaws:
        if flaw.kind == "torn_tail":
            print(
                f"\nnote: torn tail at line {flaw.line} (crash mid-append; "
                f"expected after a kill): {flaw.snippet!r}"
            )
        else:
            print(
                f"rap-repro: journal: corrupt record at line {flaw.line}: "
                f"{flaw.snippet!r}",
                file=sys.stderr,
            )
            status = 2
    for warning in warnings:
        print(f"\nwarning: {warning}")
    for error in errors:
        print(f"rap-repro: journal: {error}", file=sys.stderr)
        status = 2
    if status == 0:
        print("\njournal OK")
    return status


def cmd_sweep(args) -> int:
    from .forge import SweepConfig, sweep, write_scorecard

    _check_clobber(args.out, args.force)
    config = SweepConfig(
        seeds=args.seeds,
        start_seed=args.start_seed,
        iterations=args.iterations,
        timeout_s=args.timeout,
        jobs=args.jobs,
        triage_dir=Path(args.triage_dir) if args.triage_dir else None,
    )
    scorecard = sweep(config, log=lambda message: print(f"sweep: {message}"))
    path = write_scorecard(scorecard, args.out)
    rows = [
        [name, dim["value"], f"{dim['op']} {dim['threshold']}",
         "pass" if dim["pass"] else "FAIL"]
        for name, dim in scorecard["dimensions"].items()
    ]
    print()
    print(
        format_table(
            ["dimension", "value", "gate", "verdict"],
            rows,
            title=f"Robustness scorecard ({scorecard['admission']['admitted']} scenarios)",
        )
    )
    print(f"\nscorecard -> {path}")
    if scorecard["reproducers"]:
        print(f"minimized reproducers -> {args.triage_dir} "
              f"({len(scorecard['reproducers'])} scenario(s))")
    if not scorecard["pass"]:
        print("rap-repro: sweep: one or more robustness gates failed", file=sys.stderr)
        return 4
    return 0


def cmd_compare(args) -> int:
    graphs, schema, workload = _workload(args)
    rap = RapPlanner(workload).plan_and_evaluate(graphs)
    rows = []
    for name, runner in (
        ("TorchArrow (CPU)", run_torcharrow_baseline),
        ("Sequential GPU", run_sequential_baseline),
        ("CUDA stream", run_cuda_stream_baseline),
        ("MPS", run_mps_baseline),
    ):
        report = runner(graphs, workload)
        rows.append([name, report.iteration_us, report.throughput, rap.throughput / report.throughput])
    rows.append(["RAP", rap.iteration_us, rap.throughput, 1.0])
    ideal = workload.ideal_throughput()
    rows.append(["Ideal", workload.ideal_iteration_us(), ideal, rap.throughput / ideal])
    print(
        format_table(
            ["system", "iteration (us)", "throughput (samples/s)", "RAP speedup"],
            rows,
            title="P" + _describe_workload(args, workload)[1:],
        )
    )
    return 0


def cmd_experiments(args) -> int:
    from .experiments.runner import run_all

    run_all(quick=args.quick)
    return 0


def cmd_predictor(args) -> int:
    from .experiments import table5

    results = table5.run(num_samples=args.samples, seed=args.seed)
    print(table5.render(results))
    return 0


def cmd_serve(args) -> int:
    specs = parse_tenant_specs(args.tenants)
    service = PreprocessingService(
        args.service_root,
        num_gpus=args.gpus,
        fair_share=args.fair_share,
        max_concurrent=args.max_concurrent,
        checkpoint_every=args.checkpoint_every,
        telemetry=not args.no_telemetry,
    )
    for spec in specs:
        service.submit(spec)
    started = time.perf_counter()
    summary = service.run()
    elapsed = time.perf_counter() - started
    states = Counter(entry["state"] for entry in summary.jobs)
    print(
        format_kv(
            {
                "tenants": ", ".join(s.name for s in specs),
                "fleet": f"{args.gpus} GPUs, fair-share {'on' if args.fair_share else 'off'}",
                "service ticks": summary.ticks,
                "outcomes": ", ".join(f"{k}={v}" for k, v in sorted(states.items())),
                "plan reuse": (
                    f"{summary.reuse['hits']} invariant hit(s), "
                    f"{summary.plan_cache['hits']} exact hit(s)"
                ),
                "wall time": f"{elapsed:.2f}s",
            },
            title="Preprocessing service",
        )
    )
    print()
    for line in summary.lines():
        print(line)
    print(f"\nservice root: {service.root}")
    if args.save_summary:
        Path(args.save_summary).write_text(
            _json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"summary written to {args.save_summary}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="rap-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="search and inspect a RAP co-running plan")
    _add_workload_args(p_plan)
    p_plan.add_argument("--mapping", default="rap", choices=("rap", "data_parallel", "data_locality"))
    p_plan.add_argument("--no-fusion", action="store_true", help="disable horizontal fusion")
    p_plan.add_argument("--gantt", action="store_true", help="print an ASCII Gantt of GPU 0")
    p_plan.add_argument("--emit-code", metavar="FILE", help="write the generated plan module")
    p_plan.add_argument("--emit-trace", metavar="FILE", help="write a Chrome trace JSON")
    p_plan.add_argument("--save-json", metavar="FILE", help="write a JSON plan artifact")
    _add_fast_path_args(p_plan)
    p_plan.set_defaults(fn=cmd_plan)

    p_run = sub.add_parser("run", help="execute a plan through the fault-tolerant runtime")
    _add_workload_args(p_run)
    p_run.add_argument("--iterations", type=int, default=20,
                       help="number of training iterations to execute (default 20)")
    p_run.add_argument("--inject", metavar="KIND=RATE[:MAG[:PERSIST]]", action="append",
                       help="inject faults of KIND at RATE per iteration; repeatable. "
                            f"Kinds: {', '.join(FAULT_KINDS)}")
    p_run.add_argument("--load-plan", metavar="FILE", help="load a JSON plan artifact "
                       "instead of searching a fresh plan")
    p_run.add_argument("--save-report", metavar="FILE",
                       help="write the plan plus the resilience report as JSON")
    p_run.add_argument("--checkpoint-dir", metavar="DIR",
                       help="write iteration-consistent checkpoints and an append-only "
                            "run journal under DIR")
    p_run.add_argument("--checkpoint-every", type=int, default=5, metavar="N",
                       help="checkpoint cadence in iterations (default 5; 0 disables)")
    p_run.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in --checkpoint-dir "
                            "(bit-identical to an uninterrupted run under the same seed)")
    p_run.add_argument("--kill-after-iter", type=int, metavar="K",
                       help="simulate a hard crash after iteration K-1 completes "
                            "(exit code 3; for resume testing)")
    p_run.add_argument("--drift", metavar="OP=FACTOR[:START[:END]]", action="append",
                       help="inject per-op-type latency drift: kernels of OP run "
                            "FACTOR x their modeled latency from iteration START "
                            "(default 0) until END (exclusive); repeatable. The "
                            "telemetry calibration loop detects and absorbs it")
    p_run.add_argument("--metrics-dir", metavar="DIR",
                       help="write telemetry artifacts (metrics.prom, metrics.jsonl, "
                            "trace.json) under DIR")
    p_run.add_argument("--engine", choices=("naive", "compiled"), default="naive",
                       help="data-path engine for the post-run functional batch "
                            "execution: op-by-op naive executor or the compiled "
                            "fused engine (default naive)")
    p_run.add_argument("--verify-data", type=int, default=0, metavar="N",
                       help="every N iterations, execute a real synthetic batch "
                            "through the compiled engine and cross-check "
                            "bit-identity against the naive executor (0 = off)")
    p_run.add_argument("--engine-workers", type=int, default=0, metavar="N",
                       help="execute the functional data path (and --verify-data "
                            "checks) through the multi-core sharded engine with N "
                            "worker processes over shared-memory arenas "
                            "(0 = in-process, the default)")
    p_run.add_argument("--kernel-backend", choices=BACKEND_NAMES, default="numpy",
                       help="compiled-kernel backend for data-path execution; "
                            "'auto' picks the fastest available and every backend "
                            "falls back to numpy per-op when unavailable "
                            "(default numpy)")
    p_run.add_argument("--shadow", action="store_true",
                       help="attach the shadow promotion loop: continuously search "
                            "candidate plans against calibrated costs, promote only "
                            "when the predicted exposed-latency win clears the "
                            "guardrail, and auto-rollback a promotion whose realized "
                            "throughput regresses during probation (DESIGN.md §15)")
    p_run.add_argument("--promote-margin", type=float, default=None, metavar="FRAC",
                       help="minimum predicted exposed-latency win to promote a "
                            "shadow candidate (default 0.10); requires --shadow")
    p_run.add_argument("--probation-iters", type=int, default=None, metavar="N",
                       help="iterations a promoted plan is monitored before "
                            "committing (default 5); requires --shadow")
    p_run.add_argument("--rollback-threshold", type=float, default=None, metavar="FRAC",
                       help="tolerated realized iteration-latency regression during "
                            "probation before automatic rollback (default 0.10); "
                            "requires --shadow")
    p_run.add_argument("--no-telemetry", action="store_true",
                       help="disable metrics, tracing, and online calibration; the "
                            "run is bit-identical to one without the subsystem")
    p_run.add_argument("--source", metavar="SPEC[,SPEC...]",
                       help="stream batches from URL-style ingest source(s) "
                            "(csv://, jsonl://, parquet://, synthetic://, "
                            "replay://; several comma-joined specs sample by "
                            "their weight= params); one batch is pulled per "
                            "iteration through the pipelined feeder, wrapping "
                            "into a new epoch at source end (DESIGN.md §14)")
    p_run.add_argument("--overload-policy", choices=OVERLOAD_POLICIES, default=None,
                       help="backpressure-queue policy when producers outrun "
                            "training: block (default), drop_oldest, or "
                            "spill_to_disk; requires --source")
    p_run.add_argument("--queue-capacity", type=int, default=None, metavar="N",
                       help="backpressure queue capacity in batches (default 4); "
                            "requires --source")
    p_run.add_argument("--ingest-workers", type=int, default=None, metavar="N",
                       help="producer pool size of the ingest feeder (default 1); "
                            "requires --source")
    p_run.add_argument("--ingest-depth", type=int, default=None, metavar="N",
                       help="max batches in flight ahead of training (default 2); "
                            "requires --source")
    _add_fast_path_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_journal = sub.add_parser(
        "journal",
        help="pretty-print and validate a run journal",
    )
    p_journal.add_argument("path",
                           help="journal file, or a --checkpoint-dir containing "
                                "journal.jsonl")
    p_journal.add_argument("--all", action="store_true",
                           help="include per-iteration ladder/verification records "
                                "in the timeline")
    p_journal.set_defaults(fn=cmd_journal)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a forge scenario sweep and publish the robustness scorecard",
    )
    p_sweep.add_argument("--seeds", type=int, default=100,
                         help="number of scenario seeds to expand (default 100)")
    p_sweep.add_argument("--start-seed", type=int, default=0,
                         help="first seed of the range (default 0)")
    p_sweep.add_argument("--iterations", type=int, default=None,
                         help="override every scenario's iteration count "
                              "(voids the seed-replay audit; for smoke runs)")
    p_sweep.add_argument("--jobs", type=int, default=0,
                         help="concurrent isolated scenario processes "
                              "(default 0 = run inline in this process)")
    p_sweep.add_argument("--timeout", type=float, default=300.0, metavar="SECONDS",
                         help="per-scenario hard timeout when --jobs > 0 (default 300)")
    p_sweep.add_argument("--out", metavar="FILE", default="BENCH_scenarios.json",
                         help="scorecard output path (default BENCH_scenarios.json)")
    p_sweep.add_argument("--triage-dir", metavar="DIR",
                         help="shrink each failing scenario to a minimal reproducer "
                              "JSON under DIR")
    p_sweep.add_argument("--force", action="store_true",
                         help="overwrite an existing scorecard file")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_cmp = sub.add_parser("compare", help="RAP vs the four baselines")
    _add_workload_args(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser("experiments", help="regenerate every table and figure")
    p_exp.add_argument("--quick", action="store_true")
    p_exp.set_defaults(fn=cmd_experiments)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant preprocessing service on one fleet"
    )
    p_serve.add_argument(
        "--tenants", required=True, metavar="SPEC[,SPEC...]",
        help="tenant specs NAME[:key=val...] separated by commas; keys: plan, "
             "batch, class (prod|standard|best_effort), deadline "
             "(strict|relaxed|none), arrive, iters, seed, faults, kind, rename",
    )
    p_serve.add_argument("--gpus", type=int, default=2, help="fleet size (default 2)")
    p_serve.add_argument(
        "--fair-share", default=True, action=argparse.BooleanOptionalAction,
        help="carve leftover capacity weighted max-min between tenants (default on)",
    )
    p_serve.add_argument(
        "--max-concurrent", type=int, default=None, metavar="N",
        help="cap on concurrently admitted tenants (default unbounded)",
    )
    p_serve.add_argument(
        "--service-root", default="service_root", metavar="DIR",
        help="root for per-tenant journals, metrics, checkpoints, and caches",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="per-tenant checkpoint cadence in iterations (default off)",
    )
    p_serve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable per-tenant telemetry sessions",
    )
    p_serve.add_argument("--save-summary", metavar="FILE",
                         help="write the service summary as JSON")
    p_serve.set_defaults(fn=cmd_serve)

    p_pred = sub.add_parser("predictor", help="train the latency predictor (Table 5)")
    p_pred.add_argument("--samples", type=int, default=11_000)
    p_pred.add_argument("--seed", type=int, default=7,
                        help="seed for predictor training-data generation")
    p_pred.set_defaults(fn=cmd_predictor)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except PlanLoadError as exc:
        print(f"rap-repro: error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        print(f"rap-repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
