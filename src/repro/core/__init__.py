"""``repro.core`` -- RAP's primary contribution.

The co-running cost model (overlapping capacity estimator + ML latency
predictor), resource-aware horizontal kernel fusion with MILP-backed
planning, the Algorithm-1 co-running scheduler, inter-batch workload
interleaving, the §7.2 joint graph-mapping heuristic, the end-to-end
planner, and plan code generation.
"""

from .capacity import OverlappingCapacityEstimator, REFERENCE_PROBE, StageCapacity
from .latency_predictor import (
    KernelSample,
    PREDICTOR_FAMILIES,
    PreprocessingLatencyPredictor,
    collect_training_samples,
    kernel_family,
    kernel_features,
    train_default_predictor,
)
from .cost_model import CoRunCost, CoRunningCostModel, StageCost
from .fusion import (
    FusionPlan,
    HorizontalFusionPass,
    build_fusion_instance,
    shard_by_latency,
    shard_to_fit_demand,
)
from .scheduler import CoRunSchedule, ResourceAwareScheduler
from .interleaving import InterbatchInterleaver, SteadyStateTimeline
from .mapping import (
    GraphMapping,
    MappingEvaluation,
    RapMapper,
    map_data_locality,
    map_data_parallel,
    rebuild_comm,
)
from .plan_cache import (
    PLANNER_CODE_VERSION,
    PlanCache,
    PlanCacheStats,
    graph_fingerprint,
    graph_set_fingerprint,
    graph_structure_key,
    plan_cache_key,
    workload_fingerprint,
)
from .planner import PlannerStats, RapPlan, RapPlanner, RapRunReport
from .codegen import compile_plan, generate_plan_module, load_plan_module
from .hybrid import HybridPlanner, HybridReport, HybridSplit
from .adaptation import AdaptationEvent, AdaptiveReplanner, drift_graph_set, scale_plan_kernels
from .serialization import (
    FORMAT_VERSION,
    PlanLoadError,
    load_plan,
    plan_from_json,
    plan_to_json,
    resilience_from_json,
    save_plan,
)

__all__ = [
    "OverlappingCapacityEstimator",
    "REFERENCE_PROBE",
    "StageCapacity",
    "KernelSample",
    "PREDICTOR_FAMILIES",
    "PreprocessingLatencyPredictor",
    "collect_training_samples",
    "kernel_family",
    "kernel_features",
    "train_default_predictor",
    "CoRunCost",
    "CoRunningCostModel",
    "StageCost",
    "FusionPlan",
    "HorizontalFusionPass",
    "build_fusion_instance",
    "shard_by_latency",
    "shard_to_fit_demand",
    "CoRunSchedule",
    "ResourceAwareScheduler",
    "InterbatchInterleaver",
    "SteadyStateTimeline",
    "GraphMapping",
    "MappingEvaluation",
    "RapMapper",
    "map_data_locality",
    "map_data_parallel",
    "rebuild_comm",
    "PLANNER_CODE_VERSION",
    "PlanCache",
    "PlanCacheStats",
    "graph_fingerprint",
    "graph_set_fingerprint",
    "graph_structure_key",
    "plan_cache_key",
    "workload_fingerprint",
    "PlannerStats",
    "RapPlan",
    "RapPlanner",
    "RapRunReport",
    "compile_plan",
    "generate_plan_module",
    "load_plan_module",
    "HybridPlanner",
    "HybridReport",
    "HybridSplit",
    "AdaptationEvent",
    "AdaptiveReplanner",
    "drift_graph_set",
    "scale_plan_kernels",
    "FORMAT_VERSION",
    "PlanLoadError",
    "load_plan",
    "plan_from_json",
    "plan_to_json",
    "resilience_from_json",
    "save_plan",
]
