"""Handling runtime variability of DLRM inputs (§10, "Handling Runtime
Variability").

Online click streams drift: average id-list lengths change, which changes
both the preprocessing kernel costs and the embedding stages' durations.
A plan searched for yesterday's distribution mis-sizes its kernels against
today's capacity. The paper's answer is periodic, cheap plan regeneration:
re-profile the overlapping capacity under the new distribution and re-run
the (fast) search.

This module implements that loop:

- :func:`drift_graph_set` -- derive the workload under a new average list
  length (the drift axis that moves both sides of the capacity equation);
- :class:`AdaptiveReplanner` -- monitor drift, decide when to regenerate
  (relative change beyond a threshold), and time the regeneration (which
  the paper reports as "a few minutes" on real hardware and is milliseconds
  here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..dlrm.training import TrainingWorkload
from ..preprocessing.graph import FeatureGraph, GraphSet
from .planner import RapPlan, RapPlanner, RapRunReport

__all__ = ["drift_graph_set", "scale_plan_kernels", "AdaptationEvent", "AdaptiveReplanner"]


def drift_graph_set(graph_set: GraphSet, list_length_scale: float) -> GraphSet:
    """The same feature graphs under a drifted id-list-length distribution.

    Multiplies every graph's average list length by ``list_length_scale``
    (>1: users interact more; <1: less), which rescales every sparse
    operator's work and therefore its kernel cost.
    """
    if list_length_scale <= 0:
        raise ValueError("list_length_scale must be positive")
    drifted = [
        FeatureGraph(
            name=g.name,
            ops=g.ops,
            consumer=g.consumer,
            avg_list_length=g.avg_list_length * list_length_scale,
        )
        for g in graph_set
    ]
    return GraphSet(drifted, rows=graph_set.rows)


def scale_plan_kernels(
    plan: RapPlan, scale: float
) -> tuple[list[dict[int, list]], list[list]]:
    """A plan's placement with every kernel duration scaled by ``scale``.

    This is the first-order stale-plan effect of input drift: the placement
    (which stage hosts which kernel) is frozen, but each kernel's work --
    and therefore its duration -- tracks the live distribution. Returns
    ``(assignments_per_gpu, trailing_per_gpu)`` ready for
    :meth:`repro.dlrm.training.TrainingWorkload.simulate`.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    assignments = [
        {
            idx: [k.with_duration(k.duration_us * scale) for k in kernels]
            for idx, kernels in per_gpu.items()
        }
        for per_gpu in plan.assignments_per_gpu
    ]
    trailing = [
        [k.with_duration(k.duration_us * scale) for k in kernels]
        for kernels in plan.trailing_per_gpu
    ]
    return assignments, trailing


@dataclass
class AdaptationEvent:
    """One replanning decision and its outcome."""

    list_length_scale: float
    replanned: bool
    regeneration_seconds: float
    iteration_us: float
    training_slowdown: float


@dataclass
class AdaptiveReplanner:
    """Periodically regenerates the RAP plan as the input distribution drifts.

    ``drift_threshold`` is the relative change in average list length that
    triggers regeneration; below it the current plan is kept (stale plans
    degrade gracefully because demand-fitted kernels merely grow or shrink
    against a fixed capacity budget).
    """

    workload: TrainingWorkload
    base_graphs: GraphSet
    drift_threshold: float = 0.15
    events: list[AdaptationEvent] = field(default_factory=list)
    _planner: RapPlanner = field(init=False)
    _plan: RapPlan = field(init=False)
    _planned_scale: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        self._planner = RapPlanner(self.workload)
        self._plan = self._planner.plan(self.base_graphs)

    @property
    def current_plan(self) -> RapPlan:
        return self._plan

    def observe(self, list_length_scale: float) -> AdaptationEvent:
        """Feed one observed distribution; replan if drift is excessive.

        Returns the event describing what happened, including the simulated
        iteration under whatever plan ended up active. The *active plan's*
        kernels are evaluated against the *drifted* workload: a stale plan
        under-sizes (or over-sizes) its kernels, which shows up as exposed
        preprocessing latency or contention.
        """
        drift = abs(list_length_scale - self._planned_scale) / self._planned_scale
        replanned = drift > self.drift_threshold
        regen_s = 0.0
        drifted = drift_graph_set(self.base_graphs, list_length_scale)
        if replanned:
            start = time.perf_counter()
            self._plan = self._planner.plan(drifted)
            regen_s = time.perf_counter() - start
            self._planned_scale = list_length_scale
            report = self._planner.evaluate(self._plan)
        else:
            report = self._evaluate_stale(drifted)
        event = AdaptationEvent(
            list_length_scale=list_length_scale,
            replanned=replanned,
            regeneration_seconds=regen_s,
            iteration_us=report.iteration_us,
            training_slowdown=report.training_slowdown,
        )
        self.events.append(event)
        return event

    def _evaluate_stale(self, drifted: GraphSet) -> RapRunReport:
        """Execute the *current* plan's placement against drifted kernels.

        Keeps each kernel's stage assignment but re-costs it under the new
        distribution by scaling kernel durations with the drifted total
        work -- the first-order effect of list-length drift.
        """
        planned_total = self._plan.graph_set.standalone_latency_us(self.workload.spec)
        drifted_total = drifted.standalone_latency_us(self.workload.spec)
        scale = drifted_total / planned_total if planned_total > 0 else 1.0
        assignments, trailing = scale_plan_kernels(self._plan, scale)
        result = self.workload.simulate(
            assignments_per_gpu=assignments,
            trailing_per_gpu=trailing,
            input_comm_bytes=self._plan.input_comm_bytes,
            input_comm_transfers=max(1, self._plan.input_comm_transfers),
        )
        prep = max(self._plan.data_prep_per_gpu, key=lambda p: p.total_us)
        timeline = self._planner.interleaver.steady_state(result.iteration_time_us, prep)
        return RapRunReport(plan=self._plan, cluster_result=result, timeline=timeline)
