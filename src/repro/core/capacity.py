"""Overlapping Capacity Estimator (§5.1).

For each DLRM training stage, the estimator answers: *how much standalone
preprocessing latency can co-run with this stage for free?* Following the
paper's latency-based preprocessing overhead abstraction, both the
capacity and the kernel cost are measured in the same currency --
standalone-execution microseconds -- because both are areas in the
utilization-time plane (Fig. 5a).

Two estimation paths are provided:

- ``estimate``: the analytic path used online -- stage duration scaled by
  how much of the probe kernel's demand the stage's leftover admits.
- ``measure``: the empirical path -- binary search over probe kernel sizes
  against the device simulator, used to validate the analytic estimate
  (and by the Fig. 5 harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpusim.device import GpuDevice, StageProfile
from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import GpuSpec, ResourceVector, A100_SPEC

__all__ = ["StageCapacity", "OverlappingCapacityEstimator", "REFERENCE_PROBE"]

# A mid-weight preprocessing kernel profile used as the default probe: the
# demand mix of a moderately fused normalization kernel.
REFERENCE_PROBE = ResourceVector(sm=0.30, dram=0.45)


@dataclass(frozen=True)
class StageCapacity:
    """One stage's overlapping capacity, in standalone-latency microseconds."""

    stage_name: str
    stage_index: int
    duration_us: float
    capacity_us: float
    leftover: ResourceVector

    @property
    def capacity_fraction(self) -> float:
        return self.capacity_us / self.duration_us if self.duration_us > 0 else 0.0


class OverlappingCapacityEstimator:
    """Profiles DLRM training stages for their overlapping capacity.

    The estimator is constructed once per device spec; capacity profiles
    are cached per (stage name, duration, probe) because the DLRM model is
    fixed across candidate schedules -- the paper's observation that the
    training-side profiling cost is paid once (§5.3).
    """

    def __init__(self, spec: GpuSpec = A100_SPEC) -> None:
        self.spec = spec
        self.device = GpuDevice(spec)
        self._cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Analytic path (used online)
    # ------------------------------------------------------------------

    def estimate(self, stage: StageProfile, probe: ResourceVector = REFERENCE_PROBE) -> float:
        """Capacity of one stage for kernels with the probe's demand mix."""
        key = (stage.name, round(stage.duration_us, 6), probe.as_tuple())
        if key not in self._cache:
            self._cache[key] = self.device.stage_overlapping_capacity(stage, probe)
        return self._cache[key]

    def profile_stages(
        self,
        stages: Sequence[StageProfile],
        probe: ResourceVector = REFERENCE_PROBE,
    ) -> list[StageCapacity]:
        """Capacity profile of a full iteration pipeline."""
        return [
            StageCapacity(
                stage_name=stage.name,
                stage_index=idx,
                duration_us=stage.duration_us,
                capacity_us=self.estimate(stage, probe),
                leftover=stage.leftover(),
            )
            for idx, stage in enumerate(stages)
        ]

    def total_capacity(
        self,
        stages: Sequence[StageProfile],
        probe: ResourceVector = REFERENCE_PROBE,
    ) -> float:
        return sum(c.capacity_us for c in self.profile_stages(stages, probe))

    # ------------------------------------------------------------------
    # Empirical path (validation / Fig. 5)
    # ------------------------------------------------------------------

    def measure(
        self,
        stage: StageProfile,
        probe_kernel: KernelDesc,
        tolerance: float = 0.01,
        max_iters: int = 40,
    ) -> float:
        """Empirically find the largest free co-running latency by bisection.

        Scales the probe kernel's duration up/down (at fixed demand) and
        simulates the co-run; the capacity is the largest standalone
        duration that leaves the stage's wall time within ``tolerance``
        of its standalone duration.
        """
        baseline = stage.duration_us
        if baseline <= 0:
            return 0.0

        def extends(duration: float) -> bool:
            kernel = probe_kernel.with_duration(duration)
            result = self.device.simulate_iteration([stage], assignments={0: [kernel]})
            return result.total_time_us > baseline * (1.0 + tolerance)

        lo, hi = 0.0, baseline
        if extends(hi):
            # Even a stage-length kernel contends: shrink the window.
            for _ in range(max_iters):
                mid = (lo + hi) / 2.0
                if mid <= 1e-9:
                    break
                if extends(mid):
                    hi = mid
                else:
                    lo = mid
                if hi - lo <= tolerance * baseline:
                    break
            return lo
        # A full-stage-length kernel co-runs free; capacity is the stage time.
        return baseline
