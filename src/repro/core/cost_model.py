"""Co-running Cost Model (§5.3, Fig. 6).

Given a candidate co-running schedule -- preprocessing kernels assigned to
DLRM training stages -- the cost model predicts its quality *without*
simulating it: the overlapping capacity estimator supplies each stage's
capacity ``C_op`` and the latency predictor supplies each kernel's
standalone latency ``l_i``; the cost of a stage is the exposed latency
``L_delta = sum(l_i) - C_op`` when positive. A schedule whose every stage
satisfies ``L_delta <= 0`` co-runs for free and end-to-end training matches
the preprocessing-free ideal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..gpusim.device import StageProfile
from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import ResourceVector
from .capacity import OverlappingCapacityEstimator, REFERENCE_PROBE
from .latency_predictor import PreprocessingLatencyPredictor

__all__ = ["StageCost", "CoRunCost", "CoRunningCostModel"]


@dataclass(frozen=True)
class StageCost:
    """Predicted cost of one stage's kernel assignment."""

    stage_name: str
    stage_index: int
    capacity_us: float
    assigned_latency_us: float

    @property
    def exposed_us(self) -> float:
        """The paper's L_delta for this stage, clamped at zero."""
        return max(0.0, self.assigned_latency_us - self.capacity_us)

    @property
    def slack_us(self) -> float:
        """Unused capacity (negative L_delta magnitude)."""
        return max(0.0, self.capacity_us - self.assigned_latency_us)


@dataclass
class CoRunCost:
    """Predicted cost of a full per-GPU co-running schedule."""

    stage_costs: list[StageCost] = field(default_factory=list)
    trailing_latency_us: float = 0.0

    @property
    def exposed_us(self) -> float:
        """Total exposed preprocessing latency: the schedule's cost."""
        return sum(s.exposed_us for s in self.stage_costs) + self.trailing_latency_us

    @property
    def total_capacity_us(self) -> float:
        return sum(s.capacity_us for s in self.stage_costs)

    @property
    def total_assigned_us(self) -> float:
        return sum(s.assigned_latency_us for s in self.stage_costs) + self.trailing_latency_us

    @property
    def is_contention_free(self) -> bool:
        return self.exposed_us <= 1e-9


class CoRunningCostModel:
    """Combines the capacity estimator and latency predictor (Fig. 6)."""

    def __init__(
        self,
        estimator: OverlappingCapacityEstimator,
        predictor: PreprocessingLatencyPredictor | None = None,
        probe: ResourceVector = REFERENCE_PROBE,
    ) -> None:
        self.estimator = estimator
        self.predictor = predictor
        self.probe = probe

    def kernel_latency(self, kernel: KernelDesc) -> float:
        """Standalone latency: predicted when a model is fitted, else true.

        The true-latency fallback is the "oracle" cost model used in tests
        to isolate scheduling quality from predictor error.
        """
        if self.predictor is not None and self.predictor.is_fitted:
            return self.predictor.predict_kernel(kernel)
        return kernel.duration_us

    def stage_capacity(self, stage: StageProfile) -> float:
        """Overlapping capacity of one stage, in standalone-latency units.

        Under RAP every placed kernel is demand-fitted to the stage's
        leftover resources, so it advances at its full standalone rate
        while the stage runs: the stage hosts up to its own wall time of
        co-running latency for free. (The probe-discounted estimate of
        :class:`OverlappingCapacityEstimator` is still used to *rank*
        stages -- roomier leftovers fit kernels with less shard inflation.)
        """
        return stage.duration_us

    def stage_selection_score(self, stage: StageProfile) -> float:
        """Probe-based stage ranking score (leftover quality x duration)."""
        return self.estimator.estimate(stage, self.probe)

    def evaluate(
        self,
        stages: Sequence[StageProfile],
        assignments: Mapping[int, Sequence[KernelDesc]],
        trailing: Sequence[KernelDesc] = (),
    ) -> CoRunCost:
        """Predict the exposed preprocessing latency of a candidate schedule."""
        costs: list[StageCost] = []
        for idx, stage in enumerate(stages):
            kernels = assignments.get(idx, ())
            assigned = sum(self.kernel_latency(k) for k in kernels)
            costs.append(
                StageCost(
                    stage_name=stage.name,
                    stage_index=idx,
                    capacity_us=self.stage_capacity(stage),
                    assigned_latency_us=assigned,
                )
            )
        trailing_latency = sum(self.kernel_latency(k) for k in trailing)
        return CoRunCost(stage_costs=costs, trailing_latency_us=trailing_latency)
