"""Resource-aware horizontal kernel fusion (§6).

Bridges the preprocessing-graph world and the MILP world: a set of feature
graphs assigned to one GPU is lowered to a :class:`FusionInstance`
(operator types + dependency edges), solved for the optimal horizontal
fusion plan, and the resulting fusion groups are materialized as fused
:class:`KernelDesc` objects in time-step order -- the ``Fused_Kernels``
queue consumed by Algorithm 1.

Also provides the two sharding primitives of §6.2:

- :func:`shard_by_latency` -- split a kernel so its first piece fits a
  remaining overlapping-capacity budget (Algorithm 1, lines 21-26).
- :func:`shard_to_fit_demand` -- split a kernel into equal pieces whose
  individual resource demand fits a training stage's leftover, avoiding
  contention entirely (the "resource-aware" part of fused-kernel sharding).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..gpusim.kernel import KernelDesc, fuse_kernels, shard_kernel
from ..gpusim.resources import GpuSpec, ResourceVector, A100_SPEC
from ..milp.branch_and_bound import BranchAndBoundSolver
from ..milp.fusion_problem import FusionAssignment, FusionInstance, solve_fusion
from ..preprocessing.graph import FeatureGraph

__all__ = [
    "FusionPlan",
    "HorizontalFusionPass",
    "build_fusion_instance",
    "shard_by_latency",
    "shard_to_fit_demand",
    "fit_kernel_to_leftover",
]


def build_fusion_instance(graphs: Sequence[FeatureGraph]) -> tuple[FusionInstance, list[tuple[int, int]]]:
    """Lower feature graphs to one fusion instance with global op indices.

    Returns the instance and a map from global op index to
    ``(graph_index, op_index_within_graph)``.
    """
    op_types: list[str] = []
    deps: list[tuple[int, int]] = []
    origin: list[tuple[int, int]] = []
    for g_idx, graph in enumerate(graphs):
        base = len(op_types)
        for o_idx, op in enumerate(graph.ops):
            op_types.append(op.op_name)
            origin.append((g_idx, o_idx))
        for src, dst in graph.edges:
            deps.append((base + src, base + dst))
    return FusionInstance(op_types=op_types, deps=deps), origin


@dataclass
class FusionPlan:
    """The fused kernel queue for one GPU, in execution (time-step) order."""

    kernels: list[KernelDesc]
    assignment: FusionAssignment | None = None
    fused: bool = True

    @property
    def total_latency_us(self) -> float:
        return sum(k.duration_us for k in self.kernels)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def max_fusion_degree(self) -> int:
        return max((int(k.meta.get("members", 1)) for k in self.kernels), default=0)


class HorizontalFusionPass:
    """Turns a GPU's feature graphs into an ordered fused-kernel queue.

    Solved fusion assignments are memoized on the *structure* of the
    lowered instance (operator types plus dependency edges). The mapping
    hill-climb re-fuses the same GPU groupings dozens of times per search,
    and a drifted replan changes kernel latencies but not the dependency
    structure, so both re-use earlier solves instead of re-running the
    MILP -- the assignment depends only on structure, never on latencies.
    """

    def __init__(
        self,
        spec: GpuSpec = A100_SPEC,
        enabled: bool = True,
        exact: bool | None = None,
        exact_op_limit: int = 20,
        solver: BranchAndBoundSolver | None = None,
    ) -> None:
        self.spec = spec
        self.enabled = enabled
        self.exact = exact
        self.exact_op_limit = exact_op_limit
        self.solver = solver
        self._memo: dict[tuple, tuple[list[int], str, str | None]] = {}
        self.memo_hits = 0

    def _solve_memoized(self, instance: FusionInstance) -> FusionAssignment:
        key = (tuple(instance.op_types), tuple(instance.deps))
        hit = self._memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            steps, method, milp_status = hit
            return FusionAssignment(instance, list(steps), method=method, milp_status=milp_status)
        assignment = solve_fusion(
            instance,
            exact=self.exact,
            exact_op_limit=self.exact_op_limit,
            solver=self.solver,
        )
        self._memo[key] = (list(assignment.steps), assignment.method, assignment.milp_status)
        return assignment

    def run(self, graphs: Sequence[FeatureGraph], rows: int) -> FusionPlan:
        """Fuse the graphs' kernels per the solved fusion assignment.

        With fusion disabled (the ``RAP w/o fusion`` ablation of Fig. 10),
        kernels are emitted individually in dependency order.
        """
        graphs = list(graphs)
        if not graphs:
            return FusionPlan(kernels=[], fused=self.enabled)
        per_graph_kernels = [g.kernels(rows, self.spec) for g in graphs]

        if not self.enabled:
            instance, origin = build_fusion_instance(graphs)
            order = sorted(range(len(origin)), key=lambda i: (instance.asap_levels()[i], i))
            kernels = [per_graph_kernels[origin[i][0]][origin[i][1]] for i in order]
            return FusionPlan(kernels=kernels, fused=False)

        instance, origin = build_fusion_instance(graphs)
        assignment = self._solve_memoized(instance)
        kernels: list[KernelDesc] = []
        for op_type, step, members in assignment.ordered_groups():
            member_kernels = [
                per_graph_kernels[origin[i][0]][origin[i][1]] for i in members
            ]
            kernels.append(fuse_kernels(member_kernels, self.spec))
        return FusionPlan(kernels=kernels, assignment=assignment, fused=True)


def shard_by_latency(
    kernel: KernelDesc,
    capacity_us: float,
    min_fraction: float = 0.05,
) -> tuple[KernelDesc, KernelDesc] | None:
    """Split ``kernel`` so the first shard's latency is about ``capacity_us``.

    Returns ``None`` when the capacity admits less than ``min_fraction`` of
    the kernel (sharding overhead would dominate) -- the caller should move
    on to the next training stage instead, exactly like Algorithm 1 pushes
    the remainder back onto the queue.
    """
    if kernel.duration_us <= 0:
        return None
    if kernel.warp_slots > 0 and kernel.waves <= 1.0:
        # A single-wave kernel cannot be made shorter by splitting: both
        # shards would keep the full wave-floor body and add a launch.
        return None
    fraction = capacity_us / kernel.duration_us
    if fraction >= 1.0:
        return None
    if fraction < min_fraction:
        return None
    return shard_kernel(kernel, fraction)


def shard_to_fit_demand(
    kernel: KernelDesc,
    leftover: ResourceVector,
    max_pieces: int = 16,
) -> list[KernelDesc] | None:
    """Split ``kernel`` into equal pieces whose demand fits ``leftover``.

    This is what makes the schedule *contention-free* on the device: a
    piece whose (SM, DRAM) demand fits inside the training stage's leftover
    co-runs at full speed with zero training slowdown.

    Sharding below one wave per piece is allowed but not free: a sub-wave
    shard still costs a full wave of execution (warps carry fixed
    per-thread work), so the pieces' total latency exceeds the parent's.
    The shards report their true inflated durations and the scheduler
    prices them against stage capacity -- hiding inflated work is still a
    win over exposing the un-inflated kernel. Returns ``None`` when the
    leftover is so thin that more than ``max_pieces`` pieces would be
    needed (each piece also pays launch overhead, so unbounded splitting
    is counterproductive).
    """
    sm_demand, dram_demand = kernel.demand.sm, kernel.demand.dram
    if sm_demand <= leftover.sm + 1e-12 and dram_demand <= leftover.dram + 1e-12:
        return [kernel]
    if (sm_demand > 0 and leftover.sm <= 0) or (dram_demand > 0 and leftover.dram <= 0):
        return None

    if kernel.warp_slots > 0 and kernel.num_warps > 0:
        # Pick the piece size so per-piece demand fits both resources. A
        # piece's SM demand is warps/slots; its DRAM demand scales with its
        # share of the parent's resident warps.
        limits = [float(kernel.num_warps)]
        if sm_demand > 0:
            limits.append(kernel.warp_slots * leftover.sm)
        if dram_demand > 0:
            limits.append(kernel.warp_slots * min(1.0, leftover.dram / dram_demand))
        max_piece_warps = min(limits)
        if max_piece_warps < 1.0:
            return None
        pieces = math.ceil(kernel.num_warps / max_piece_warps)
    else:
        ratios = [leftover.sm / sm_demand if sm_demand > 0 else math.inf,
                  leftover.dram / dram_demand if dram_demand > 0 else math.inf]
        ratio = min(ratios)
        if ratio <= 0.0:
            return None
        pieces = math.ceil(1.0 / ratio)
    if pieces > max_pieces:
        return None
    fraction = 1.0 / pieces
    shards: list[KernelDesc] = []
    remaining = kernel
    for i in range(pieces - 1):
        remaining_fraction = fraction / (1.0 - i * fraction)
        first, remaining = shard_kernel(remaining, remaining_fraction)
        shards.append(first)
    shards.append(remaining)
    return shards


def fit_kernel_to_leftover(
    kernel: KernelDesc,
    leftover: ResourceVector,
    spec: GpuSpec = A100_SPEC,
    max_pieces: int = 64,
) -> list[KernelDesc] | None:
    """Make ``kernel`` co-runnable within ``leftover``, the paper's way.

    §6.2: "RAP shards the kernel and reduces the kernel fusion degree until
    the kernel is small enough to co-run." The preference order is:

    1. The kernel already fits -- use it as is.
    2. The kernel is fused and its *members* can be regrouped into smaller
       fused kernels whose summed demand fits. This keeps every member at
       its natural wave efficiency (no latency inflation beyond the extra
       launches), so it is always preferred over warp-level splitting.
    3. Warp-level sharding (:func:`shard_to_fit_demand`), which may cost
       sub-wave inflation.

    Returns the replacement kernel list, or ``None`` when even a single
    member cannot be made to fit.
    """
    if kernel.demand.fits_within(leftover):
        return [kernel]
    members = kernel.meta.get("member_kernels") if kernel.meta else None
    if not members:
        return shard_to_fit_demand(kernel, leftover, max_pieces)

    pieces: list[KernelDesc] = []
    chunk: list[KernelDesc] = []
    chunk_demand = ResourceVector(0.0, 0.0)
    for member in members:
        candidate = chunk_demand + member.demand
        if chunk and not candidate.fits_within(leftover):
            pieces.append(fuse_kernels(chunk, spec) if len(chunk) > 1 else chunk[0])
            chunk = []
            chunk_demand = ResourceVector(0.0, 0.0)
            candidate = member.demand
        if not member.demand.fits_within(leftover):
            # Even alone the member is too wide: warp-shard it.
            shards = shard_to_fit_demand(member, leftover, max_pieces)
            if shards is None:
                return None
            pieces.extend(shards)
            continue
        chunk.append(member)
        chunk_demand = candidate
    if chunk:
        pieces.append(fuse_kernels(chunk, spec) if len(chunk) > 1 else chunk[0])
    if len(pieces) > max_pieces:
        return None
    return pieces
