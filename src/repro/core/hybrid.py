"""Hybrid CPU+GPU input preprocessing (§10, "Extend RAP to Hybrid ...").

The paper's discussion: when the preprocessing workload is exceptionally
intensive and leftover GPU capacity is limited, RAP can segment the
preprocessing graph into a GPU part (sized to the total overlapping
capacity) and a CPU part handed to a CPU preprocessing framework
(GoldMiner-style worker pools). This module implements that segmentation:

1. Estimate the cluster's total overlapping capacity per iteration.
2. Keep the most GPU-profitable graphs (highest CPU-to-GPU cost ratio) on
   the GPUs until the capacity budget is filled.
3. Send the remainder to a :class:`repro.baselines.torcharrow.CpuWorkerPool`
   running concurrently with training.

The steady-state iteration time is then
``max(RAP co-run iteration, CPU part's batch production time)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..baselines.torcharrow import CpuWorkerPool
from ..dlrm.training import TrainingWorkload
from ..gpusim.kernel import KernelDesc
from ..preprocessing.graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from .capacity import OverlappingCapacityEstimator
from .planner import RapPlanner, RapRunReport

__all__ = [
    "HybridSplit",
    "HybridReport",
    "HybridPlanner",
    "degraded_pool",
    "cpu_fallback_production_us",
]

# Single-CPU-worker slowdown vs. the GPU for a preprocessing kernel whose
# operator identity is no longer available (a sharded/fused descriptor).
# Matches the order of magnitude of the per-op cpu_latency_us/gpu ratios in
# repro.preprocessing.ops.
GPU_TO_CPU_SLOWDOWN = 25.0


@dataclass
class HybridSplit:
    """The graph-set segmentation: which features stay on the GPUs."""

    gpu_graphs: GraphSet
    cpu_graphs: GraphSet
    capacity_budget_us: float
    gpu_latency_us: float

    @property
    def num_gpu_features(self) -> int:
        return len(self.gpu_graphs)

    @property
    def num_cpu_features(self) -> int:
        return len(self.cpu_graphs)


@dataclass
class HybridReport:
    """Steady-state outcome of the hybrid pipeline."""

    split: HybridSplit
    rap_report: RapRunReport
    cpu_production_us: float

    @property
    def iteration_us(self) -> float:
        """The slower of the GPU co-run iteration and the CPU pipeline."""
        return max(self.rap_report.iteration_us, self.cpu_production_us)

    @property
    def throughput(self) -> float:
        workload = self.rap_report.plan.workload
        return workload.throughput_from_iteration(self.iteration_us)

    @property
    def cpu_bound(self) -> bool:
        return self.cpu_production_us > self.rap_report.iteration_us


def degraded_pool(pool: CpuWorkerPool, worker_fraction: float) -> CpuWorkerPool:
    """A pool running with only ``worker_fraction`` of its workers alive.

    Models the post-crash regime of a CPU preprocessing worker pool: until
    the supervisor respawns the dead workers, throughput drops in
    proportion to the surviving workers (the tf.data-service failure mode).
    """
    if not 0.0 < worker_fraction <= 1.0:
        raise ValueError("worker_fraction must be in (0, 1]")
    return replace(
        pool,
        workers_per_gpu=max(1, int(pool.workers_per_gpu * worker_fraction)),
        max_effective_workers=max(1, int(pool.max_effective_workers * worker_fraction)),
    )


def cpu_fallback_production_us(
    pool: CpuWorkerPool,
    kernels: Sequence[KernelDesc],
    num_gpus: int,
    gpu_to_cpu_slowdown: float = GPU_TO_CPU_SLOWDOWN,
) -> float:
    """Steady-state cost of producing ``kernels``' outputs on the CPU pool.

    Used by the fault-tolerant runtime's last degradation rung: a kernel
    that keeps failing on every GPU placement is evicted to the host. The
    kernel's GPU-standalone latency is converted to single-worker CPU work
    and divided across the pool, exactly like
    :meth:`repro.baselines.torcharrow.CpuWorkerPool.batch_production_us`.
    """
    if not kernels:
        return 0.0
    total_cpu_us = sum(k.duration_us for k in kernels) * gpu_to_cpu_slowdown
    return total_cpu_us / pool.effective_workers(num_gpus)


class HybridPlanner:
    """Segments a preprocessing workload across GPUs and a CPU pool."""

    def __init__(
        self,
        workload: TrainingWorkload,
        pool: CpuWorkerPool | None = None,
        capacity_fill: float = 0.9,
        planner: RapPlanner | None = None,
    ) -> None:
        if not 0.0 < capacity_fill <= 1.0:
            raise ValueError("capacity_fill must be in (0, 1]")
        self.workload = workload
        self.pool = pool or CpuWorkerPool()
        self.capacity_fill = capacity_fill
        self.planner = planner or RapPlanner(workload)
        self._estimator = OverlappingCapacityEstimator(workload.spec)

    # ------------------------------------------------------------------

    def total_capacity_us(self) -> float:
        """Cluster-wide overlapping capacity per iteration (time units)."""
        per_gpu = [
            sum(stage.duration_us for stage in self.workload.stages_for_gpu(g))
            for g in range(self.workload.num_gpus)
        ]
        return sum(per_gpu)

    def split(self, graph_set: GraphSet) -> HybridSplit:
        """Choose the GPU subset greedily by GPU-profitability.

        Dense graphs always stay on the GPUs (their outputs feed the local
        MLP replicas and are cheap). Sparse graphs are ranked by the ratio
        of their CPU cost to their GPU cost -- the features a CPU pool is
        worst at (feature generation) are kept on the GPUs first -- and
        admitted until ``capacity_fill`` of the total capacity is used.
        """
        budget = self.total_capacity_us() * self.capacity_fill
        spec = self.workload.spec
        global_batch = self.workload.global_batch

        # RAP will horizontally fuse whatever lands on the GPUs, so the
        # capacity a graph consumes is its share of the *fused* plan, not
        # its unfused standalone cost. One fusion pass over the whole set
        # yields the amortization ratio.
        from .fusion import HorizontalFusionPass

        unfused_total = graph_set.standalone_latency_us(spec)
        fused_total = HorizontalFusionPass(spec).run(list(graph_set), graph_set.rows).total_latency_us
        amortization = fused_total / unfused_total if unfused_total > 0 else 1.0

        gpu_side: list[FeatureGraph] = []
        cpu_side: list[FeatureGraph] = []
        used = 0.0
        for graph in graph_set:
            if graph.consumer == DENSE_CONSUMER:
                gpu_side.append(graph)
                used += (
                    graph.standalone_latency_us(self.workload.local_batch, spec)
                    * self.workload.num_gpus
                    * amortization
                )
        movable = [g for g in graph_set if g.consumer != DENSE_CONSUMER]
        movable.sort(
            key=lambda g: g.cpu_latency_us(global_batch)
            / max(g.standalone_latency_us(global_batch, spec), 1e-9),
            reverse=True,
        )
        for graph in movable:
            cost = graph.standalone_latency_us(global_batch, spec) * amortization
            if used + cost <= budget:
                gpu_side.append(graph)
                used += cost
            else:
                cpu_side.append(graph)
        return HybridSplit(
            gpu_graphs=GraphSet(gpu_side, rows=graph_set.rows),
            cpu_graphs=GraphSet(cpu_side, rows=graph_set.rows),
            capacity_budget_us=budget,
            gpu_latency_us=used,
        )

    def plan_and_evaluate(self, graph_set: GraphSet) -> HybridReport:
        """Segment, plan the GPU part with RAP, price the CPU part."""
        split = self.split(graph_set)
        rap_report = self.planner.plan_and_evaluate(split.gpu_graphs)
        if len(split.cpu_graphs):
            cpu_us = self.pool.batch_production_us(split.cpu_graphs, self.workload.num_gpus)
        else:
            cpu_us = 0.0
        return HybridReport(split=split, rap_report=rap_report, cpu_production_us=cpu_us)
