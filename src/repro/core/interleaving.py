"""Inter-batch workload interleaving (§6.3, Fig. 8).

A batch's GPU preprocessing kernels cannot start before its CPU-side data
preparation (allocation + H2D copy) finishes. Executed naively, the
preparation serializes with the kernels inside each iteration. RAP instead
interleaves across batches: during training iteration *i* the GPU co-runs
batch *i+1*'s preprocessing kernels while the CPU prepares batch *i+2* --
the dependency between a batch's own preparation and kernels is bypassed
because they now live in different iterations.

This module computes steady-state iteration time under both policies and
emits the per-iteration activity timeline the Fig.-8-style examples print.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..preprocessing.executor import DataPreparation

__all__ = ["SteadyStateTimeline", "InterbatchInterleaver"]


@dataclass(frozen=True)
class SteadyStateTimeline:
    """Steady-state per-iteration accounting for the input pipeline."""

    gpu_iteration_us: float
    data_prep_us: float
    interleaved: bool

    @property
    def iteration_us(self) -> float:
        """Effective steady-state iteration latency.

        Interleaved: CPU preparation for the next batch overlaps the GPU
        iteration, so the slower of the two paces the pipeline. Serial:
        preparation sits on the critical path of every iteration.
        """
        if self.interleaved:
            return max(self.gpu_iteration_us, self.data_prep_us)
        return self.gpu_iteration_us + self.data_prep_us

    @property
    def data_stall_us(self) -> float:
        """Time per iteration the GPU waits on input preparation."""
        if self.interleaved:
            return max(0.0, self.data_prep_us - self.gpu_iteration_us)
        return self.data_prep_us

    @property
    def hidden_fraction(self) -> float:
        """Fraction of preparation cost hidden under GPU execution."""
        if self.data_prep_us <= 0:
            return 1.0
        return 1.0 - self.data_stall_us / self.data_prep_us


class InterbatchInterleaver:
    """Applies the §6.3 interleaving policy to an iteration estimate."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled

    def steady_state(
        self,
        gpu_iteration_us: float,
        preparation: DataPreparation,
    ) -> SteadyStateTimeline:
        if gpu_iteration_us < 0:
            raise ValueError("gpu_iteration_us must be non-negative")
        return SteadyStateTimeline(
            gpu_iteration_us=gpu_iteration_us,
            data_prep_us=preparation.total_us,
            interleaved=self.enabled,
        )

    def pipeline_timeline(
        self,
        num_batches: int,
        gpu_iteration_us: float,
        preparation: DataPreparation,
    ) -> list[dict[str, float | int | str]]:
        """Per-iteration activity rows (what runs concurrently with what).

        Each row names the training batch, the preprocessing batch whose
        kernels co-run with it, and the batch being prepared on the CPU --
        the staggering illustrated in the paper's Fig. 8.
        """
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        steady = self.steady_state(gpu_iteration_us, preparation)
        rows: list[dict[str, float | int | str]] = []
        t = 0.0
        for i in range(num_batches):
            rows.append(
                {
                    "iteration": i,
                    "t_start_us": round(t, 3),
                    "training_batch": i,
                    "preprocessing_batch": i + 1 if self.enabled else i,
                    "preparing_batch": i + 2 if self.enabled else i + 1,
                    "iteration_us": round(steady.iteration_us, 3),
                }
            )
            t += steady.iteration_us
        return rows
