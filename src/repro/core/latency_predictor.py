"""ML-based Preprocessing Latency Predictor (§5.2).

RAP needs the standalone latency of arbitrary (possibly fused, possibly
sharded) preprocessing kernels while searching co-running plans, and
measuring each candidate on hardware would dominate the search. The paper
trains per-family XGBoost models offline from ~11K measured kernel
configurations; we do the same with our from-scratch GBDT
(:mod:`repro.ml`) against the simulator's ground-truth kernel latencies.

Families follow Table 5: Ngram, Onehot, Bucketize, and FirstX have unique
performance parameters and get dedicated models; every remaining operator
is latency-determined by its input shape and shares the ``1D Ops`` model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import GpuSpec, A100_SPEC
from ..ml.gbdt import GradientBoostingRegressor
from ..ml.metrics import within_tolerance_accuracy
from ..preprocessing.ops import (
    OP_REGISTRY,
    Bucketize,
    FirstX,
    Ngram,
    Onehot,
    PreprocessingOp,
)

__all__ = [
    "PREDICTOR_FAMILIES",
    "KernelSample",
    "collect_training_samples",
    "PreprocessingLatencyPredictor",
]

PREDICTOR_FAMILIES = ("1D Ops", "FirstX", "Ngram", "Onehot", "Bucketize")

_FEATURE_NAMES = (
    "num_warps",
    "log_warps",
    "members",
    "rows",
    "avg_list_length",
    "param_0",
)


@dataclass(frozen=True)
class KernelSample:
    """One (configuration, measured latency) pair for predictor training."""

    family: str
    features: tuple[float, ...]
    latency_us: float


def kernel_family(kernel: KernelDesc) -> str:
    """Map a kernel's operator tag to its Table-5 predictor family."""
    cls = OP_REGISTRY.get(kernel.tag)
    if cls is None:
        return "1D Ops"
    return cls.predictor_family


def kernel_features(kernel: KernelDesc) -> tuple[float, ...]:
    """Extract the predictor feature vector from a kernel descriptor.

    Works uniformly for plain, fused, and sharded kernels: warp count and
    fusion degree come from the descriptor, row counts and operator
    parameters from its metadata (0 when unknown).
    """
    meta = kernel.meta or {}
    params = meta.get("params", ())
    numeric = [p for p in params if isinstance(p, (int, float))]
    param0 = float(numeric[0]) if numeric else 0.0
    rows = float(meta.get("rows", 0))
    members = float(meta.get("members", 1))
    warps = float(kernel.num_warps)
    return (
        warps,
        float(np.log2(warps + 1.0)),
        members,
        rows,
        float(meta.get("avg_list_length", 0.0)),
        param0,
    )


def _sample_op(family: str, rng: np.random.Generator) -> tuple[PreprocessingOp, float]:
    """Draw a random operator configuration for one family.

    Returns the op and the average list length to cost it at.
    """
    avg_len = float(rng.uniform(1.0, 6.0))
    if family == "Ngram":
        k = int(rng.integers(2, 9))
        op = Ngram(
            inputs=tuple(f"f{i}" for i in range(k)),
            output="out",
            n=int(rng.integers(2, 5)),
            out_hash_size=int(rng.integers(10_000, 2_000_000)),
        )
    elif family == "Onehot":
        op = Onehot(inputs=("f0",), output="out", num_classes=int(rng.integers(4, 512)))
    elif family == "Bucketize":
        n_borders = int(rng.integers(2, 128))
        op = Bucketize(
            inputs=("f0",), output="out", borders=tuple(np.linspace(0.0, 1.0, n_borders))
        )
    elif family == "FirstX":
        op = FirstX(inputs=("f0",), output="out", x=int(rng.integers(1, 12)))
    else:  # 1D Ops: any shape-determined operator
        one_d = [
            name
            for name, cls in OP_REGISTRY.items()
            if cls.predictor_family == "1D Ops"
        ]
        name = one_d[int(rng.integers(0, len(one_d)))]
        op = OP_REGISTRY[name](inputs=("f0",), output="out")
    return op, avg_len


def collect_training_samples(
    num_samples: int = 11_000,
    spec: GpuSpec = A100_SPEC,
    seed: int = 7,
    families: Sequence[str] = PREDICTOR_FAMILIES,
) -> list[KernelSample]:
    """Offline training-data collection: ~11K kernel configs (as in §8.4).

    Each sample draws an operator family, a configuration, and a batch
    size, lowers it to a kernel, and records (features, measured latency).
    """
    rng = np.random.default_rng(seed)
    samples: list[KernelSample] = []
    for _ in range(num_samples):
        family = families[int(rng.integers(0, len(families)))]
        op, avg_len = _sample_op(family, rng)
        rows = int(rng.integers(256, 65_536))
        kernel = op.gpu_kernel(rows, spec, avg_list_length=avg_len)
        samples.append(
            KernelSample(
                family=family,
                features=kernel_features(kernel),
                latency_us=kernel.duration_us,
            )
        )
    return samples


class PreprocessingLatencyPredictor:
    """Per-family GBDT latency models with a shared feature schema."""

    def __init__(
        self,
        n_estimators: int = 150,
        max_depth: int = 6,
        learning_rate: float = 0.12,
        random_state: int = 0,
    ) -> None:
        self._params = {
            "n_estimators": n_estimators,
            "max_depth": max_depth,
            "learning_rate": learning_rate,
            "random_state": random_state,
        }
        self.models: dict[str, GradientBoostingRegressor] = {}

    # ------------------------------------------------------------------

    def fit(self, samples: Iterable[KernelSample]) -> "PreprocessingLatencyPredictor":
        """Train one model per family on log-latency targets."""
        by_family: dict[str, list[KernelSample]] = {}
        for s in samples:
            by_family.setdefault(s.family, []).append(s)
        if not by_family:
            raise ValueError("no training samples supplied")
        for family, rows in by_family.items():
            x = np.array([r.features for r in rows])
            y = np.log(np.array([r.latency_us for r in rows]) + 1e-9)
            model = GradientBoostingRegressor(**self._params)
            model.fit(x, y)
            self.models[family] = model
        return self

    @property
    def is_fitted(self) -> bool:
        return bool(self.models)

    # ------------------------------------------------------------------

    def predict_kernel(self, kernel: KernelDesc) -> float:
        """Predicted standalone latency (microseconds) of one kernel."""
        family = kernel_family(kernel)
        model = self.models.get(family) or self.models.get("1D Ops")
        if model is None:
            raise RuntimeError("predictor has no trained models")
        x = np.array([kernel_features(kernel)])
        return float(np.exp(model.predict(x)[0]))

    def predict_total(self, kernels: Sequence[KernelDesc]) -> float:
        """Sum of predicted standalone latencies (the Fig.-6 sum)."""
        return sum(self.predict_kernel(k) for k in kernels)

    def fingerprint(self) -> str:
        """Content identity of this trained model for plan-cache keys.

        Two predictors with equal hyperparameters trained on the same
        deterministic sample stream produce identical models, so the
        (params, families) pair identifies the predictions without hashing
        every tree.
        """
        import hashlib
        import json

        payload = json.dumps(
            {"params": self._params, "families": sorted(self.models)}, sort_keys=True
        )
        return f"gbdt:{hashlib.sha256(payload.encode()).hexdigest()[:16]}"

    # ------------------------------------------------------------------

    def evaluate(
        self,
        samples: Sequence[KernelSample],
        tolerance: float = 0.10,
    ) -> dict[str, float]:
        """Table-5 accuracy per family: fraction within ``tolerance``."""
        by_family: dict[str, tuple[list, list]] = {}
        for s in samples:
            xs, ys = by_family.setdefault(s.family, ([], []))
            xs.append(s.features)
            ys.append(s.latency_us)
        out: dict[str, float] = {}
        for family, (xs, ys) in by_family.items():
            model = self.models.get(family)
            if model is None:
                continue
            pred = np.exp(model.predict(np.array(xs)))
            out[family] = within_tolerance_accuracy(np.array(ys), pred, tolerance)
        return out


def train_default_predictor(
    num_samples: int = 11_000,
    spec: GpuSpec = A100_SPEC,
    seed: int = 7,
    holdout_fraction: float = 0.1,
) -> tuple[PreprocessingLatencyPredictor, dict[str, float]]:
    """Offline phase: collect samples, train, and report Table-5 accuracy.

    Samples are split 9:1 into train/eval as in the paper.
    """
    samples = collect_training_samples(num_samples, spec=spec, seed=seed)
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(len(samples))
    n_eval = max(1, int(len(samples) * holdout_fraction))
    eval_set = [samples[i] for i in perm[:n_eval]]
    train_set = [samples[i] for i in perm[n_eval:]]
    predictor = PreprocessingLatencyPredictor().fit(train_set)
    accuracy = predictor.evaluate(eval_set)
    return predictor, accuracy
