"""Preprocessing-graph mapping across GPUs (§3 Design Space 1, §7.2).

Three strategies, matching the paper's Fig. 12 study:

- **Data-parallel (DP) mapping**: every GPU preprocesses its own batch
  slice of every feature. Perfectly balanced, but sparse outputs must be
  redistributed to the GPU owning the consuming embedding table --
  input communication on the critical path.
- **Data-locality (DL) mapping**: each sparse feature's graph runs, for
  the whole global batch, on the GPU owning its table. Zero input
  communication, but the workload is as imbalanced as the table placement.
- **RAP joint mapping**: start from DL (communication-optimal), evaluate
  each GPU's intra-GPU co-running schedule with the cost model, and
  iteratively move whole graphs from the most expensive GPU to the
  cheapest when the balance gain outweighs the added communication.

Dense-consumer graphs are always processed locally per batch slice (each
GPU's MLP replica needs exactly its own slice), so only sparse-consumer
graphs are movable.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..dlrm.training import TrainingWorkload
from ..preprocessing.graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from .cost_model import CoRunningCostModel
from .fusion import HorizontalFusionPass
from .scheduler import CoRunSchedule, ResourceAwareScheduler

__all__ = [
    "GraphMapping",
    "MappingEvaluation",
    "map_data_parallel",
    "map_data_locality",
    "RapMapper",
    "rebuild_comm",
]


@dataclass
class GraphMapping:
    """Where each feature graph executes, and at what row count.

    ``placements[graph_name]`` is a list of ``(gpu, rows)`` pairs; most
    graphs run on one GPU, duplicated graphs (row-wise tables, dense
    slices) run on several.
    """

    strategy: str
    num_gpus: int
    placements: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    input_comm_bytes: float = 0.0
    input_comm_transfers: int = 0

    def graphs_on_gpu(self, graph_set: GraphSet, gpu: int) -> list[tuple[FeatureGraph, int]]:
        out: list[tuple[FeatureGraph, int]] = []
        for graph in graph_set:
            for g, rows in self.placements.get(graph.name, ()):
                if g == gpu:
                    out.append((graph, rows))
        return out

    def gpu_of(self, graph_name: str) -> list[int]:
        return [g for g, _ in self.placements.get(graph_name, ())]

    def work_us_per_gpu(self, graph_set: GraphSet, spec) -> list[float]:
        """Unfused standalone preprocessing latency mapped to each GPU."""
        loads = [0.0] * self.num_gpus
        for graph in graph_set:
            for g, rows in self.placements.get(graph.name, ()):
                loads[g] += graph.standalone_latency_us(rows, spec)
        return loads


def _owner_gpu(graph: FeatureGraph, workload: TrainingWorkload) -> list[int]:
    """GPUs consuming the graph's output (table owner, or all for row-wise)."""
    placement = workload.placement
    if placement.is_placed(graph.consumer):
        return placement.gpus_for_table(graph.consumer)
    # Consumer table unknown to the model (defensive): treat GPU 0 as owner.
    return [0]


def map_data_parallel(graph_set: GraphSet, workload: TrainingWorkload) -> GraphMapping:
    """DP mapping: slice-by-slice everywhere, pay output redistribution."""
    n = workload.num_gpus
    local = workload.local_batch
    mapping = GraphMapping(strategy="data_parallel", num_gpus=n)
    comm = 0.0
    transfers = 0
    for graph in graph_set:
        mapping.placements[graph.name] = [(g, local) for g in range(n)]
        if graph.consumer != DENSE_CONSUMER and n > 1:
            # Each slice's output moves to the owner unless produced there;
            # every feature is its own collective exchange.
            global_bytes = graph.output_nbytes(local * n)
            owners = _owner_gpu(graph, workload)
            transfers += 1
            if len(owners) == 1:
                comm += global_bytes * (n - 1) / n
            # Row-wise consumers need the ids everywhere; under DP each GPU
            # holds only its slice, so all slices are broadcast.
            else:
                comm += global_bytes * (n - 1)
    mapping.input_comm_bytes = comm
    mapping.input_comm_transfers = transfers
    return mapping


def map_data_locality(graph_set: GraphSet, workload: TrainingWorkload) -> GraphMapping:
    """DL mapping: produce every output on the GPU(s) that consume it."""
    n = workload.num_gpus
    local = workload.local_batch
    global_batch = workload.global_batch
    mapping = GraphMapping(strategy="data_locality", num_gpus=n)
    for graph in graph_set:
        if graph.consumer == DENSE_CONSUMER:
            mapping.placements[graph.name] = [(g, local) for g in range(n)]
        else:
            owners = _owner_gpu(graph, workload)
            mapping.placements[graph.name] = [(g, global_batch) for g in owners]
    mapping.input_comm_bytes = 0.0
    return mapping


def rebuild_comm(
    mapping: GraphMapping, graph_set: GraphSet, workload: TrainingWorkload
) -> None:
    """Recompute a mapping's input-communication totals from its placements.

    Used when placements are reused against a *changed* graph set (an
    incremental replan after drift): output sizes depend on the live
    list-length distribution, so the totals accumulated move-by-move during
    the original search are stale. Mirrors the move-delta accounting: a
    single-placement sparse graph produced away from its consumer pays one
    transfer of its whole-batch output.
    """
    comm = 0.0
    transfers = 0
    global_batch = workload.global_batch
    for graph in graph_set:
        if graph.consumer == DENSE_CONSUMER:
            continue
        placed = mapping.placements.get(graph.name, [])
        if len(placed) != 1:
            continue  # duplicated (row-wise) graphs run on every consumer
        if placed[0][0] not in _owner_gpu(graph, workload):
            comm += graph.output_nbytes(global_batch)
            transfers += 1
    mapping.input_comm_bytes = comm
    mapping.input_comm_transfers = transfers


@dataclass
class MappingEvaluation:
    """Cost-model view of one candidate mapping."""

    mapping: GraphMapping
    schedules: list[CoRunSchedule]
    comm_us: float
    #: Set only when the evaluation was rebuilt from a serialized plan (the
    #: schedules themselves are not persisted); live evaluations derive the
    #: exposure from their schedules.
    exposed_us_per_gpu: list[float] | None = None

    @property
    def exposed_per_gpu(self) -> list[float]:
        if self.exposed_us_per_gpu is not None:
            return list(self.exposed_us_per_gpu)
        return [s.exposed_us for s in self.schedules]

    @property
    def objective_us(self) -> float:
        """Iteration overhead: slowest GPU's exposure plus input comm."""
        return max(self.exposed_per_gpu, default=0.0) + self.comm_us

    @property
    def objective_key(self) -> tuple[float, float]:
        """Lexicographic objective: (max exposure + comm, total exposure).

        The secondary term lets the hill climber make progress when several
        GPUs tie at the maximum -- a single move then reduces total load
        even though the max is momentarily unchanged.
        """
        return (self.objective_us, sum(self.exposed_per_gpu) + self.comm_us)


def _init_candidate_worker(payload: bytes) -> None:
    """Worker initializer: unpickle the (mapper, graph set) pair once."""
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)


_WORKER_STATE: tuple | None = None


def _evaluate_candidate_task(mapping: GraphMapping) -> MappingEvaluation:
    mapper, graph_set = _WORKER_STATE
    return mapper.evaluate(graph_set, mapping)


class RapMapper:
    """The §7.2 joint mapping + scheduling heuristic.

    With ``parallel=True`` each hill-climb round's candidate mappings are
    priced concurrently in a process pool. Evaluation is a pure function of
    (mapper state, graph set, mapping), and results are reduced in the
    candidates' submission order, so the search trajectory -- and therefore
    the final plan -- is bit-identical to the sequential path.
    """

    def __init__(
        self,
        workload: TrainingWorkload,
        cost_model: CoRunningCostModel,
        fusion: HorizontalFusionPass,
        scheduler: ResourceAwareScheduler,
        max_moves: int | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.workload = workload
        self.cost_model = cost_model
        self.fusion = fusion
        self.scheduler = scheduler
        self.max_moves = max_moves
        self.parallel = parallel
        self.max_workers = max_workers
        self._parallel_broken = False

    # ------------------------------------------------------------------
    # Parallel candidate evaluation
    # ------------------------------------------------------------------

    def _make_pool(self, graph_set: GraphSet) -> ProcessPoolExecutor | None:
        """Spin up a candidate-evaluation pool, or ``None`` when impossible."""
        if self._parallel_broken:
            return None
        try:
            payload = pickle.dumps((self, graph_set))
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            workers = self.max_workers or min(4, os.cpu_count() or 1)
            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_init_candidate_worker,
                initargs=(payload,),
            )
        except Exception:
            self._parallel_broken = True
            return None

    def _evaluate_candidates(
        self,
        graph_set: GraphSet,
        candidates: list[GraphMapping],
        pool: ProcessPoolExecutor | None,
    ) -> list[MappingEvaluation]:
        """Price every candidate, preserving submission order exactly."""
        if pool is not None and len(candidates) > 1:
            try:
                futures = [pool.submit(_evaluate_candidate_task, c) for c in candidates]
                return [f.result() for f in futures]
            except Exception:
                # A broken pool (pickling, crashed worker) falls back to the
                # sequential path for the remainder of the search.
                self._parallel_broken = True
        return [self.evaluate(graph_set, c) for c in candidates]

    # ------------------------------------------------------------------

    def evaluate(self, graph_set: GraphSet, mapping: GraphMapping) -> MappingEvaluation:
        """Schedule each GPU's graphs and price the mapping."""
        schedules: list[CoRunSchedule] = []
        for gpu in range(self.workload.num_gpus):
            schedules.append(self._schedule_gpu(graph_set, mapping, gpu))
        comm_us = self.workload.cluster.interconnect.redistribution_us(
            mapping.input_comm_bytes,
            self.workload.num_gpus,
            num_transfers=max(1, mapping.input_comm_transfers),
        )
        return MappingEvaluation(mapping=mapping, schedules=schedules, comm_us=comm_us)

    def _schedule_gpu(self, graph_set: GraphSet, mapping: GraphMapping, gpu: int) -> CoRunSchedule:
        entries = mapping.graphs_on_gpu(graph_set, gpu)
        # Fusion operates per row-count group (kernels of different row
        # counts of the same op type still fuse; the instance does not care).
        stages = self.workload.stages_for_gpu(gpu)
        if not entries:
            return self.scheduler.schedule(stages, [])
        kernels = []
        by_rows: dict[int, list[FeatureGraph]] = {}
        for graph, rows in entries:
            by_rows.setdefault(rows, []).append(graph)
        for rows, graphs in sorted(by_rows.items()):
            plan = self.fusion.run(graphs, rows)
            kernels.extend(plan.kernels)
        return self.scheduler.schedule(stages, kernels)

    # ------------------------------------------------------------------

    def optimize(
        self,
        graph_set: GraphSet,
        patience: int = 6,
        initial_mapping: GraphMapping | None = None,
        budget: int | None = None,
    ) -> MappingEvaluation:
        """Run the four-step heuristic of §7.2.

        Step 1 initializes from data locality; steps 2-4 iterate: evaluate
        via the intra-GPU schedule, move one graph from the most expensive
        GPU to the cheapest, and repeat. Individual moves may transiently
        worsen the objective (rebalancing two overloaded GPUs requires one
        move each, and the first move alone adds communication without
        lowering the max), so the walk continues for up to ``patience``
        non-improving rounds and the best mapping seen is returned --
        the "weigh the benefits" acceptance of the paper applied globally
        rather than per move.

        ``initial_mapping`` warm-starts the walk from a previous plan's
        placements instead of data locality (incremental re-planning), and
        ``budget`` overrides the move budget -- a warm start near the
        optimum needs far fewer moves than a cold search.
        """
        n = self.workload.num_gpus
        if initial_mapping is not None:
            mapping = initial_mapping
        else:
            mapping = map_data_locality(graph_set, self.workload)
        current = self.evaluate(graph_set, mapping)
        best = current
        if n == 1:
            best.mapping.strategy = "rap"
            return best
        if budget is None:
            budget = self.max_moves if self.max_moves is not None else 4 * len(graph_set.graphs)
        global_batch = self.workload.global_batch
        stale = 0
        pool = self._make_pool(graph_set) if self.parallel else None

        try:
            for _ in range(budget):
                exposed = current.exposed_per_gpu
                src = max(range(n), key=lambda g: exposed[g])
                dst = min(range(n), key=lambda g: exposed[g])
                if src == dst or exposed[src] <= 1e-9:
                    break
                candidates = list(
                    self._candidate_moves(graph_set, current.mapping, src, dst, global_batch)
                )
                if not candidates:
                    break
                evaluations = self._evaluate_candidates(graph_set, candidates, pool)
                current = min(evaluations, key=lambda e: e.objective_key)
                if current.objective_key < best.objective_key:
                    best = current
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        best.mapping.strategy = "rap"
        return best

    def _candidate_moves(
        self,
        graph_set: GraphSet,
        mapping: GraphMapping,
        src: int,
        dst: int,
        global_batch: int,
        max_candidates: int = 4,
    ):
        """Yield mappings moving one of ``src``'s largest graphs to ``dst``.

        Only single-owner sparse graphs are movable; dense slices are
        pinned and duplicated row-wise graphs already run everywhere.
        Candidates are ordered largest-first: the balance gain of a move is
        roughly the moved graph's standalone latency, so big graphs are
        tried before small ones.
        """
        movable: list[FeatureGraph] = []
        for graph in graph_set:
            if graph.consumer == DENSE_CONSUMER:
                continue
            placed = mapping.placements.get(graph.name, [])
            if len(placed) == 1 and placed[0][0] == src:
                movable.append(graph)
        movable.sort(
            key=lambda g: g.standalone_latency_us(global_batch, self.workload.spec),
            reverse=True,
        )
        for chosen in movable[:max_candidates]:
            new_mapping = GraphMapping(
                strategy="rap",
                num_gpus=mapping.num_gpus,
                placements={k: list(v) for k, v in mapping.placements.items()},
                input_comm_bytes=mapping.input_comm_bytes,
                input_comm_transfers=mapping.input_comm_transfers,
            )
            new_mapping.placements[chosen.name] = [(dst, global_batch)]
            owners = _owner_gpu(chosen, self.workload)
            was_local = mapping.placements[chosen.name][0][0] in owners
            now_local = dst in owners
            delta = 0.0
            if was_local and not now_local:
                delta = chosen.output_nbytes(global_batch)
                new_mapping.input_comm_transfers = mapping.input_comm_transfers + 1
            elif not was_local and now_local:
                delta = -chosen.output_nbytes(global_batch)
                new_mapping.input_comm_transfers = max(0, mapping.input_comm_transfers - 1)
            new_mapping.input_comm_bytes = max(0.0, mapping.input_comm_bytes + delta)
            yield new_mapping
