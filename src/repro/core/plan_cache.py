"""Content-addressed caching of searched plans (the planner fast path).

RAP's usability depends on re-planning being cheap: the runtime watchdog
asks for a fresh plan whenever measured exposure drifts from the
prediction, and a production deployment replans the same workload across
process restarts. This module makes the common case -- "nothing that
matters changed" -- a hash lookup instead of a full Algorithm-1 search.

A plan is cached under a SHA-256 of everything the search consumes:

- the **workload**: GPU count, batch size, GPU spec, embedding placement,
  and every training stage's (name, duration, SM/DRAM utilization) --
  capacity changes invalidate;
- the **graph set**: per-graph operator structure, parameters, consumers,
  and list-length statistics -- kernel changes invalidate;
- the **planner knobs**: mapping strategy, fusion/interleaving toggles,
  move budgets, and the MILP solver's limits -- search-behaviour changes
  invalidate;
- the **code version** (:data:`PLANNER_CODE_VERSION`): bumped whenever the
  search algorithm changes, so stale artifacts from older planners are
  never resurrected.

Entries are the exact JSON text of :func:`repro.core.serialization.plan_to_json`,
persisted next to plan artifacts when a directory is given, so a warm hit
is bit-identical to the cold search that produced it.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..dlrm.training import TrainingWorkload
from ..ioutil import advisory_lock, atomic_write_text
from ..preprocessing.graph import DENSE_CONSUMER, FeatureGraph, GraphSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner -> here)
    from ..milp.branch_and_bound import BranchAndBoundSolver
    from .planner import RapPlan

__all__ = [
    "PLANNER_CODE_VERSION",
    "PlanCacheStats",
    "PlanCache",
    "graph_structure_key",
    "graph_fingerprint",
    "graph_set_fingerprint",
    "workload_fingerprint",
    "plan_cache_key",
    "canonical_name_maps",
    "invariant_graph_set_fingerprint",
    "invariant_workload_fingerprint",
    "invariant_plan_key",
]

#: Version tag of the planning algorithm itself. Bump on any change to the
#: search (mapping heuristic, fusion formulation, scheduler) that can alter
#: the produced plan: cached entries keyed under older versions become
#: unreachable rather than silently serving stale plans.
#: rap-planner-3: the cache key gained the latency predictor's fingerprint
#: (online calibration can change predictions without changing the
#: workload, so pre-calibration entries must not serve a calibrated
#: request).
PLANNER_CODE_VERSION = "rap-planner-3"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def graph_structure_key(graph: FeatureGraph) -> tuple:
    """The latency-independent structure of one feature graph.

    Captures what the fusion MILP and the mapping search *see* -- operator
    types, wiring, parameters, and the consumer -- but not the list-length
    statistics that only rescale kernel latencies. Incremental re-planning
    compares structure keys to decide how much of a previous plan survives.
    """
    return (
        graph.name,
        graph.consumer,
        tuple(
            (op.op_name, op.inputs, op.output, op._params_key())
            for op in graph.ops
        ),
    )


def graph_fingerprint(graph: FeatureGraph) -> tuple:
    """Full per-graph key: structure plus the latency-scaling statistics."""
    return graph_structure_key(graph) + (float(graph.avg_list_length),)


def graph_set_fingerprint(graph_set: GraphSet) -> str:
    payload = (graph_set.rows, tuple(graph_fingerprint(g) for g in graph_set))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def workload_fingerprint(workload: TrainingWorkload) -> str:
    """Hash of everything the workload contributes to the search.

    The per-stage (duration, utilization) tuples are included directly, so
    any change to stage capacities -- recalibration, a different spec, a
    new placement -- invalidates cached plans even when the headline shape
    (GPU count x batch) is unchanged.
    """
    spec = workload.spec
    placement = workload.placement
    stages = tuple(
        (gpu, s.name, s.duration_us, s.utilization.sm, s.utilization.dram)
        for gpu in range(workload.num_gpus)
        for s in workload.stages_for_gpu(gpu)
    )
    payload = (
        workload.config.name,
        workload.num_gpus,
        workload.local_batch,
        (
            spec.name,
            spec.num_sms,
            spec.warps_per_sm,
            spec.dram_bw_gbps,
            spec.mem_gb,
            spec.fp32_tflops,
            spec.nvlink_bw_gbps,
            spec.pcie_bw_gbps,
            spec.kernel_launch_us,
        ),
        tuple(sorted(placement.table_to_gpu.items())),
        tuple(sorted(placement.row_wise_tables)),
        stages,
    )
    if getattr(workload, "specs", None) is not None:
        # Heterogeneous fleet: the per-GPU profile sequence is identity, not
        # just the stage numbers it happens to produce. Appended only when
        # set, so every homogeneous fingerprint is unchanged.
        payload = payload + (workload.fleet_profile,)
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def plan_cache_key(
    workload: TrainingWorkload,
    graph_set: GraphSet,
    mapping_strategy: str,
    fusion_enabled: bool,
    interleaving_enabled: bool,
    exact_fusion: bool | None,
    max_mapping_moves: int | None,
    solver: "BranchAndBoundSolver",
    code_version: str | None = None,
    predictor_fingerprint: str | None = None,
) -> str:
    """The content address of one planning request.

    ``predictor_fingerprint`` identifies the latency model pricing the
    search (``None`` = the oracle). Online calibration changes predictions
    without touching the workload or graphs, so the fingerprint keeps a
    recalibrated replan from resurrecting the stale pre-drift plan.
    """
    payload = (
        code_version if code_version is not None else PLANNER_CODE_VERSION,
        workload_fingerprint(workload),
        graph_set_fingerprint(graph_set),
        mapping_strategy,
        fusion_enabled,
        interleaving_enabled,
        exact_fusion,
        max_mapping_moves,
        (solver.node_limit, solver.time_limit_s, solver.integrality_tol, solver.gap_tol),
        predictor_fingerprint,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


# ----------------------------------------------------------------------
# Tenant-invariant fingerprints
#
# Two tenants submitting *isomorphic* workloads -- same operator DAGs,
# same batch shape, same placement topology, but tenant-prefixed graph,
# column, and table names -- describe the same planning problem. The
# helpers below canonically relabel every name by order of first
# appearance (graphs by graph-set order, columns by op order within that,
# embedding tables by consumer order; the replicated ``dense`` consumer is
# structural and keeps its name), so isomorphic specs produce identical
# fingerprints while anything that actually moves the search -- stage
# capacities, knobs, the calibration fingerprint -- still invalidates.
# ----------------------------------------------------------------------


def canonical_name_maps(graph_set: GraphSet) -> tuple[dict, dict, dict]:
    """Maps from real names to canonical names: (graphs, columns, consumers).

    Deterministic in graph-set order: graph ``i`` becomes ``g<i>``, columns
    become ``c<j>`` by first appearance walking each graph's ops in order
    (inputs before output), embedding-table consumers become ``t<k>`` by
    first appearance. ``DENSE_CONSUMER`` maps to itself -- whether a graph
    feeds the replicated dense stack or a sharded table changes where its
    output must land, so it is structure, not naming.
    """
    graph_map: dict[str, str] = {}
    column_map: dict[str, str] = {}
    consumer_map: dict[str, str] = {DENSE_CONSUMER: DENSE_CONSUMER}
    tables = 0
    for gi, graph in enumerate(graph_set):
        graph_map[graph.name] = f"g{gi}"
        if graph.consumer not in consumer_map:
            consumer_map[graph.consumer] = f"t{tables}"
            tables += 1
        for op in graph.ops:
            for col in op.inputs:
                column_map.setdefault(col, f"c{len(column_map)}")
            column_map.setdefault(op.output, f"c{len(column_map)}")
    return graph_map, column_map, consumer_map


def _invariant_graph_fingerprint(
    graph: FeatureGraph, column_map: dict, consumer_map: dict
) -> tuple:
    return (
        consumer_map[graph.consumer],
        tuple(
            (
                op.op_name,
                tuple(column_map[c] for c in op.inputs),
                column_map[op.output],
                op._params_key(),
            )
            for op in graph.ops
        ),
        float(graph.avg_list_length),
    )


def invariant_graph_set_fingerprint(graph_set: GraphSet) -> str:
    """Like :func:`graph_set_fingerprint` but under canonical relabeling.

    Graph identity is positional (graph ``i``'s fingerprint sits at slot
    ``i``), so graph names drop out entirely.
    """
    _, column_map, consumer_map = canonical_name_maps(graph_set)
    payload = (
        graph_set.rows,
        tuple(
            _invariant_graph_fingerprint(g, column_map, consumer_map)
            for g in graph_set
        ),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def invariant_workload_fingerprint(
    workload: TrainingWorkload, graph_set: GraphSet
) -> str:
    """Like :func:`workload_fingerprint` but with table names canonicalized.

    The embedding placement's table names are the graph consumers, so the
    same consumer map relabels them; the model config's *name* (a preset
    label tenants are free to decorate) is dropped -- every capacity-moving
    consequence of the config is already hashed through the stages.
    """
    _, _, consumer_map = canonical_name_maps(graph_set)
    spec = workload.spec
    placement = workload.placement
    stages = tuple(
        (gpu, s.name, s.duration_us, s.utilization.sm, s.utilization.dram)
        for gpu in range(workload.num_gpus)
        for s in workload.stages_for_gpu(gpu)
    )
    payload = (
        workload.num_gpus,
        workload.local_batch,
        (
            spec.name,
            spec.num_sms,
            spec.warps_per_sm,
            spec.dram_bw_gbps,
            spec.mem_gb,
            spec.fp32_tflops,
            spec.nvlink_bw_gbps,
            spec.pcie_bw_gbps,
            spec.kernel_launch_us,
        ),
        tuple(
            sorted(
                (consumer_map.get(t, t), gpu)
                for t, gpu in placement.table_to_gpu.items()
            )
        ),
        tuple(sorted(consumer_map.get(t, t) for t in placement.row_wise_tables)),
        stages,
    )
    if getattr(workload, "specs", None) is not None:
        payload = payload + (workload.fleet_profile,)
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def invariant_plan_key(
    workload: TrainingWorkload,
    graph_set: GraphSet,
    mapping_strategy: str,
    fusion_enabled: bool,
    interleaving_enabled: bool,
    exact_fusion: bool | None,
    max_mapping_moves: int | None,
    solver: "BranchAndBoundSolver",
    code_version: str | None = None,
    predictor_fingerprint: str | None = None,
) -> str:
    """The tenant-invariant content address of one planning request.

    Mirrors :func:`plan_cache_key` with the invariant fingerprints swapped
    in (plus a domain salt so the two key spaces can share one directory).
    ``predictor_fingerprint`` stays in the key: a tenant whose calibration
    has drifted prices kernels differently and must not inherit another
    tenant's plan.
    """
    payload = (
        "tenant-invariant",
        code_version if code_version is not None else PLANNER_CODE_VERSION,
        invariant_workload_fingerprint(workload, graph_set),
        invariant_graph_set_fingerprint(graph_set),
        mapping_strategy,
        fusion_enabled,
        interleaving_enabled,
        exact_fusion,
        max_mapping_moves,
        (solver.node_limit, solver.time_limit_s, solver.integrality_tol, solver.gap_tol),
        predictor_fingerprint,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Hit/miss accounting for one plan cache.

    ``disk_hits`` counts the subset of ``hits`` served by the persistent
    tier (a fresh process starting warm) rather than process memory.
    ``lock_contention`` counts stores that skipped the disk tier because
    another process held the advisory lock -- a distinct outcome, not a
    miss: the memory tier still serves and nothing was evicted.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    lock_contention: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "lock_contention": self.lock_contention,
        }


class PlanCache:
    """Two-tier (memory + optional directory) store of searched plans.

    Entries are exact serialized-plan text; a hit deserializes against the
    live workload and graph set, so re-serializing a warm plan reproduces
    the stored bytes and the plan is bit-identical to the cold search.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, str] = {}
        self.stats = PlanCacheStats()
        self._metrics = None
        # Reentrant: a service admission thread holding the cache lock may
        # re-enter through the planner's own get/put during a cold search.
        self._tier_lock = threading.RLock()

    def bind_metrics(self, registry, cache: str = "plan") -> None:
        """Mirror hit/miss/store accounting into a telemetry registry."""
        self._metrics = registry
        self._metric_label = cache

    def _count(self, outcome: str, tier: str | None = None) -> None:
        if self._metrics is None:
            return
        labels = {"cache": self._metric_label}
        if tier is not None:
            labels["tier"] = tier
        self._metrics.counter(
            f"rap_cache_{outcome}_total",
            help=f"Cache {outcome} by cache and tier",
            labels=labels,
        ).inc()

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.plan.json"

    def get(
        self, key: str, workload: TrainingWorkload, graph_set: GraphSet
    ) -> "RapPlan | None":
        from .serialization import PlanLoadError, plan_from_json

        with self._tier_lock:
            tier = "memory"
            text = self._memory.get(key)
            if text is None and self.directory is not None:
                path = self._path(key)
                if path.exists():
                    try:
                        text = path.read_text()
                    except OSError:
                        text = None
                    else:
                        tier = "disk"
            if text is not None:
                try:
                    plan = plan_from_json(text, workload, graph_set)
                except PlanLoadError:
                    # A torn or stale artifact is a miss, never an error: the
                    # planner falls through to a fresh search and overwrites it.
                    text = None
                else:
                    self._memory[key] = text
                    self.stats.hits += 1
                    if tier == "disk":
                        self.stats.disk_hits += 1
                    self._count("hits", tier)
                    return plan
            self.stats.misses += 1
            self._count("misses")
            return None

    def get_text(self, key: str) -> str | None:
        """The raw stored plan text, without deserializing (no stats)."""
        with self._tier_lock:
            text = self._memory.get(key)
            if text is None and self.directory is not None:
                path = self._path(key)
                if path.exists():
                    try:
                        text = path.read_text()
                    except OSError:
                        text = None
            return text

    def put(self, key: str, plan: "RapPlan") -> None:
        from .serialization import plan_to_json

        self.put_text(key, plan_to_json(plan))

    def put_text(self, key: str, text: str) -> None:
        """Store exact serialized-plan text under ``key``."""
        with self._tier_lock:
            self._memory[key] = text
            self.stats.stores += 1
            self._count("stores")
            if self.directory is not None:
                # Atomic write under an advisory lock: concurrent planners
                # never interleave bytes, and a held lock degrades to
                # skipping the disk tier (the memory tier still serves; a
                # reader sees either the old complete entry or the new one).
                try:
                    with advisory_lock(self.directory / ".lock") as acquired:
                        if acquired:
                            atomic_write_text(self._path(key), text)
                        else:
                            self.stats.lock_contention += 1
                            self._count("lock_contention", "disk")
                except OSError:
                    pass  # best-effort persistence; the memory tier still serves

    def __len__(self) -> int:
        with self._tier_lock:
            return len(self._memory)
