"""The end-to-end RAP planner (§4, Fig. 4).

Ties the whole pipeline together:

- **Offline**: train the preprocessing latency predictor from sampled
  kernel measurements (:func:`repro.core.latency_predictor.train_default_predictor`),
  or run with the oracle cost model (true simulated latencies) when
  isolating scheduling quality from predictor error.
- **Online**: profile the training workload's overlapping capacity, map
  the preprocessing graphs across GPUs, fuse horizontally per GPU, build
  the Algorithm-1 co-running schedule, and assemble the executable plan.

The planner also exposes the paper's ablations: mapping strategy
(``"rap"`` / ``"data_parallel"`` / ``"data_locality"``), horizontal fusion
on/off, and inter-batch interleaving on/off -- the knobs behind Fig. 10
and Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dlrm.training import TrainingWorkload
from ..gpusim.cluster import ClusterIterationResult
from ..gpusim.device import RAP_POLICY, CoRunPolicy
from ..gpusim.kernel import KernelDesc
from ..milp.branch_and_bound import BranchAndBoundSolver
from ..milp.solve_cache import SolveCache
from ..preprocessing.executor import DataPreparation, estimate_data_preparation
from ..preprocessing.graph import GraphSet
from .capacity import OverlappingCapacityEstimator
from .cost_model import CoRunningCostModel
from .fusion import HorizontalFusionPass
from .interleaving import InterbatchInterleaver, SteadyStateTimeline
from .latency_predictor import PreprocessingLatencyPredictor
from .mapping import (
    GraphMapping,
    MappingEvaluation,
    RapMapper,
    map_data_locality,
    map_data_parallel,
    rebuild_comm,
)
from .plan_cache import PlanCache, graph_structure_key, plan_cache_key
from .scheduler import ResourceAwareScheduler

__all__ = ["RapPlan", "RapRunReport", "RapPlanner", "PlannerStats"]

MAPPING_STRATEGIES = ("rap", "data_parallel", "data_locality")


@dataclass
class RapPlan:
    """A fully searched co-running plan, ready to execute or simulate."""

    workload: TrainingWorkload
    graph_set: GraphSet
    mapping_eval: MappingEvaluation
    assignments_per_gpu: list[dict[int, list[KernelDesc]]]
    trailing_per_gpu: list[list[KernelDesc]]
    data_prep_per_gpu: list[DataPreparation]
    fusion_enabled: bool
    interleaving_enabled: bool

    @property
    def mapping(self) -> GraphMapping:
        return self.mapping_eval.mapping

    @property
    def input_comm_bytes(self) -> float:
        return self.mapping.input_comm_bytes

    @property
    def input_comm_transfers(self) -> int:
        return self.mapping.input_comm_transfers

    @property
    def predicted_exposed_us(self) -> float:
        return self.mapping_eval.objective_us

    @property
    def max_data_prep_us(self) -> float:
        return max((p.total_us for p in self.data_prep_per_gpu), default=0.0)

    def num_kernels_per_gpu(self) -> list[int]:
        return [
            sum(len(v) for v in a.values()) + len(t)
            for a, t in zip(self.assignments_per_gpu, self.trailing_per_gpu)
        ]


@dataclass
class RapRunReport:
    """Measured (simulated) outcome of executing a plan for one iteration."""

    plan: RapPlan
    cluster_result: ClusterIterationResult
    timeline: SteadyStateTimeline

    @property
    def iteration_us(self) -> float:
        return self.timeline.iteration_us

    @property
    def throughput(self) -> float:
        return self.plan.workload.throughput_from_iteration(self.iteration_us)

    @property
    def exposed_preprocessing_us(self) -> float:
        return self.cluster_result.max_exposed_preprocessing_us

    @property
    def training_slowdown(self) -> float:
        ideal = self.plan.workload.ideal_iteration_us()
        return self.iteration_us / ideal if ideal > 0 else 1.0


@dataclass
class PlannerStats:
    """What the planner fast path did across this planner's lifetime."""

    plans: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    incremental_replans: int = 0
    full_replans: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "plans": self.plans,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "incremental_replans": self.incremental_replans,
            "full_replans": self.full_replans,
        }


class RapPlanner:
    """Searches and evaluates RAP co-running plans for a training workload.

    The fast-path knobs:

    - ``cache``: a :class:`repro.core.plan_cache.PlanCache`; planning
      requests whose content hash matches a cached entry return the stored
      plan (bit-identical to the cold search) without searching.
    - ``parallel_search``: price each mapping round's candidate moves in a
      process pool; the reduction order is deterministic so plans stay
      bit-identical to the sequential path.
    - :meth:`replan` re-plans incrementally when only latencies drifted or
      at most one graph changed structurally, warm-starting from the
      previous plan's mapping instead of re-running the full search.
    """

    def __init__(
        self,
        workload: TrainingWorkload,
        predictor: PreprocessingLatencyPredictor | None = None,
        mapping_strategy: str = "rap",
        fusion_enabled: bool = True,
        interleaving_enabled: bool = True,
        exact_fusion: bool | None = None,
        max_mapping_moves: int | None = None,
        cache: PlanCache | None = None,
        parallel_search: bool = False,
        solver: BranchAndBoundSolver | None = None,
    ) -> None:
        if mapping_strategy not in MAPPING_STRATEGIES:
            raise ValueError(
                f"mapping_strategy must be one of {MAPPING_STRATEGIES}, got {mapping_strategy!r}"
            )
        self.workload = workload
        self.mapping_strategy = mapping_strategy
        self.fusion_enabled = fusion_enabled
        self.interleaving_enabled = interleaving_enabled
        self.exact_fusion = exact_fusion
        self.max_mapping_moves = max_mapping_moves
        self.cache = cache
        self.stats = PlannerStats()
        if solver is None:
            # MILP solves are content-cached alongside the plan cache so a
            # replan that rebuilds the same fusion instances skips straight
            # to the stored solutions (persisted when the plan cache is).
            solve_dir = cache.directory / "milp" if cache and cache.directory else None
            solver = BranchAndBoundSolver(cache=SolveCache(solve_dir))
        self.solver = solver
        self.estimator = OverlappingCapacityEstimator(workload.spec)
        self.cost_model = CoRunningCostModel(self.estimator, predictor)
        self.fusion = HorizontalFusionPass(
            workload.spec, enabled=fusion_enabled, exact=exact_fusion, solver=solver
        )
        self.scheduler = ResourceAwareScheduler(self.cost_model)
        self.mapper = RapMapper(
            workload,
            self.cost_model,
            self.fusion,
            self.scheduler,
            max_moves=max_mapping_moves,
            parallel=parallel_search,
        )
        self.interleaver = InterbatchInterleaver(enabled=interleaving_enabled)

    @property
    def solve_cache(self) -> SolveCache | None:
        return self.solver.cache

    def set_predictor(self, predictor) -> None:
        """Swap the latency predictor pricing the search.

        The mapper, scheduler, and fusion pass all read latencies through
        the one shared :class:`CoRunningCostModel`, so replacing its
        predictor re-prices every future evaluation in one move. The online
        calibration loop uses this to inject a
        :class:`repro.telemetry.CalibratedPredictor` when the drift
        detector fires; the cache key tracks the predictor's fingerprint,
        so calibrated plans never collide with stale ones.
        """
        self.cost_model.predictor = predictor

    def _predictor_fingerprint(self) -> str | None:
        """Cache-key identity of the active latency model (None = oracle)."""
        predictor = self.cost_model.predictor
        if predictor is None or not getattr(predictor, "is_fitted", False):
            return None
        fingerprint = getattr(predictor, "fingerprint", None)
        if callable(fingerprint):
            return fingerprint()
        return type(predictor).__name__

    # ------------------------------------------------------------------

    def _cache_key(self, graph_set: GraphSet) -> str:
        return plan_cache_key(
            self.workload,
            graph_set,
            self.mapping_strategy,
            self.fusion_enabled,
            self.interleaving_enabled,
            self.exact_fusion,
            self.max_mapping_moves,
            self.solver,
            predictor_fingerprint=self._predictor_fingerprint(),
        )

    def plan(self, graph_set: GraphSet) -> RapPlan:
        """Search the mapping + fusion + schedule for one workload.

        With a cache attached, a content-hash hit returns the stored plan
        without searching; a miss searches and stores the result.
        """
        self.stats.plans += 1
        key = None
        if self.cache is not None:
            key = self._cache_key(graph_set)
            hit = self.cache.get(key, self.workload, graph_set)
            if hit is not None:
                self.stats.cache_hits += 1
                return hit
            self.stats.cache_misses += 1
        plan = self._search(graph_set)
        if key is not None:
            self.cache.put(key, plan)
        return plan

    def _search(
        self, graph_set: GraphSet, initial_mapping: GraphMapping | None = None,
        move_budget: int | None = None,
    ) -> RapPlan:
        if self.mapping_strategy == "rap":
            evaluation = self.mapper.optimize(
                graph_set, initial_mapping=initial_mapping, budget=move_budget
            )
        elif self.mapping_strategy == "data_parallel":
            evaluation = self.mapper.evaluate(graph_set, map_data_parallel(graph_set, self.workload))
        else:
            evaluation = self.mapper.evaluate(graph_set, map_data_locality(graph_set, self.workload))

        assignments = [dict(s.assignments) for s in evaluation.schedules]
        trailing = [list(s.trailing) for s in evaluation.schedules]
        prep = []
        for gpu in range(self.workload.num_gpus):
            entries = evaluation.mapping.graphs_on_gpu(graph_set, gpu)
            if entries:
                graphs = [g for g, _ in entries]
                rows = max(r for _, r in entries)
                prep.append(estimate_data_preparation(graphs, rows=rows, spec=self.workload.spec))
            else:
                prep.append(DataPreparation(0.0, 0.0, 0.0))
        return RapPlan(
            workload=self.workload,
            graph_set=graph_set,
            mapping_eval=evaluation,
            assignments_per_gpu=assignments,
            trailing_per_gpu=trailing,
            data_prep_per_gpu=prep,
            fusion_enabled=self.fusion_enabled,
            interleaving_enabled=self.interleaving_enabled,
        )

    # ------------------------------------------------------------------
    # Incremental re-planning
    # ------------------------------------------------------------------

    def replan(
        self,
        graph_set: GraphSet,
        previous: RapPlan | None = None,
        initial_mapping: GraphMapping | None = None,
    ) -> RapPlan:
        """Re-plan for a (possibly changed) graph set, incrementally if safe.

        The cache is consulted first -- an unchanged instance is a pure
        hash lookup. Otherwise, when ``previous`` exists and the new graph
        set keeps the same feature names with at most one graph changed
        *structurally* (uniform latency drift changes no structure), the
        previous mapping seeds the hill climb under a reduced move budget
        and the fusion pass replays its memoized assignments -- only the
        sharding/scheduling and mapping refinement re-run. Anything bigger
        falls back to the full Algorithm-1 search.

        ``initial_mapping`` forces the warm-started incremental path with an
        explicitly constructed seed mapping. The elastic runtime uses this
        after a membership change: ``previous`` was searched for a larger
        fleet, so its placements cannot be reused verbatim, but its
        surviving-GPU slice (re-indexed into the survivor space) is still a
        far better starting point than a cold search.
        """
        if self.mapping_strategy != "rap" or (previous is None and initial_mapping is None):
            return self.plan(graph_set)
        if (
            initial_mapping is None
            and previous.workload.num_gpus != self.workload.num_gpus
        ):
            # A plan from a different fleet shape cannot warm-start directly;
            # callers must re-slice it into an explicit initial_mapping.
            return self.plan(graph_set)

        self.stats.plans += 1
        key = None
        if self.cache is not None:
            key = self._cache_key(graph_set)
            hit = self.cache.get(key, self.workload, graph_set)
            if hit is not None:
                self.stats.cache_hits += 1
                return hit
            self.stats.cache_misses += 1

        budget = max(self.workload.num_gpus * 2, len(graph_set.graphs) // 2)
        if initial_mapping is not None:
            self.stats.incremental_replans += 1
            plan = self._search(graph_set, initial_mapping=initial_mapping, move_budget=budget)
        elif self._incremental_eligible(graph_set, previous):
            self.stats.incremental_replans += 1
            initial = self._warm_mapping(graph_set, previous)
            plan = self._search(graph_set, initial_mapping=initial, move_budget=budget)
        else:
            self.stats.full_replans += 1
            plan = self._search(graph_set)
        if key is not None:
            self.cache.put(key, plan)
        return plan

    def _incremental_eligible(self, graph_set: GraphSet, previous: RapPlan) -> bool:
        old = {g.name: graph_structure_key(g) for g in previous.graph_set}
        new = {g.name: graph_structure_key(g) for g in graph_set}
        if set(old) != set(new):
            return False  # features appeared or vanished: full search
        changed = sum(1 for name in new if new[name] != old[name])
        return changed <= 1

    def _warm_mapping(self, graph_set: GraphSet, previous: RapPlan) -> GraphMapping:
        """The previous plan's placements, re-priced for the new graph set."""
        prev = previous.mapping
        mapping = GraphMapping(
            strategy="rap",
            num_gpus=self.workload.num_gpus,
            placements={k: list(v) for k, v in prev.placements.items()},
        )
        # Defensive: any graph the previous mapping does not cover falls
        # back to its data-locality placement.
        fallback = map_data_locality(graph_set, self.workload)
        for graph in graph_set:
            if graph.name not in mapping.placements:
                mapping.placements[graph.name] = list(fallback.placements[graph.name])
        rebuild_comm(mapping, graph_set, self.workload)
        return mapping

    # ------------------------------------------------------------------

    def evaluate(self, plan: RapPlan, policy: CoRunPolicy = RAP_POLICY) -> RapRunReport:
        """Simulate one steady-state iteration of the plan on the cluster."""
        result = self.workload.simulate(
            assignments_per_gpu=plan.assignments_per_gpu,
            trailing_per_gpu=plan.trailing_per_gpu,
            input_comm_bytes=plan.input_comm_bytes,
            input_comm_transfers=max(1, plan.input_comm_transfers),
            policy=policy,
        )
        prep = max(plan.data_prep_per_gpu, key=lambda p: p.total_us, default=DataPreparation(0, 0, 0))
        timeline = self.interleaver.steady_state(result.iteration_time_us, prep)
        return RapRunReport(plan=plan, cluster_result=result, timeline=timeline)

    def evaluate_scaled(
        self,
        plan: RapPlan,
        scale: float = 1.0,
        drift_factors: dict[str, float] | None = None,
        policy: CoRunPolicy = RAP_POLICY,
    ) -> RapRunReport:
        """Shadow-mode evaluation: simulate ``plan`` under a drifted regime.

        Replays the plan with every placed kernel's duration multiplied by
        ``scale`` (uniform input drift) and additionally by its op type's
        ``drift_factors`` entry -- the same composition the runtime applies
        to the live plan -- without mutating the plan or recording
        calibration samples. With ``scale == 1`` and no factors this is
        exactly :meth:`evaluate`. The shadow promotion loop (DESIGN.md §15)
        uses this to score the live plan and a candidate like-for-like over
        a replayed window of recent iteration conditions.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        factors = drift_factors or {}

        def drifted(kernel: KernelDesc) -> KernelDesc:
            factor = scale * factors.get(kernel.tag, 1.0)
            if factor == 1.0:
                return kernel
            return kernel.with_duration(kernel.duration_us * factor)

        assignments = [
            {stage: [drifted(k) for k in kernels] for stage, kernels in per_gpu.items()}
            for per_gpu in plan.assignments_per_gpu
        ]
        trailing = [[drifted(k) for k in kernels] for kernels in plan.trailing_per_gpu]
        result = self.workload.simulate(
            assignments_per_gpu=assignments,
            trailing_per_gpu=trailing,
            input_comm_bytes=plan.input_comm_bytes,
            input_comm_transfers=max(1, plan.input_comm_transfers),
            policy=policy,
        )
        prep = max(plan.data_prep_per_gpu, key=lambda p: p.total_us, default=DataPreparation(0, 0, 0))
        timeline = self.interleaver.steady_state(result.iteration_time_us, prep)
        return RapRunReport(plan=plan, cluster_result=result, timeline=timeline)

    def plan_and_evaluate(self, graph_set: GraphSet) -> RapRunReport:
        return self.evaluate(self.plan(graph_set))
