"""Resource-aware Co-running Scheduling (Algorithm 1, §7.1).

Given one GPU's training stage pipeline and its fused preprocessing kernel
queue, produce the per-stage kernel assignment that minimizes exposed
preprocessing latency:

1. Predict the total preprocessing latency of the fused kernels.
2. Sort stages by overlapping capacity, selecting from the highest until
   the selected capacity covers the predicted total.
3. Walk the pipeline in execution order; at each selected stage, pack
   kernels from the queue front while capacity remains, sharding the first
   kernel that does not fit (lines 21-26) and pushing the remainder back.
4. Kernels the pipeline cannot absorb become trailing (exposed) work.

On top of the paper's pseudocode, every kernel placed into a stage is
demand-sharded to fit the stage's leftover resources
(:func:`repro.core.fusion.shard_to_fit_demand`), which is what guarantees
the placement is contention-free on the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..gpusim.device import StageProfile
from ..gpusim.kernel import KernelDesc
from .cost_model import CoRunCost, CoRunningCostModel
from .fusion import fit_kernel_to_leftover, shard_by_latency

__all__ = ["CoRunSchedule", "ResourceAwareScheduler"]


@dataclass
class CoRunSchedule:
    """A per-GPU co-running schedule plus its predicted cost."""

    assignments: dict[int, list[KernelDesc]] = field(default_factory=dict)
    trailing: list[KernelDesc] = field(default_factory=list)
    cost: CoRunCost | None = None

    @property
    def num_assigned(self) -> int:
        return sum(len(v) for v in self.assignments.values())

    @property
    def exposed_us(self) -> float:
        return self.cost.exposed_us if self.cost is not None else 0.0

    def assigned_kernels(self) -> list[KernelDesc]:
        out: list[KernelDesc] = []
        for idx in sorted(self.assignments):
            out.extend(self.assignments[idx])
        return out


class ResourceAwareScheduler:
    """Algorithm 1: pack fused kernels into training-stage capacity."""

    def __init__(
        self,
        cost_model: CoRunningCostModel,
        min_shard_fraction: float = 0.05,
        max_demand_pieces: int = 64,
        capacity_safety: float = 1.0,
    ) -> None:
        self.cost_model = cost_model
        self.min_shard_fraction = min_shard_fraction
        self.max_demand_pieces = max_demand_pieces
        self.capacity_safety = capacity_safety

    # ------------------------------------------------------------------

    def schedule(
        self,
        stages: Sequence[StageProfile],
        fused_kernels: Sequence[KernelDesc],
    ) -> CoRunSchedule:
        """Produce the co-running schedule for one GPU (Algorithm 1)."""
        queue: list[KernelDesc] = list(fused_kernels)
        assignments: dict[int, list[KernelDesc]] = {}
        if not queue:
            schedule = CoRunSchedule(assignments={}, trailing=[])
            schedule.cost = self.cost_model.evaluate(stages, {}, ())
            return schedule

        # Line 2-5: total predicted preprocessing latency.
        total_latency = sum(self.cost_model.kernel_latency(k) for k in queue)

        # Line 6-12: select stages by their probe-ranked capacity, highest
        # first, until the selected capacity covers the predicted
        # preprocessing latency. The probe score prefers stages with roomy
        # leftovers, where kernels fit with the least shard inflation.
        scores = [self.cost_model.stage_selection_score(s) for s in stages]
        order = sorted(range(len(stages)), key=lambda i: scores[i], reverse=True)
        selected: set[int] = set()
        covered = 0.0
        for idx in order:
            if covered >= total_latency:
                break
            if scores[idx] <= 0:
                continue
            selected.add(idx)
            covered += scores[idx]

        # Line 13-29: greedy packing in pipeline order, followed by a spill
        # pass over the not-initially-selected stages: demand sharding can
        # consume more capacity than the prediction the selection was based
        # on, and leftover work is better placed in *any* remaining capacity
        # than exposed.
        used_per_stage = self._pack(stages, selected, queue, assignments, {})
        if queue:
            spill = set(range(len(stages))) - selected
            self._pack(stages, spill, queue, assignments, used_per_stage)

        schedule = CoRunSchedule(assignments=assignments, trailing=queue)
        schedule.cost = self.cost_model.evaluate(stages, assignments, queue)
        return schedule

    def _pack(
        self,
        stages: Sequence[StageProfile],
        eligible: set[int],
        queue: list[KernelDesc],
        assignments: dict[int, list[KernelDesc]],
        used_per_stage: dict[int, float],
    ) -> dict[int, float]:
        """One greedy packing sweep over ``eligible`` stages in pipeline order."""
        capacities = [self.cost_model.stage_capacity(s) * self.capacity_safety for s in stages]
        for idx, stage in enumerate(stages):
            if idx not in eligible or not queue:
                continue
            used = used_per_stage.get(idx, 0.0)
            leftover = stage.leftover()
            while queue:
                remaining = capacities[idx] - used
                if remaining <= 1e-9:
                    break
                kernel = queue.pop(0)
                # Resource-aware fitting: degree-reduce / demand-shard the
                # kernel so every piece co-runs with this stage for free.
                pieces = fit_kernel_to_leftover(
                    kernel, leftover, self.cost_model.estimator.spec, self.max_demand_pieces
                )
                if pieces is None:
                    # Leftover too thin for this kernel in any shape: skip
                    # the stage for it, try the next stage.
                    queue.insert(0, kernel)
                    break
                # Commit the maximal prefix of pieces the remaining capacity
                # admits (lines 21-26: shard, place what fits, push back the
                # rest). Piece latencies are the true (possibly inflated)
                # costs, so capacity accounting stays honest.
                committed: list[KernelDesc] = []
                acc = 0.0
                cut = len(pieces)
                for i, piece in enumerate(pieces):
                    latency = self.cost_model.kernel_latency(piece)
                    if acc + latency > remaining:
                        cut = i
                        break
                    committed.append(piece)
                    acc += latency
                rest = list(pieces[cut:])
                if rest and (not committed or acc < remaining):
                    # Try latency-sharding the first leftover piece so the
                    # tail of this stage's capacity is not wasted.
                    shards = shard_by_latency(rest[0], remaining - acc, self.min_shard_fraction)
                    if shards is not None:
                        first, remainder = shards
                        if first.demand.fits_within(leftover):
                            committed.append(first)
                            acc += self.cost_model.kernel_latency(first)
                            rest[0] = remainder
                if committed:
                    assignments.setdefault(idx, []).extend(committed)
                    used += acc
                if rest:
                    # Push leftover pieces back for the next stage.
                    queue[0:0] = rest
                    if not committed:
                        break
                    if len(rest) == len(pieces):
                        break
                    continue
            used_per_stage[idx] = used
        return used_per_stage
