"""Plan serialization: persist searched co-running plans as JSON.

A production deployment searches a plan once (offline, §4) and reuses it
across many training runs; the artifact must survive process restarts.
This module round-trips a :class:`repro.core.planner.RapPlan`'s decision
content -- the graph mapping, per-stage kernel assignments, trailing
kernels, and communication metadata -- through plain JSON.

Kernel descriptors serialize flat (fused-member descriptors are rebuilt as
plain kernels on load); the deserialized plan simulates identically
because the device model only consumes each kernel's own fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..dlrm.training import TrainingWorkload
from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import ResourceVector
from ..ioutil import atomic_write_text
from ..preprocessing.executor import DataPreparation
from ..preprocessing.graph import GraphSet
from .mapping import GraphMapping, MappingEvaluation
from .planner import RapPlan

__all__ = [
    "PlanLoadError",
    "plan_to_json",
    "plan_from_json",
    "load_plan",
    "save_plan",
    "kernel_to_dict",
    "kernel_from_dict",
    "resilience_from_json",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


class PlanLoadError(ValueError):
    """A plan artifact could not be loaded (missing, truncated, or corrupt).

    Subclasses :class:`ValueError` so pre-existing callers that caught the
    raw decode errors' common base keep working; ``path`` names the
    offending file when the plan came from disk (``None`` for in-memory
    strings).
    """

    def __init__(self, message: str, path: str | Path | None = None) -> None:
        self.path = str(path) if path is not None else None
        prefix = f"{self.path}: " if self.path else ""
        super().__init__(f"{prefix}{message}")


def kernel_to_dict(kernel: KernelDesc) -> dict[str, Any]:
    meta = {k: v for k, v in kernel.meta.items() if k != "member_kernels"}
    if "params" in meta:
        meta["params"] = list(meta["params"])
    # Fused kernels carry their member descriptors so a restored plan can
    # still de-fuse on a fused-OOM fault; without them the recovery ladder
    # takes the re-shard path instead and a checkpoint resume diverges
    # from the uninterrupted run. Members are original unfused kernels, so
    # the recursion is one level deep.
    members = kernel.meta.get("member_kernels")
    if members:
        meta["member_kernels"] = [kernel_to_dict(m) for m in members]
    return {
        "name": kernel.name,
        "duration_us": kernel.duration_us,
        "sm": kernel.demand.sm,
        "dram": kernel.demand.dram,
        "num_warps": kernel.num_warps,
        "tag": kernel.tag,
        "launch_us": kernel.launch_us,
        "warp_slots": kernel.warp_slots,
        "meta": meta,
    }


def kernel_from_dict(data: dict[str, Any]) -> KernelDesc:
    meta = dict(data.get("meta", {}))
    if "params" in meta:
        meta["params"] = tuple(meta["params"])
    if "member_kernels" in meta:
        meta["member_kernels"] = tuple(
            kernel_from_dict(m) for m in meta["member_kernels"]
        )
    return KernelDesc(
        name=data["name"],
        duration_us=data["duration_us"],
        demand=ResourceVector(sm=data["sm"], dram=data["dram"]),
        num_warps=data["num_warps"],
        tag=data["tag"],
        launch_us=data["launch_us"],
        warp_slots=data["warp_slots"],
        meta=meta,
    )


def plan_to_json(
    plan: RapPlan,
    indent: int | None = 2,
    resilience: Mapping[str, Any] | None = None,
) -> str:
    """Serialize the decision content of a plan.

    ``resilience`` optionally embeds a fault-tolerant runtime's
    :meth:`repro.runtime.ResilienceReport.to_dict` alongside the plan, so a
    deployment can persist what the plan survived next to the plan itself.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "workload": {
            "model": plan.workload.config.name,
            "num_gpus": plan.workload.num_gpus,
            "local_batch": plan.workload.local_batch,
        },
        "mapping": {
            "strategy": plan.mapping.strategy,
            "num_gpus": plan.mapping.num_gpus,
            "placements": {k: [list(p) for p in v] for k, v in plan.mapping.placements.items()},
            "input_comm_bytes": plan.mapping.input_comm_bytes,
            "input_comm_transfers": plan.mapping.input_comm_transfers,
        },
        "assignments_per_gpu": [
            {str(idx): [kernel_to_dict(k) for k in kernels] for idx, kernels in per_gpu.items()}
            for per_gpu in plan.assignments_per_gpu
        ],
        "trailing_per_gpu": [
            [kernel_to_dict(k) for k in kernels] for kernels in plan.trailing_per_gpu
        ],
        "data_prep_per_gpu": [
            {"alloc_us": p.alloc_us, "h2d_copy_us": p.h2d_copy_us, "dispatch_us": p.dispatch_us}
            for p in plan.data_prep_per_gpu
        ],
        "fusion_enabled": plan.fusion_enabled,
        "interleaving_enabled": plan.interleaving_enabled,
        # The search's own cost-model summary. Schedules are not persisted
        # (the assignments above are their product), but the headline
        # numbers must survive so a reloaded plan predicts the same
        # exposure -- the watchdog compares measurements against it.
        "evaluation": {
            "comm_us": plan.mapping_eval.comm_us,
            "exposed_us_per_gpu": plan.mapping_eval.exposed_per_gpu,
        },
    }
    if resilience is not None:
        payload["resilience"] = dict(resilience)
    return json.dumps(payload, indent=indent)


def plan_from_json(
    source: str,
    workload: TrainingWorkload,
    graph_set: GraphSet,
    path: str | Path | None = None,
) -> RapPlan:
    """Rebuild a plan against a live workload and graph set.

    The workload must match the serialized shape (GPU count and batch
    size); the graph set is re-attached for code generation. A truncated or
    structurally corrupt artifact raises :class:`PlanLoadError` naming
    ``path`` (when given) instead of leaking a raw decode error.
    """
    try:
        data = json.loads(source)
    except json.JSONDecodeError as exc:
        raise PlanLoadError(f"plan file is not valid JSON ({exc})", path) from exc
    if not isinstance(data, dict):
        raise PlanLoadError(f"plan payload must be a JSON object, got {type(data).__name__}", path)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanLoadError(f"unsupported plan format version {version!r}", path)
    try:
        saved = data["workload"]
        if saved["num_gpus"] != workload.num_gpus or saved["local_batch"] != workload.local_batch:
            raise PlanLoadError(
                "workload shape mismatch: plan was searched for "
                f"{saved['num_gpus']} GPUs x batch {saved['local_batch']}, got "
                f"{workload.num_gpus} x {workload.local_batch}",
                path,
            )
        m = data["mapping"]
        mapping = GraphMapping(
            strategy=m["strategy"],
            num_gpus=m["num_gpus"],
            placements={k: [tuple(p) for p in v] for k, v in m["placements"].items()},
            input_comm_bytes=m["input_comm_bytes"],
            input_comm_transfers=m["input_comm_transfers"],
        )
        assignments = [
            {int(idx): [kernel_from_dict(k) for k in kernels] for idx, kernels in per_gpu.items()}
            for per_gpu in data["assignments_per_gpu"]
        ]
        trailing = [
            [kernel_from_dict(k) for k in kernels] for kernels in data["trailing_per_gpu"]
        ]
        prep = [DataPreparation(**p) for p in data["data_prep_per_gpu"]]
        fusion_enabled = data["fusion_enabled"]
        interleaving_enabled = data["interleaving_enabled"]
        # Optional for backwards compatibility: version-1 artifacts written
        # before the planner fast path carry no evaluation summary and
        # reload with a zero predicted exposure, as before.
        saved_eval = data.get("evaluation") or {}
        comm_us = float(saved_eval.get("comm_us", 0.0))
        exposed = saved_eval.get("exposed_us_per_gpu")
        exposed = [float(v) for v in exposed] if exposed is not None else None
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        if isinstance(exc, PlanLoadError):
            raise
        raise PlanLoadError(f"plan payload is missing or malformed: {exc}", path) from exc
    evaluation = MappingEvaluation(
        mapping=mapping, schedules=[], comm_us=comm_us, exposed_us_per_gpu=exposed
    )
    return RapPlan(
        workload=workload,
        graph_set=graph_set,
        mapping_eval=evaluation,
        assignments_per_gpu=assignments,
        trailing_per_gpu=trailing,
        data_prep_per_gpu=prep,
        fusion_enabled=fusion_enabled,
        interleaving_enabled=interleaving_enabled,
    )


def load_plan(
    path: str | Path,
    workload: TrainingWorkload,
    graph_set: GraphSet,
) -> RapPlan:
    """Load a plan artifact from disk, wrapping I/O failures uniformly."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        raise PlanLoadError(f"cannot read plan file ({exc.strerror or exc})", path) from exc
    return plan_from_json(source, workload, graph_set, path=path)


def save_plan(
    path: str | Path,
    plan: RapPlan,
    resilience: Mapping[str, Any] | None = None,
) -> None:
    """Write a plan (optionally with its resilience report) to disk.

    The write is atomic (temp file + fsync + rename), so a crash mid-save
    leaves either the previous artifact or the new one -- never a torn
    file.
    """
    atomic_write_text(path, plan_to_json(plan, resilience=resilience))


def resilience_from_json(source: str, path: str | Path | None = None) -> dict[str, Any] | None:
    """The embedded resilience payload of a serialized plan, if any."""
    try:
        data = json.loads(source)
    except json.JSONDecodeError as exc:
        raise PlanLoadError(f"plan file is not valid JSON ({exc})", path) from exc
    if not isinstance(data, dict):
        raise PlanLoadError(f"plan payload must be a JSON object, got {type(data).__name__}", path)
    resilience = data.get("resilience")
    if resilience is not None and not isinstance(resilience, dict):
        raise PlanLoadError("resilience payload must be a JSON object", path)
    return resilience
