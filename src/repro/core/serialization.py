"""Plan serialization: persist searched co-running plans as JSON.

A production deployment searches a plan once (offline, §4) and reuses it
across many training runs; the artifact must survive process restarts.
This module round-trips a :class:`repro.core.planner.RapPlan`'s decision
content -- the graph mapping, per-stage kernel assignments, trailing
kernels, and communication metadata -- through plain JSON.

Kernel descriptors serialize flat (fused-member descriptors are rebuilt as
plain kernels on load); the deserialized plan simulates identically
because the device model only consumes each kernel's own fields.
"""

from __future__ import annotations

import json
from typing import Any

from ..dlrm.training import TrainingWorkload
from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import ResourceVector
from ..preprocessing.executor import DataPreparation
from ..preprocessing.graph import GraphSet
from .mapping import GraphMapping, MappingEvaluation
from .planner import RapPlan

__all__ = ["plan_to_json", "plan_from_json", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _kernel_to_dict(kernel: KernelDesc) -> dict[str, Any]:
    meta = {k: v for k, v in kernel.meta.items() if k != "member_kernels"}
    if "params" in meta:
        meta["params"] = list(meta["params"])
    return {
        "name": kernel.name,
        "duration_us": kernel.duration_us,
        "sm": kernel.demand.sm,
        "dram": kernel.demand.dram,
        "num_warps": kernel.num_warps,
        "tag": kernel.tag,
        "launch_us": kernel.launch_us,
        "warp_slots": kernel.warp_slots,
        "meta": meta,
    }


def _kernel_from_dict(data: dict[str, Any]) -> KernelDesc:
    meta = dict(data.get("meta", {}))
    if "params" in meta:
        meta["params"] = tuple(meta["params"])
    return KernelDesc(
        name=data["name"],
        duration_us=data["duration_us"],
        demand=ResourceVector(sm=data["sm"], dram=data["dram"]),
        num_warps=data["num_warps"],
        tag=data["tag"],
        launch_us=data["launch_us"],
        warp_slots=data["warp_slots"],
        meta=meta,
    )


def plan_to_json(plan: RapPlan, indent: int | None = 2) -> str:
    """Serialize the decision content of a plan."""
    payload = {
        "format_version": FORMAT_VERSION,
        "workload": {
            "model": plan.workload.config.name,
            "num_gpus": plan.workload.num_gpus,
            "local_batch": plan.workload.local_batch,
        },
        "mapping": {
            "strategy": plan.mapping.strategy,
            "num_gpus": plan.mapping.num_gpus,
            "placements": {k: [list(p) for p in v] for k, v in plan.mapping.placements.items()},
            "input_comm_bytes": plan.mapping.input_comm_bytes,
            "input_comm_transfers": plan.mapping.input_comm_transfers,
        },
        "assignments_per_gpu": [
            {str(idx): [_kernel_to_dict(k) for k in kernels] for idx, kernels in per_gpu.items()}
            for per_gpu in plan.assignments_per_gpu
        ],
        "trailing_per_gpu": [
            [_kernel_to_dict(k) for k in kernels] for kernels in plan.trailing_per_gpu
        ],
        "data_prep_per_gpu": [
            {"alloc_us": p.alloc_us, "h2d_copy_us": p.h2d_copy_us, "dispatch_us": p.dispatch_us}
            for p in plan.data_prep_per_gpu
        ],
        "fusion_enabled": plan.fusion_enabled,
        "interleaving_enabled": plan.interleaving_enabled,
    }
    return json.dumps(payload, indent=indent)


def plan_from_json(
    source: str,
    workload: TrainingWorkload,
    graph_set: GraphSet,
) -> RapPlan:
    """Rebuild a plan against a live workload and graph set.

    The workload must match the serialized shape (GPU count and batch
    size); the graph set is re-attached for code generation.
    """
    data = json.loads(source)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {version!r}")
    saved = data["workload"]
    if saved["num_gpus"] != workload.num_gpus or saved["local_batch"] != workload.local_batch:
        raise ValueError(
            "workload shape mismatch: plan was searched for "
            f"{saved['num_gpus']} GPUs x batch {saved['local_batch']}, got "
            f"{workload.num_gpus} x {workload.local_batch}"
        )
    m = data["mapping"]
    mapping = GraphMapping(
        strategy=m["strategy"],
        num_gpus=m["num_gpus"],
        placements={k: [tuple(p) for p in v] for k, v in m["placements"].items()},
        input_comm_bytes=m["input_comm_bytes"],
        input_comm_transfers=m["input_comm_transfers"],
    )
    assignments = [
        {int(idx): [_kernel_from_dict(k) for k in kernels] for idx, kernels in per_gpu.items()}
        for per_gpu in data["assignments_per_gpu"]
    ]
    trailing = [
        [_kernel_from_dict(k) for k in kernels] for kernels in data["trailing_per_gpu"]
    ]
    prep = [DataPreparation(**p) for p in data["data_prep_per_gpu"]]
    evaluation = MappingEvaluation(mapping=mapping, schedules=[], comm_us=0.0)
    return RapPlan(
        workload=workload,
        graph_set=graph_set,
        mapping_eval=evaluation,
        assignments_per_gpu=assignments,
        trailing_per_gpu=trailing,
        data_prep_per_gpu=prep,
        fusion_enabled=data["fusion_enabled"],
        interleaving_enabled=data["interleaving_enabled"],
    )
