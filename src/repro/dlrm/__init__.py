"""``repro.dlrm`` -- hybrid-parallel DLRM training substrate.

Model configurations matching the paper's Table 2, embedding-table
placement (the model-parallel half of hybrid parallelism), the per-
iteration stage pipeline with resource profiles, and the multi-GPU
training workload object the scheduling machinery consumes.
"""

from .model import (
    DLRMConfig,
    EmbeddingTableConfig,
    MlpArch,
    kaggle_model,
    model_for_plan,
    terabyte_model,
)
from .embedding import EmbeddingPlacement, place_tables, reshard_placement
from .stages import DEFAULT_CALIBRATION, StageCalibration, build_iteration_stages
from .training import TrainingWorkload
from .numerics import EmbeddingBag, Interaction, Mlp, MlpLayer, NumpyDLRM, bce_loss

__all__ = [
    "DLRMConfig",
    "EmbeddingTableConfig",
    "MlpArch",
    "kaggle_model",
    "terabyte_model",
    "model_for_plan",
    "EmbeddingPlacement",
    "place_tables",
    "reshard_placement",
    "StageCalibration",
    "DEFAULT_CALIBRATION",
    "build_iteration_stages",
    "TrainingWorkload",
    "EmbeddingBag",
    "Interaction",
    "Mlp",
    "MlpLayer",
    "NumpyDLRM",
    "bce_loss",
]
