"""Embedding-table placement: the model-parallel half of hybrid parallelism.

Industrial DLRMs partition their embedding tables across GPUs (model
parallelism) while replicating the MLPs (data parallelism). The placement
decides *where each preprocessing graph's output is consumed*, which is
exactly the data-dependency signal RAP's locality-aware mapping exploits:
a sparse feature preprocessed on the GPU that owns its table needs no
inter-GPU input communication.

Tables larger than a threshold are sharded row-wise across *all* GPUs; the
paper notes their inputs are needed everywhere, so RAP duplicates the
corresponding preprocessing graphs (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import DLRMConfig

__all__ = ["EmbeddingPlacement", "place_tables", "reshard_placement"]


@dataclass
class EmbeddingPlacement:
    """Assignment of each embedding table to one GPU (or all, if row-wise)."""

    num_gpus: int
    table_to_gpu: dict[str, int] = field(default_factory=dict)
    row_wise_tables: set[str] = field(default_factory=set)

    def gpus_for_table(self, name: str) -> list[int]:
        """GPUs holding (a shard of) the table -- the consumers of its input."""
        if name in self.row_wise_tables:
            return list(range(self.num_gpus))
        if name not in self.table_to_gpu:
            raise KeyError(f"table {name!r} is not placed")
        return [self.table_to_gpu[name]]

    def tables_on_gpu(self, gpu: int) -> list[str]:
        local = [t for t, g in self.table_to_gpu.items() if g == gpu]
        local.extend(sorted(self.row_wise_tables))
        return local

    def is_placed(self, name: str) -> bool:
        return name in self.table_to_gpu or name in self.row_wise_tables

    def memory_per_gpu(self, config: DLRMConfig) -> list[float]:
        loads = [0.0] * self.num_gpus
        for table in config.tables:
            if table.name in self.row_wise_tables:
                share = table.nbytes / self.num_gpus
                for g in range(self.num_gpus):
                    loads[g] += share
            else:
                loads[self.table_to_gpu[table.name]] += table.nbytes
        return loads

    def lookup_bytes_per_gpu(self, config: DLRMConfig, batch_size: int) -> list[float]:
        """Per-GPU embedding lookup traffic for one batch (drives stage cost)."""
        loads = [0.0] * self.num_gpus
        for table in config.tables:
            traffic = table.lookup_bytes(batch_size)
            if table.name in self.row_wise_tables:
                share = traffic / self.num_gpus
                for g in range(self.num_gpus):
                    loads[g] += share
            else:
                loads[self.table_to_gpu[table.name]] += traffic
        return loads


def place_tables(config: DLRMConfig, num_gpus: int) -> EmbeddingPlacement:
    """Greedy size-balanced table-wise placement (TorchRec's default flavour).

    Tables are sorted by size descending and each is assigned to the GPU
    with the least accumulated bytes; tables exceeding the row-wise
    threshold are instead sharded across every GPU.
    """
    if num_gpus < 1:
        raise ValueError("need at least one GPU")
    placement = EmbeddingPlacement(num_gpus=num_gpus)
    loads = [0.0] * num_gpus
    for table in sorted(config.tables, key=lambda t: t.nbytes, reverse=True):
        if table.nbytes > config.row_wise_threshold_bytes and num_gpus > 1:
            placement.row_wise_tables.add(table.name)
            for g in range(num_gpus):
                loads[g] += table.nbytes / num_gpus
            continue
        target = loads.index(min(loads))
        placement.table_to_gpu[table.name] = target
        loads[target] += table.nbytes
    return placement


def reshard_placement(
    placement: EmbeddingPlacement, config: DLRMConfig, lost_gpu: int
) -> tuple[EmbeddingPlacement, tuple[str, ...], float]:
    """Redistribute a permanently lost GPU's tables across the survivors.

    Movement is minimal: survivors keep every table they already hold
    (re-indexed into the compacted survivor space), orphaned tables are
    placed largest-first onto the least-loaded survivor, and row-wise
    tables stay row-wise with only the dead shard re-replicated. Returns
    ``(new_placement, moved_table_names, moved_bytes)`` so the caller can
    price the redistribution in simulated wall time.
    """
    n = placement.num_gpus
    if not 0 <= lost_gpu < n:
        raise ValueError(f"lost_gpu {lost_gpu} out of range for {n} GPUs")
    if n < 2:
        raise ValueError("cannot re-shard below one GPU")
    survivors = n - 1
    remap = {g: i for i, g in enumerate(g for g in range(n) if g != lost_gpu)}
    resharded = EmbeddingPlacement(num_gpus=survivors)
    loads = [0.0] * survivors
    moved_tables: list[str] = []
    moved_bytes = 0.0
    orphans = []
    for table in config.tables:
        if table.name in placement.row_wise_tables:
            # Only the dead shard (1/n of the rows) has to be rebuilt.
            if survivors > 1:
                resharded.row_wise_tables.add(table.name)
            else:
                resharded.table_to_gpu[table.name] = 0
            for g in range(survivors):
                loads[g] += table.nbytes / survivors
            moved_tables.append(table.name)
            moved_bytes += table.nbytes / n
        elif placement.table_to_gpu.get(table.name, -1) == lost_gpu:
            orphans.append(table)
        elif table.name in placement.table_to_gpu:
            target = remap[placement.table_to_gpu[table.name]]
            resharded.table_to_gpu[table.name] = target
            loads[target] += table.nbytes
    for table in sorted(orphans, key=lambda t: (-t.nbytes, t.name)):
        target = loads.index(min(loads))
        resharded.table_to_gpu[table.name] = target
        loads[target] += table.nbytes
        moved_tables.append(table.name)
        moved_bytes += table.nbytes
    return resharded, tuple(moved_tables), moved_bytes
