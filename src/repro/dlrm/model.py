"""DLRM model configuration (Table 2 of the paper).

A DLRM is a bottom ("dense arch") MLP over continuous features, a set of
embedding tables over categorical features, a pairwise feature-interaction
layer, and a top ("over arch") MLP producing the click probability. Only
the *shape* of the model matters to RAP -- it determines per-stage compute
and memory volume -- so the config captures architecture and table sizes,
and :mod:`repro.dlrm.stages` lowers it to resource profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..preprocessing.data import CriteoSchema, KAGGLE_SCHEMA, TERABYTE_SCHEMA
from ..preprocessing.graph import DENSE_CONSUMER, GraphSet

__all__ = ["EmbeddingTableConfig", "MlpArch", "DLRMConfig", "kaggle_model", "terabyte_model", "model_for_plan"]


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """One embedding table: its id space, vector width, and pooling factor."""

    name: str
    hash_size: int
    dim: int = 128
    avg_ids_per_row: float = 2.0

    def __post_init__(self) -> None:
        if self.hash_size <= 0 or self.dim <= 0:
            raise ValueError(f"table {self.name!r} needs positive hash_size and dim")

    @property
    def nbytes(self) -> int:
        return self.hash_size * self.dim * 4

    def lookup_bytes(self, batch_size: int) -> float:
        """Bytes touched by one batch's pooled lookup (reads of hot rows)."""
        return batch_size * self.avg_ids_per_row * self.dim * 4


@dataclass(frozen=True)
class MlpArch:
    """A dense multi-layer perceptron: input width plus hidden layer widths."""

    input_dim: int
    layers: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or not self.layers or any(w <= 0 for w in self.layers):
            raise ValueError(f"malformed MLP arch: {self}")

    @property
    def output_dim(self) -> int:
        return self.layers[-1]

    @property
    def num_params(self) -> int:
        dims = (self.input_dim,) + self.layers
        return sum(dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(self.layers)))

    def forward_flops(self, batch_size: int) -> float:
        """Multiply-accumulate FLOPs of one forward pass."""
        dims = (self.input_dim,) + self.layers
        return 2.0 * batch_size * sum(dims[i] * dims[i + 1] for i in range(len(self.layers)))

    def backward_flops(self, batch_size: int) -> float:
        """Backward is ~2x forward (input gradients plus weight gradients)."""
        return 2.0 * self.forward_flops(batch_size)


@dataclass(frozen=True)
class DLRMConfig:
    """Complete model description used by the stage/latency lowering."""

    name: str
    dense_arch: MlpArch
    top_arch_layers: tuple[int, ...]
    tables: tuple[EmbeddingTableConfig, ...]
    embedding_dim: int = 128
    row_wise_threshold_bytes: float = 8e9

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("DLRM needs at least one embedding table")
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise ValueError("embedding table names must be unique")

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def num_sparse_features(self) -> int:
        return len(self.tables)

    def table(self, name: str) -> EmbeddingTableConfig:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(f"no embedding table named {name!r}")

    @property
    def interaction_dim(self) -> int:
        """Width of the interaction layer output feeding the top MLP.

        DLRM's dot-product interaction of F feature vectors (F tables plus
        the bottom-MLP output) yields F*(F-1)/2 scalars, concatenated with
        the bottom-MLP output.
        """
        f = self.num_tables + 1
        return f * (f - 1) // 2 + self.dense_arch.output_dim

    @property
    def top_arch(self) -> MlpArch:
        return MlpArch(input_dim=self.interaction_dim, layers=self.top_arch_layers)

    @property
    def total_embedding_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    @property
    def mlp_param_bytes(self) -> int:
        return 4 * (self.dense_arch.num_params + self.top_arch.num_params)

    def interaction_flops(self, batch_size: int) -> float:
        f = self.num_tables + 1
        return 2.0 * batch_size * f * f * self.embedding_dim


def _tables_from_schema(schema: CriteoSchema, dim: int) -> list[EmbeddingTableConfig]:
    return [
        EmbeddingTableConfig(name=f"table:{feat}", hash_size=size, dim=dim,
                             avg_ids_per_row=schema.avg_list_length)
        for feat, size in zip(schema.sparse_names(), schema.hash_sizes())
    ]


def kaggle_model(dim: int = 128) -> DLRMConfig:
    """Table 2's Criteo Kaggle configuration (dense 512-256, top 1024-1024-512)."""
    schema = KAGGLE_SCHEMA
    return DLRMConfig(
        name="dlrm_kaggle",
        dense_arch=MlpArch(input_dim=schema.num_dense, layers=(512, 256)),
        top_arch_layers=(1024, 1024, 512),
        tables=tuple(_tables_from_schema(schema, dim)),
        embedding_dim=dim,
    )


def terabyte_model(dim: int = 128) -> DLRMConfig:
    """Table 2's Criteo Terabyte configuration (top 1024-1024-512-256)."""
    schema = TERABYTE_SCHEMA
    return DLRMConfig(
        name="dlrm_terabyte",
        dense_arch=MlpArch(input_dim=schema.num_dense, layers=(512, 256)),
        top_arch_layers=(1024, 1024, 512, 256),
        tables=tuple(_tables_from_schema(schema, dim)),
        embedding_dim=dim,
    )


def model_for_plan(
    graph_set: GraphSet,
    schema: CriteoSchema,
    dim: int = 128,
    generated_table_hash_size: int = 2_000_000,
) -> DLRMConfig:
    """Build the DLRM whose tables match a preprocessing plan's consumers.

    Every ``table:*`` consumer in the graph set becomes an embedding table:
    raw sparse features take their cardinality from the schema, generated
    features (Ngram outputs, bucketized dense features) get
    ``generated_table_hash_size`` or the graph output's own hash space.
    """
    schema_sizes = dict(zip(schema.sparse_names(), schema.hash_sizes()))
    tables: list[EmbeddingTableConfig] = []
    seen: set[str] = set()
    for graph in graph_set:
        consumer = graph.consumer
        if consumer == DENSE_CONSUMER or consumer in seen:
            continue
        seen.add(consumer)
        feature = consumer.removeprefix("table:")
        hash_size = schema_sizes.get(feature, generated_table_hash_size)
        tables.append(
            EmbeddingTableConfig(
                name=consumer,
                hash_size=hash_size,
                dim=dim,
                avg_ids_per_row=graph.avg_list_length,
            )
        )
    top_layers = (1024, 1024, 512) if schema.name.startswith("criteo_kaggle") else (1024, 1024, 512, 256)
    return DLRMConfig(
        name=f"dlrm_{schema.name}",
        dense_arch=MlpArch(input_dim=schema.num_dense, layers=(512, 256)),
        top_arch_layers=top_layers,
        tables=tuple(tables),
        embedding_dim=dim,
    )
