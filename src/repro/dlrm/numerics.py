"""Numerical DLRM training: real forward/backward math in numpy.

The rest of :mod:`repro.dlrm` models training *performance* (stage times,
resource profiles). This module supplies the *functional* counterpart: an
actually trainable DLRM -- bottom MLP, embedding tables with pooled
lookups, dot-product feature interaction, top MLP, binary cross-entropy --
with hand-derived backward passes and SGD, so the end-to-end pipeline
(synthetic Criteo data -> preprocessing graphs -> model update) can be run
and verified numerically (see ``examples/train_dlrm_numerics.py`` and the
gradient-check tests).

Everything is plain numpy; shapes follow the Table-2 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..preprocessing.data import Batch, SparseColumn
from .model import DLRMConfig

__all__ = ["MlpLayer", "Mlp", "EmbeddingBag", "Interaction", "NumpyDLRM", "bce_loss"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


@dataclass
class MlpLayer:
    """One fully connected layer with optional ReLU."""

    weight: np.ndarray  # (in, out)
    bias: np.ndarray  # (out,)
    relu: bool = True
    # Saved activations for backward.
    _x: np.ndarray | None = field(default=None, repr=False)
    _z: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def init(cls, in_dim: int, out_dim: int, rng: np.random.Generator, relu: bool = True) -> "MlpLayer":
        scale = np.sqrt(2.0 / in_dim)
        return cls(
            weight=rng.normal(0.0, scale, size=(in_dim, out_dim)),
            bias=np.zeros(out_dim),
            relu=relu,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        z = x @ self.weight + self.bias
        self._z = z
        return _relu(z) if self.relu else z

    def backward(self, grad_out: np.ndarray, lr: float) -> np.ndarray:
        if self._x is None or self._z is None:
            raise RuntimeError("backward called before forward")
        if self.relu:
            grad_out = grad_out * (self._z > 0)
        grad_w = self._x.T @ grad_out
        grad_b = grad_out.sum(axis=0)
        grad_x = grad_out @ self.weight.T
        self.weight -= lr * grad_w
        self.bias -= lr * grad_b
        return grad_x

    @property
    def num_params(self) -> int:
        return self.weight.size + self.bias.size


@dataclass
class Mlp:
    """A stack of fully connected layers; the last layer may skip ReLU."""

    layers: list[MlpLayer]

    @classmethod
    def init(
        cls,
        in_dim: int,
        widths: tuple[int, ...],
        rng: np.random.Generator,
        final_relu: bool = True,
    ) -> "Mlp":
        layers = []
        dims = (in_dim,) + tuple(widths)
        for i in range(len(widths)):
            is_last = i == len(widths) - 1
            layers.append(MlpLayer.init(dims[i], dims[i + 1], rng, relu=final_relu or not is_last))
        return cls(layers=layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray, lr: float) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad, lr)
        return grad

    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)


class EmbeddingBag:
    """One embedding table with sum-pooled lookups and sparse SGD updates."""

    def __init__(self, hash_size: int, dim: int, rng: np.random.Generator) -> None:
        if hash_size <= 0 or dim <= 0:
            raise ValueError("hash_size and dim must be positive")
        self.table = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(hash_size, dim))
        self._ids: np.ndarray | None = None
        self._offsets: np.ndarray | None = None

    @property
    def hash_size(self) -> int:
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    def forward(self, column: SparseColumn) -> np.ndarray:
        """Sum-pool the embedding rows of each sample's id list."""
        ids = column.values
        if ids.size and (ids.min() < 0 or ids.max() >= self.hash_size):
            raise IndexError(
                f"ids outside table of {self.hash_size} rows: "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._ids = ids
        self._offsets = column.offsets
        pooled = np.zeros((column.num_rows, self.dim))
        if ids.size:
            rows = self.table[ids]
            sample_of = np.repeat(np.arange(column.num_rows), column.lengths())
            np.add.at(pooled, sample_of, rows)
        return pooled

    def backward(self, grad_pooled: np.ndarray, lr: float) -> None:
        """Scatter the pooled gradient back into the touched rows (sparse SGD)."""
        if self._ids is None or self._offsets is None:
            raise RuntimeError("backward called before forward")
        if self._ids.size == 0:
            return
        lengths = np.diff(self._offsets)
        sample_of = np.repeat(np.arange(len(lengths)), lengths)
        np.subtract.at(self.table, self._ids, lr * grad_pooled[sample_of])


class Interaction:
    """DLRM's dot-product feature interaction.

    Stacks the bottom-MLP output with every pooled embedding into a
    (batch, F, dim) tensor, takes all pairwise dot products, and
    concatenates the upper triangle with the bottom-MLP output.
    """

    def __init__(self) -> None:
        self._stack: np.ndarray | None = None
        self._tri: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, dense_out: np.ndarray, pooled: list[np.ndarray]) -> np.ndarray:
        stack = np.stack([dense_out] + pooled, axis=1)  # (B, F, D)
        self._stack = stack
        f = stack.shape[1]
        dots = np.einsum("bfd,bgd->bfg", stack, stack)
        iu = np.triu_indices(f, k=1)
        self._tri = iu
        return np.concatenate([dense_out, dots[:, iu[0], iu[1]]], axis=1)

    def backward(self, grad: np.ndarray, dense_dim: int) -> tuple[np.ndarray, list[np.ndarray]]:
        if self._stack is None or self._tri is None:
            raise RuntimeError("backward called before forward")
        stack = self._stack
        b, f, d = stack.shape
        grad_dense_direct = grad[:, :dense_dim]
        grad_dots_flat = grad[:, dense_dim:]
        grad_dots = np.zeros((b, f, f))
        iu = self._tri
        grad_dots[:, iu[0], iu[1]] = grad_dots_flat
        # d(x_f . x_g)/dx_f = x_g and symmetric.
        sym = grad_dots + grad_dots.transpose(0, 2, 1)
        grad_stack = np.einsum("bfg,bgd->bfd", sym, stack)
        grad_dense = grad_stack[:, 0, :] + grad_dense_direct
        grad_pooled = [grad_stack[:, i, :] for i in range(1, f)]
        return grad_dense, grad_pooled


def bce_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Binary cross-entropy with logits; returns (mean loss, dL/dlogits)."""
    logits = logits.reshape(-1)
    labels = labels.reshape(-1)
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must align")
    p = 1.0 / (1.0 + np.exp(-logits))
    eps = 1e-12
    loss = float(-np.mean(labels * np.log(p + eps) + (1 - labels) * np.log(1 - p + eps)))
    grad = (p - labels) / len(labels)
    return loss, grad


class NumpyDLRM:
    """A trainable DLRM matching a :class:`repro.dlrm.model.DLRMConfig`.

    ``dense_inputs`` / ``sparse_inputs`` name the batch columns the model
    reads -- typically the *outputs* of a preprocessing graph set, closing
    the loop between RAP's preprocessing pipeline and actual training.
    """

    def __init__(
        self,
        config: DLRMConfig,
        dense_inputs: list[str],
        sparse_inputs: dict[str, str],
        seed: int = 0,
        table_size_cap: int | None = 200_000,
    ) -> None:
        if len(dense_inputs) != config.dense_arch.input_dim:
            raise ValueError(
                f"model expects {config.dense_arch.input_dim} dense inputs, got {len(dense_inputs)}"
            )
        missing = [t.name for t in config.tables if t.name not in sparse_inputs]
        if missing:
            raise ValueError(f"no input column mapped for tables: {missing[:3]}...")
        rng = np.random.default_rng(seed)
        self.config = config
        self.dense_inputs = list(dense_inputs)
        self.sparse_inputs = dict(sparse_inputs)
        # The bottom MLP projects to the embedding dimension so its output
        # participates in the dot-product interaction (the projection layer
        # TorchRec's DLRM appends implicitly; Table 2 lists only the hidden
        # widths).
        bottom_widths = tuple(config.dense_arch.layers) + (config.embedding_dim,)
        self.bottom = Mlp.init(config.dense_arch.input_dim, bottom_widths, rng)
        cap = table_size_cap or 10**12
        self.tables = {
            t.name: EmbeddingBag(min(t.hash_size, cap), config.embedding_dim, rng)
            for t in config.tables
        }
        self.interaction = Interaction()
        f = config.num_tables + 1
        interaction_width = config.embedding_dim + f * (f - 1) // 2
        self.top = Mlp.init(interaction_width, config.top_arch_layers, rng)
        self.head = MlpLayer.init(config.top_arch_layers[-1], 1, rng, relu=False)

    # ------------------------------------------------------------------

    def _gather_dense(self, batch: Batch) -> np.ndarray:
        cols = []
        for name in self.dense_inputs:
            col = batch.column(name)
            cols.append(np.nan_to_num(np.asarray(col.values, dtype=np.float64)))
        return np.stack(cols, axis=1)

    def forward(self, batch: Batch) -> np.ndarray:
        """Compute click logits for one batch."""
        dense = self._gather_dense(batch)
        dense_out = self.bottom.forward(dense)
        pooled = []
        self._table_order = []
        for table in self.config.tables:
            column = batch.column(self.sparse_inputs[table.name])
            if not isinstance(column, SparseColumn):
                raise TypeError(f"input for table {table.name!r} is not sparse")
            bag = self.tables[table.name]
            ids = column
            if column.values.size and column.values.max() >= bag.hash_size:
                ids = SparseColumn(
                    column.name,
                    column.offsets,
                    column.values % bag.hash_size,
                    bag.hash_size,
                )
            pooled.append(bag.forward(ids))
            self._table_order.append(table.name)
        interacted = self.interaction.forward(dense_out, pooled)
        hidden = self.top.forward(interacted)
        return self.head.forward(hidden).reshape(-1)

    def train_step(self, batch: Batch, labels: np.ndarray, lr: float = 0.05) -> float:
        """One SGD step; returns the batch's BCE loss."""
        logits = self.forward(batch)
        loss, grad_logits = bce_loss(logits, labels)
        grad = self.head.backward(grad_logits.reshape(-1, 1), lr)
        grad = self.top.backward(grad, lr)
        grad_dense, grad_pooled = self.interaction.backward(grad, self.config.embedding_dim)
        self.bottom.backward(grad_dense, lr)
        for name, g in zip(self._table_order, grad_pooled):
            self.tables[name].backward(g, lr)
        return loss

    def predict_proba(self, batch: Batch) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.forward(batch)))

    @property
    def num_mlp_params(self) -> int:
        return self.bottom.num_params + self.top.num_params + self.head.num_params
