"""Lowering a DLRM iteration to resource-annotated training stages.

Hybrid-parallel DLRM training has a fixed per-iteration stage pipeline:
embedding lookup (memory-bound), all-to-all exchange (communication),
bottom MLP, interaction, top MLP forward (compute-bound), the mirrored
backward stages, the embedding update (memory-bound), and the data-parallel
gradient all-reduce. Each stage gets a duration from an analytic
flops/bytes model and an (SM, DRAM) utilization profile; the alternation of
compute-heavy and memory-heavy profiles is what produces the Fig.-1a
utilization swings RAP harvests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import StageProfile
from ..gpusim.interconnect import Interconnect
from ..gpusim.resources import GpuSpec, ResourceVector, A100_SPEC
from .embedding import EmbeddingPlacement
from .model import DLRMConfig

__all__ = ["StageCalibration", "DEFAULT_CALIBRATION", "build_iteration_stages"]


@dataclass(frozen=True)
class StageCalibration:
    """Efficiency constants mapping analytic work to wall time.

    These fold every micro-effect (tensor-core utilization, cache hit
    rates, kernel tail effects) into a handful of per-stage efficiency
    factors. Defaults are set to make stage-time *ratios* credible for an
    A100 at DLRM-scale shapes; absolute times only need to be consistent
    with the preprocessing cost model, which uses the same device spec.
    """

    mlp_flops_efficiency: float = 0.60
    interaction_flops_efficiency: float = 0.35
    embedding_bw_efficiency: float = 0.30
    optimizer_bw_efficiency: float = 0.60
    backward_multiplier: float = 2.0
    embedding_update_multiplier: float = 1.6

    # Utilization profiles (sm, dram) per stage family.
    mlp_util: tuple[float, float] = (0.88, 0.30)
    interaction_util: tuple[float, float] = (0.70, 0.50)
    embedding_util: tuple[float, float] = (0.22, 0.92)
    embedding_bwd_util: tuple[float, float] = (0.28, 0.95)
    comm_util: tuple[float, float] = (0.08, 0.22)
    optimizer_util: tuple[float, float] = (0.35, 0.80)


DEFAULT_CALIBRATION = StageCalibration()


def _mlp_time_us(flops: float, spec: GpuSpec, efficiency: float) -> float:
    return flops / (spec.fp32_tflops * 1e12 * efficiency) * 1e6


def _bw_time_us(nbytes: float, spec: GpuSpec, efficiency: float) -> float:
    return nbytes / (spec.dram_bytes_per_us * efficiency)


def build_iteration_stages(
    config: DLRMConfig,
    placement: EmbeddingPlacement,
    local_batch: int,
    gpu_id: int,
    spec: GpuSpec = A100_SPEC,
    interconnect: Interconnect | None = None,
    calibration: StageCalibration = DEFAULT_CALIBRATION,
) -> list[StageProfile]:
    """Build GPU ``gpu_id``'s stage pipeline for one training iteration.

    ``local_batch`` is the per-GPU batch; embedding stages operate on the
    global batch (every GPU looks up its local tables for all samples
    before the all-to-all redistributes by sample).
    """
    if local_batch <= 0:
        raise ValueError("local_batch must be positive")
    num_gpus = placement.num_gpus
    if not 0 <= gpu_id < num_gpus:
        raise IndexError(f"gpu_id {gpu_id} out of range for {num_gpus} GPUs")
    ic = interconnect or Interconnect(spec)
    cal = calibration
    global_batch = local_batch * num_gpus

    lookup_bytes = placement.lookup_bytes_per_gpu(config, global_batch)[gpu_id]
    emb_fwd_us = _bw_time_us(lookup_bytes, spec, cal.embedding_bw_efficiency)
    emb_bwd_us = emb_fwd_us * cal.embedding_update_multiplier

    local_tables = len(placement.tables_on_gpu(gpu_id))
    a2a_bytes = global_batch * local_tables * config.embedding_dim * 4.0
    a2a_us = ic.all_to_all_us(a2a_bytes, num_gpus)

    bottom_fwd_us = _mlp_time_us(
        config.dense_arch.forward_flops(local_batch), spec, cal.mlp_flops_efficiency
    )
    top_fwd_us = _mlp_time_us(
        config.top_arch.forward_flops(local_batch), spec, cal.mlp_flops_efficiency
    )
    interaction_us = _mlp_time_us(
        config.interaction_flops(local_batch), spec, cal.interaction_flops_efficiency
    )

    allreduce_us = ic.all_reduce_us(config.mlp_param_bytes, num_gpus)
    optimizer_us = _bw_time_us(config.mlp_param_bytes * 3.0, spec, cal.optimizer_bw_efficiency)

    mlp = ResourceVector(*cal.mlp_util)
    inter = ResourceVector(*cal.interaction_util)
    emb = ResourceVector(*cal.embedding_util)
    emb_bwd = ResourceVector(*cal.embedding_bwd_util)
    comm = ResourceVector(*cal.comm_util)
    opt = ResourceVector(*cal.optimizer_util)

    bwd = cal.backward_multiplier
    return [
        StageProfile("emb_lookup_fwd", emb_fwd_us, emb),
        StageProfile("all_to_all_fwd", a2a_us, comm),
        StageProfile("mlp_bottom_fwd", bottom_fwd_us, mlp),
        StageProfile("interaction_fwd", interaction_us, inter),
        StageProfile("mlp_top_fwd", top_fwd_us, mlp),
        StageProfile("mlp_top_bwd", top_fwd_us * bwd, mlp),
        StageProfile("interaction_bwd", interaction_us * bwd, inter),
        StageProfile("mlp_bottom_bwd", bottom_fwd_us * bwd, mlp),
        StageProfile("all_to_all_bwd", a2a_us, comm),
        StageProfile("emb_update", emb_bwd_us, emb_bwd),
        StageProfile("mlp_allreduce", allreduce_us, comm),
        StageProfile("optimizer_step", optimizer_us, opt),
    ]
