"""The multi-GPU DLRM training workload object.

:class:`TrainingWorkload` bundles a model config, an embedding placement,
a batch size, and a simulated cluster into the object every scheduling
policy consumes: it exposes each GPU's stage pipeline, the standalone
("ideal", preprocessing-free) iteration time, and a ``simulate`` entry
point that co-runs arbitrary per-GPU preprocessing kernel assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..gpusim.cluster import ClusterIterationResult, MultiGpuCluster
from ..gpusim.device import CoRunPolicy, RAP_POLICY, StageProfile
from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import GpuSpec, A100_SPEC
from .embedding import EmbeddingPlacement, place_tables, reshard_placement
from .model import DLRMConfig
from .stages import DEFAULT_CALIBRATION, StageCalibration, build_iteration_stages

__all__ = ["TrainingWorkload"]


@dataclass
class TrainingWorkload:
    """A hybrid-parallel DLRM training job on a simulated multi-GPU node."""

    config: DLRMConfig
    num_gpus: int
    local_batch: int
    spec: GpuSpec = A100_SPEC
    calibration: StageCalibration = DEFAULT_CALIBRATION
    placement: EmbeddingPlacement | None = None
    #: Optional per-GPU specs for a heterogeneous fleet (mixed A100/H100-class
    #: profiles). ``None`` keeps every device at ``spec``. Each GPU's stage
    #: pipeline is built against its own device, so a faster member finishes
    #: its stages sooner and exposes different co-running capacity.
    specs: tuple[GpuSpec, ...] | None = None
    cluster: MultiGpuCluster = field(init=False)
    _stage_cache: dict[int, list[StageProfile]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.placement is None:
            self.placement = place_tables(self.config, self.num_gpus)
        if self.placement.num_gpus != self.num_gpus:
            raise ValueError("placement GPU count does not match workload GPU count")
        if self.specs is not None:
            self.specs = tuple(self.specs)
            if len(self.specs) != self.num_gpus:
                raise ValueError(
                    f"specs lists {len(self.specs)} GPUs but the workload has {self.num_gpus}"
                )
        self.cluster = MultiGpuCluster(self.num_gpus, self.spec, specs=self.specs)

    # ------------------------------------------------------------------
    # Stage pipelines
    # ------------------------------------------------------------------

    def spec_for_gpu(self, gpu_id: int) -> GpuSpec:
        """The device spec hosting GPU ``gpu_id`` (``spec`` if homogeneous)."""
        return self.cluster.spec_for_gpu(gpu_id)

    @property
    def heterogeneous(self) -> bool:
        return self.cluster.heterogeneous

    @property
    def fleet_profile(self) -> tuple[str, ...]:
        """Per-GPU spec names -- the fleet's serialized identity."""
        return tuple(self.spec_for_gpu(g).name for g in range(self.num_gpus))

    def stages_for_gpu(self, gpu_id: int) -> list[StageProfile]:
        if gpu_id not in self._stage_cache:
            self._stage_cache[gpu_id] = build_iteration_stages(
                self.config,
                self.placement,
                self.local_batch,
                gpu_id,
                spec=self.spec_for_gpu(gpu_id),
                interconnect=self.cluster.interconnect,
                calibration=self.calibration,
            )
        return self._stage_cache[gpu_id]

    def all_stage_pipelines(self) -> list[list[StageProfile]]:
        return [self.stages_for_gpu(g) for g in range(self.num_gpus)]

    @property
    def global_batch(self) -> int:
        return self.local_batch * self.num_gpus

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def shrunk(self, lost_gpu: int) -> tuple["TrainingWorkload", tuple[str, ...], float]:
        """The survivor workload after ``lost_gpu`` is permanently lost.

        Embedding tables sharded on the dead device are redistributed
        across survivors (:func:`repro.dlrm.embedding.reshard_placement`)
        and the cluster shrinks to the survivor set. The per-GPU batch is
        unchanged, so the global batch -- and with it peak throughput --
        contracts with the fleet. Returns ``(workload, moved_table_names,
        moved_bytes)``; the moved bytes price the redistribution.
        """
        placement, moved_tables, moved_bytes = reshard_placement(
            self.placement, self.config, lost_gpu
        )
        survivor = TrainingWorkload(
            config=self.config,
            num_gpus=self.num_gpus - 1,
            local_batch=self.local_batch,
            spec=self.spec,
            calibration=self.calibration,
            placement=placement,
            specs=(
                tuple(s for i, s in enumerate(self.specs) if i != lost_gpu)
                if self.specs is not None
                else None
            ),
        )
        # Reuse the surviving interconnect rather than re-deriving it, so
        # post-loss bandwidth assumptions match the original cluster's.
        survivor.cluster = self.cluster.shrink(lost_gpu)
        survivor._stage_cache.clear()
        return survivor, moved_tables, moved_bytes

    # ------------------------------------------------------------------
    # Ideal (preprocessing-free) performance
    # ------------------------------------------------------------------

    def ideal_iteration_us(self) -> float:
        """Standalone iteration time: the paper's "Ideal" upper bound."""
        result = self.cluster.simulate_iteration(self.all_stage_pipelines())
        return result.iteration_time_us

    def ideal_throughput(self) -> float:
        """Ideal training throughput in samples per second (global batch)."""
        it = self.ideal_iteration_us()
        return self.global_batch / (it * 1e-6) if it > 0 else 0.0

    # ------------------------------------------------------------------
    # Co-running simulation
    # ------------------------------------------------------------------

    def simulate(
        self,
        assignments_per_gpu: Sequence[Mapping[int, Sequence[KernelDesc]]] | None = None,
        trailing_per_gpu: Sequence[Sequence[KernelDesc]] | None = None,
        input_comm_bytes: float = 0.0,
        input_comm_transfers: int = 1,
        policy: CoRunPolicy = RAP_POLICY,
        recovery_us_per_gpu: Sequence[float] | None = None,
    ) -> ClusterIterationResult:
        """Simulate one iteration co-running the given preprocessing kernels."""
        return self.cluster.simulate_iteration(
            self.all_stage_pipelines(),
            assignments_per_gpu=assignments_per_gpu,
            trailing_per_gpu=trailing_per_gpu,
            input_comm_bytes=input_comm_bytes,
            input_comm_transfers=input_comm_transfers,
            policy=policy,
            recovery_us_per_gpu=recovery_us_per_gpu,
        )

    def throughput_from_iteration(self, iteration_us: float) -> float:
        return self.global_batch / (iteration_us * 1e-6) if iteration_us > 0 else 0.0
