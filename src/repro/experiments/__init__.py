"""``repro.experiments`` -- harnesses regenerating every table and figure.

Each module exposes ``run(...) -> dict`` (structured data, asserted on by
tests and benchmarks) and ``render(results) -> str`` (the printable form).
``repro.experiments.runner`` runs everything.

| Module   | Reproduces                                              |
|----------|---------------------------------------------------------|
| tables   | Tables 1-3 (operators, models, plans)                   |
| fig1     | Fig. 1a/1b/1c (utilization swings, NGram sweep, overlap)|
| fig5     | Fig. 5b/5c (latency abstraction validation)             |
| fig9     | Fig. 9 (end-to-end throughput grid)                     |
| fig10    | Fig. 10 (speedup breakdown + optimality)                |
| fig11    | Fig. 11 + Table 4 (turning points + utilization)        |
| fig12    | Fig. 12 (mapping adaptability on skewed workload)       |
| table5   | Table 5 (latency predictor accuracy)                    |
"""

from . import fig1, fig5, fig9, fig10, fig11, fig12, sensitivity, table5, tables
from .plotting import ascii_bar_chart, ascii_line_chart
from .reporting import format_kv, format_table, geomean
from .runner import run_all

__all__ = [
    "fig1",
    "fig5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "sensitivity",
    "table5",
    "tables",
    "ascii_bar_chart",
    "ascii_line_chart",
    "format_kv",
    "format_table",
    "geomean",
    "run_all",
]
