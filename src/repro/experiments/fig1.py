"""Figure 1: the opportunity and the challenge of GPU sharing.

(a) SM and DRAM-bandwidth utilization across two DLRM training iterations
    -- the alternation of compute-heavy MLP phases and memory-heavy
    embedding phases leaves large complementary slack.
(b) Resource consumption of the NGram preprocessing kernel as its input
    width grows from 8 to 128 features (4096 samples per feature).
(c) MLP-forward latency when overlapped with NGram kernels of growing
    width -- latency inflates once the kernel outgrows the leftover.
"""

from __future__ import annotations

from ..dlrm import TrainingWorkload, terabyte_model
from ..gpusim import GpuDevice
from ..preprocessing.ops import Ngram
from .reporting import format_table

__all__ = ["profile_training_utilization", "ngram_resource_sweep", "ngram_overlap_latency", "run", "render"]

FEATURE_COUNTS = (8, 16, 32, 64, 128)
SAMPLES_PER_FEATURE = 4096


def profile_training_utilization(
    num_gpus: int = 4,
    local_batch: int = 4096,
    iterations: int = 2,
    sample_points: int = 200,
) -> dict:
    """Fig. 1a: sampled SM/DRAM utilization over training iterations."""
    workload = TrainingWorkload(terabyte_model(), num_gpus=num_gpus, local_batch=local_batch)
    device = GpuDevice(workload.spec)
    stages = workload.stages_for_gpu(0)
    trace = device.run_training_standalone(list(stages) * iterations).trace
    dt = trace.duration / sample_points
    times, sm, dram = trace.sample(dt)
    return {
        "time_us": times.tolist(),
        "sm_utilization": sm.tolist(),
        "dram_utilization": dram.tolist(),
        "iteration_us": trace.duration / iterations,
        "mean_sm": trace.mean_utilization().sm,
        "mean_dram": trace.mean_utilization().dram,
    }


def _ngram_kernel(num_features: int):
    op = Ngram(inputs=tuple(f"sparse_{i}" for i in range(num_features)), output="fig1_ngram", n=3)
    return op.gpu_kernel(SAMPLES_PER_FEATURE)


def ngram_resource_sweep(feature_counts=FEATURE_COUNTS) -> list[dict]:
    """Fig. 1b: NGram kernel resource demand vs input width."""
    rows = []
    for k in feature_counts:
        kernel = _ngram_kernel(k)
        rows.append(
            {
                "features": k,
                "num_warps": kernel.num_warps,
                "sm_utilization": kernel.demand.sm,
                "dram_bw_utilization": kernel.demand.dram,
                "gpu_utilization": min(1.0, max(kernel.demand.sm, kernel.demand.dram)),
                "standalone_us": kernel.duration_us,
            }
        )
    return rows


def ngram_overlap_latency(feature_counts=FEATURE_COUNTS, num_gpus: int = 4, local_batch: int = 4096) -> list[dict]:
    """Fig. 1c: MLP-forward latency overlapped with NGram kernels."""
    workload = TrainingWorkload(terabyte_model(), num_gpus=num_gpus, local_batch=local_batch)
    mlp_fwd = next(s for s in workload.stages_for_gpu(0) if s.name == "mlp_top_fwd")
    device = GpuDevice(workload.spec)
    baseline = mlp_fwd.duration_us
    rows = [{"features": 0, "mlp_fwd_us": baseline, "slowdown": 1.0}]
    for k in feature_counts:
        kernel = _ngram_kernel(k)
        result = device.simulate_iteration([mlp_fwd], assignments={0: [kernel]})
        rows.append(
            {
                "features": k,
                "mlp_fwd_us": result.stage_spans[0].wall_time,
                "slowdown": result.stage_spans[0].slowdown,
            }
        )
    return rows


def run(num_gpus: int = 4, local_batch: int = 4096) -> dict:
    """Run all three panels of Figure 1."""
    return {
        "fig1a": profile_training_utilization(num_gpus, local_batch),
        "fig1b": ngram_resource_sweep(),
        "fig1c": ngram_overlap_latency(num_gpus=num_gpus, local_batch=local_batch),
    }


def render(results: dict) -> str:
    a = results["fig1a"]
    parts = [
        "Figure 1a: training utilization "
        f"(iteration {a['iteration_us']:.0f} us, mean SM {a['mean_sm']:.2f}, mean DRAM {a['mean_dram']:.2f})",
        format_table(
            ["features", "warps", "SM util", "DRAM util", "GPU util", "standalone us"],
            [
                [r["features"], r["num_warps"], r["sm_utilization"], r["dram_bw_utilization"],
                 r["gpu_utilization"], r["standalone_us"]]
                for r in results["fig1b"]
            ],
            title="Figure 1b: NGram kernel resource demand vs width",
        ),
        format_table(
            ["features", "mlp_fwd us", "slowdown"],
            [[r["features"], r["mlp_fwd_us"], r["slowdown"]] for r in results["fig1c"]],
            title="Figure 1c: MLP forward overlapped with NGram",
        ),
    ]
    return "\n\n".join(parts)
