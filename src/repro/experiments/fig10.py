"""Figure 10: speedup breakdown and optimality analysis.

Six configurations on the 8-GPU node: Sequential, MPS, RAP without the
inter-GPU mapping optimization, RAP without horizontal fusion, full RAP,
and the preprocessing-free Ideal. The paper reports RAP w/o mapping and
RAP w/o fusion at 1.19x and 1.15x over MPS, and full RAP within 3.24% of
Ideal.
"""

from __future__ import annotations

from ..baselines import run_mps_baseline, run_sequential_baseline
from ..core import RapPlanner
from ..dlrm import TrainingWorkload, model_for_plan
from ..preprocessing import build_plan
from .reporting import format_table, geomean

__all__ = ["run", "render"]

CONFIGS = ("sequential", "mps", "rap_wo_mapping", "rap_wo_fusion", "rap", "ideal")


def run(plan_ids=(0, 1, 2, 3), num_gpus: int = 8, batch: int = 4096) -> dict:
    rows: list[dict] = []
    for plan_id in plan_ids:
        graphs, schema = build_plan(plan_id, rows=batch)
        workload = TrainingWorkload(model_for_plan(graphs, schema), num_gpus=num_gpus, local_batch=batch)
        entry = {
            "plan": plan_id,
            "sequential": run_sequential_baseline(graphs, workload).throughput,
            "mps": run_mps_baseline(graphs, workload).throughput,
            "rap_wo_mapping": RapPlanner(workload, mapping_strategy="data_parallel")
            .plan_and_evaluate(graphs)
            .throughput,
            "rap_wo_fusion": RapPlanner(workload, fusion_enabled=False)
            .plan_and_evaluate(graphs)
            .throughput,
            "rap": RapPlanner(workload).plan_and_evaluate(graphs).throughput,
            "ideal": workload.ideal_throughput(),
        }
        rows.append(entry)
    summary = {
        "rap_wo_mapping_over_mps": geomean([r["rap_wo_mapping"] / r["mps"] for r in rows]),
        "rap_wo_fusion_over_mps": geomean([r["rap_wo_fusion"] / r["mps"] for r in rows]),
        "rap_over_sequential": geomean([r["rap"] / r["sequential"] for r in rows]),
        "rap_vs_ideal": geomean([r["rap"] / r["ideal"] for r in rows]),
    }
    return {"rows": rows, "summary": summary}


def render(results: dict) -> str:
    table = format_table(
        ["plan"] + list(CONFIGS),
        [[r["plan"]] + [r[c] for c in CONFIGS] for r in results["rows"]],
        title="Figure 10: speedup breakdown (throughput, samples/s, 8 GPUs)",
    )
    s = results["summary"]
    summary = (
        f"RAP w/o mapping: {s['rap_wo_mapping_over_mps']:.2f}x over MPS (paper 1.19x); "
        f"RAP w/o fusion: {s['rap_wo_fusion_over_mps']:.2f}x over MPS (paper 1.15x); "
        f"RAP: {s['rap_over_sequential']:.2f}x over Sequential (paper 1.99x); "
        f"RAP at {100 * s['rap_vs_ideal']:.2f}% of Ideal (paper 96.76%)."
    )
    return table + "\n\n" + summary
