"""Figure 11 (and Table 4): latency vs growing preprocessing workload.

DLRM training is fixed while NGram operations are added one by one. Three
settings are compared:

- **Baseline**: offload the kernels to the GPU with no other optimization
  (unfused, issued from the top of the iteration);
- **Horizontal Fusion**: fuse the kernels, still naively scheduled;
- **Fusion + Scheduling (RAP)**: the full resource-aware pipeline.

Each curve stays flat until the workload outgrows what its setting can
hide, then rises; the *turning point* (first size where latency exceeds
the no-preprocessing latency by >10%) arrives earliest for the baseline
and latest for RAP. Table 4 reports GPU/SM utilization at each setting's
turning point.
"""

from __future__ import annotations

from ..core.capacity import OverlappingCapacityEstimator
from ..core.cost_model import CoRunningCostModel
from ..core.fusion import HorizontalFusionPass
from ..core.scheduler import ResourceAwareScheduler
from ..dlrm import TrainingWorkload, terabyte_model
from ..gpusim import GpuDevice, MPS_POLICY
from ..preprocessing.graph import FeatureGraph, GraphSet
from ..preprocessing.ops import Ngram
from .plotting import ascii_line_chart
from .reporting import format_table

__all__ = ["run", "render", "turning_point", "SETTINGS"]

SETTINGS = ("baseline", "fusion", "rap")


def _ngram_graphs(count: int, rows: int) -> GraphSet:
    graphs = [
        FeatureGraph(
            name=f"fig11_ng{i}",
            ops=[
                Ngram(
                    inputs=(f"sparse_{(3 * i) % 26}", f"sparse_{(3 * i + 1) % 26}", f"sparse_{(3 * i + 2) % 26}"),
                    output=f"fig11_ng{i}_out",
                    n=3,
                )
            ],
            consumer=f"table:sparse_{(3 * i) % 26}",
        )
        for i in range(count)
    ]
    return GraphSet(graphs, rows=rows)


def _simulate(setting: str, count: int, workload: TrainingWorkload, device: GpuDevice):
    stages = workload.stages_for_gpu(0)
    if count == 0:
        return device.run_training_standalone(stages)
    graph_set = _ngram_graphs(count, workload.local_batch)
    fusion = HorizontalFusionPass(workload.spec, enabled=(setting != "baseline"))
    plan = fusion.run(list(graph_set), workload.local_batch)
    if setting == "rap":
        cost_model = CoRunningCostModel(OverlappingCapacityEstimator(workload.spec))
        schedule = ResourceAwareScheduler(cost_model).schedule(stages, plan.kernels)
        return device.simulate_iteration(
            stages, assignments=schedule.assignments, trailing_kernels=schedule.trailing
        )
    # "Without other optimization" means sharing the GPU the way a generic
    # mechanism does (MPS-style sequential issue from the top of the
    # iteration), not RAP's compiled contention-free schedule.
    return device.simulate_iteration(stages, assignments={0: plan.kernels}, policy=MPS_POLICY)


def run(
    workload_sizes=tuple(range(0, 97, 8)),
    num_gpus: int = 4,
    local_batch: int = 4096,
) -> dict:
    """Sweep the NGram count for each setting; find turning points."""
    workload = TrainingWorkload(terabyte_model(), num_gpus=num_gpus, local_batch=local_batch)
    device = GpuDevice(workload.spec)
    base_latency = device.run_training_standalone(workload.stages_for_gpu(0)).total_time_us
    rows: list[dict] = []
    utilization: dict[str, dict] = {}
    turning: dict[str, int | None] = {}
    for setting in SETTINGS:
        prev_result = None
        turning[setting] = None
        for count in workload_sizes:
            result = _simulate(setting, count, workload, device)
            rows.append(
                {
                    "setting": setting,
                    "ngram_ops": count,
                    "latency_us": result.total_time_us,
                    "relative": result.total_time_us / base_latency,
                }
            )
            if turning[setting] is None and result.total_time_us > 1.10 * base_latency:
                turning[setting] = count
                # Profile over the training window (trailing exposed work
                # runs on an otherwise idle device and is not "sharing").
                window = (0.0, result.training_time_us or result.total_time_us)
                mean = result.trace.mean_utilization(*window)
                utilization[setting] = {
                    "gpu_utilization": result.trace.mean_peak_utilization(*window),
                    "sm_utilization": mean.sm,
                    "dram_utilization": mean.dram,
                }
            prev_result = result
        if turning[setting] is None:
            # Never turned within the sweep: record the last point's profile.
            window = (0.0, prev_result.training_time_us or prev_result.total_time_us)
            mean = prev_result.trace.mean_utilization(*window)
            utilization[setting] = {
                "gpu_utilization": prev_result.trace.mean_peak_utilization(*window),
                "sm_utilization": mean.sm,
                "dram_utilization": mean.dram,
            }
    return {
        "rows": rows,
        "base_latency_us": base_latency,
        "turning_points": turning,
        "table4": utilization,
    }


def turning_point(results: dict, setting: str) -> int | None:
    return results["turning_points"].get(setting)


def render(results: dict) -> str:
    curve = format_table(
        ["setting", "#ngram ops", "latency us", "vs no-preproc"],
        [[r["setting"], r["ngram_ops"], r["latency_us"], r["relative"]] for r in results["rows"]],
        title=f"Figure 11: latency vs preprocessing workload (base {results['base_latency_us']:.0f} us)",
    )
    tp = results["turning_points"]
    table4 = format_table(
        ["setting", "turning point (#ops)", "GPU util", "SM util"],
        [
            [
                s,
                tp[s] if tp[s] is not None else f">{max(r['ngram_ops'] for r in results['rows'])}",
                results["table4"][s]["gpu_utilization"],
                results["table4"][s]["sm_utilization"],
            ]
            for s in SETTINGS
        ],
        title="Table 4: utilization at the latency turning point",
    )
    series = {
        setting: [
            (float(r["ngram_ops"]), float(r["latency_us"]))
            for r in results["rows"]
            if r["setting"] == setting
        ]
        for setting in SETTINGS
    }
    chart = ascii_line_chart(
        series,
        title="Figure 11 (chart): iteration latency vs #Ngram ops",
        y_label="us",
    )
    return curve + "\n\n" + chart + "\n\n" + table4
