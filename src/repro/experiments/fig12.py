"""Figure 12: adaptability of the input preprocessing graph mapping.

On a skewed workload (the embedding tables of GPU 0 receive extra
feature-generation graphs), three mapping strategies are compared by their
exposed latency: data-parallel (pays per-feature input communication),
data-locality (piles work on GPU 0), and RAP's joint mapping. The paper
reports 4.3x and 4.0x exposed-latency reductions for RAP over DP and DL.
"""

from __future__ import annotations

from ..core.capacity import OverlappingCapacityEstimator
from ..core.cost_model import CoRunningCostModel
from ..core.fusion import HorizontalFusionPass
from ..core.mapping import RapMapper, map_data_locality, map_data_parallel
from ..core.scheduler import ResourceAwareScheduler
from ..dlrm import TrainingWorkload, model_for_plan
from ..preprocessing import build_skewed_plan
from .reporting import format_table

__all__ = ["run", "render"]


def run(num_gpus: int = 4, local_batch: int = 4096, graphs_per_heavy_feature: int = 3) -> dict:
    # Two-phase build: place the (unskewed) model's tables first, then pile
    # the extra feature-generation graphs on the features whose tables live
    # on GPU 0 -- the skew the paper describes.
    base_graphs, schema = build_skewed_plan(rows=local_batch, heavy_features=[])
    base_model = model_for_plan(base_graphs, schema)
    base_workload = TrainingWorkload(base_model, num_gpus=num_gpus, local_batch=local_batch)
    gpu0_features = [
        int(t.removeprefix("table:sparse_"))
        for t in base_workload.placement.tables_on_gpu(0)
        if t.startswith("table:sparse_")
    ]
    graphs, schema = build_skewed_plan(
        rows=local_batch,
        heavy_features=gpu0_features,
        graphs_per_heavy_feature=graphs_per_heavy_feature,
    )
    workload = TrainingWorkload(
        model_for_plan(graphs, schema),
        num_gpus=num_gpus,
        local_batch=local_batch,
        placement=base_workload.placement,
    )
    cost_model = CoRunningCostModel(OverlappingCapacityEstimator(workload.spec))
    mapper = RapMapper(
        workload,
        cost_model,
        HorizontalFusionPass(workload.spec),
        ResourceAwareScheduler(cost_model),
    )
    evaluations = {
        "data_parallel": mapper.evaluate(graphs, map_data_parallel(graphs, workload)),
        "data_locality": mapper.evaluate(graphs, map_data_locality(graphs, workload)),
        "rap": mapper.optimize(graphs),
    }
    rows = []
    for name, ev in evaluations.items():
        rows.append(
            {
                "mapping": name,
                "exposed_comm_us": ev.comm_us,
                "exposed_preprocessing_us": max(ev.exposed_per_gpu),
                "total_exposed_us": ev.objective_us,
                "per_gpu_exposed_us": [round(x, 1) for x in ev.exposed_per_gpu],
            }
        )
    rap_total = evaluations["rap"].objective_us
    summary = {
        "dp_over_rap": evaluations["data_parallel"].objective_us / rap_total if rap_total else float("inf"),
        "dl_over_rap": evaluations["data_locality"].objective_us / rap_total if rap_total else float("inf"),
    }
    return {"rows": rows, "summary": summary}


def render(results: dict) -> str:
    table = format_table(
        ["mapping", "exposed comm us", "exposed preproc us", "total us", "per-GPU"],
        [
            [r["mapping"], r["exposed_comm_us"], r["exposed_preprocessing_us"],
             r["total_exposed_us"], str(r["per_gpu_exposed_us"])]
            for r in results["rows"]
        ],
        title="Figure 12: exposed latency by mapping strategy (skewed workload)",
    )
    s = results["summary"]
    return (
        table
        + f"\n\nExposed-latency reduction: {s['dp_over_rap']:.1f}x vs DP (paper 4.3x), "
        + f"{s['dl_over_rap']:.1f}x vs DL (paper 4.0x)."
    )
