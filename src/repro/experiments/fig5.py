"""Figure 5: validating the latency-based preprocessing overhead abstraction.

(b) The correlation between a preprocessing kernel's *standalone* latency
    and the *overlapping* latency when co-run with the embedding-lookup
    stage: different operator types follow one consistent trend, which is
    what licenses standalone latency as the uniform cost currency.
(c) The same overlapping latency plotted against the kernel's warp count:
    the curves for different operators misalign, showing warp count is
    *not* a uniform cost metric.
"""

from __future__ import annotations

from scipy.stats import spearmanr

from ..dlrm import TrainingWorkload, terabyte_model
from ..gpusim import GpuDevice
from ..preprocessing.ops import Logit, Ngram, SigridHash
from .reporting import format_table

__all__ = ["overlap_correlation", "run", "render"]

_SWEEP_ROWS = (4096, 16_384, 65_536, 262_144, 1_048_576)


def _ops():
    return {
        "Ngram": Ngram(inputs=("a", "b", "c"), output="fig5_ng", n=3),
        "SigridHash": SigridHash(inputs=("a",), output="fig5_sh"),
        "Logit": Logit(inputs=("a",), output="fig5_lg"),
    }


def overlap_correlation(
    num_gpus: int = 4,
    local_batch: int = 4096,
    row_sweep=_SWEEP_ROWS,
) -> list[dict]:
    """Standalone vs overlapping latency for three operator types."""
    workload = TrainingWorkload(terabyte_model(), num_gpus=num_gpus, local_batch=local_batch)
    emb = next(s for s in workload.stages_for_gpu(0) if s.name == "emb_lookup_fwd")
    device = GpuDevice(workload.spec)
    rows = []
    for op_name, op in _ops().items():
        for n_rows in row_sweep:
            kernel = op.gpu_kernel(n_rows)
            result = device.simulate_iteration([emb], assignments={0: [kernel]})
            rows.append(
                {
                    "op": op_name,
                    "rows": n_rows,
                    "num_warps": kernel.num_warps,
                    "standalone_us": kernel.duration_us,
                    "overlapping_us": result.total_time_us,
                }
            )
    return rows


def run(num_gpus: int = 4, local_batch: int = 4096) -> dict:
    rows = overlap_correlation(num_gpus, local_batch)
    # Fig. 5b check: pooled across op types, overlapping latency follows
    # standalone latency as one consistent trend (high rank correlation),
    # whereas warp count does not align across operators (Fig. 5c).
    standalone = [r["standalone_us"] for r in rows]
    overlap = [r["overlapping_us"] for r in rows]
    warps = [float(r["num_warps"]) for r in rows]
    corr_latency = float(spearmanr(standalone, overlap).statistic)
    corr_warps = float(spearmanr(warps, overlap).statistic)
    pooled = sorted(rows, key=lambda r: r["standalone_us"])
    overlaps = [r["overlapping_us"] for r in pooled]
    inversions = sum(
        1
        for i in range(len(overlaps) - 1)
        if overlaps[i] > overlaps[i + 1] * 1.05
    )
    return {
        "rows": rows,
        "standalone_order_inversions": inversions,
        "latency_rank_correlation": corr_latency,
        "warp_rank_correlation": corr_warps,
    }


def render(results: dict) -> str:
    return format_table(
        ["op", "rows", "warps", "standalone us", "overlapping us"],
        [
            [r["op"], r["rows"], r["num_warps"], r["standalone_us"], r["overlapping_us"]]
            for r in results["rows"]
        ],
        title=(
            "Figure 5b/5c: standalone vs overlapping latency "
            f"(rank correlation with standalone latency: "
            f"{results['latency_rank_correlation']:.3f})"
        ),
    )
