"""Figure 9: end-to-end DLRM training throughput.

Four systems (TorchArrow CPU preprocessing, low-priority CUDA stream, MPS,
RAP) across {2, 4, 8} GPUs x Plans 0-3 x two batch sizes. The paper's
headline numbers summarized from this grid: RAP averages 17.8x over
TorchArrow, 2.01x over the stream baseline, and 1.43x over MPS.
"""

from __future__ import annotations

from ..baselines import (
    run_cuda_stream_baseline,
    run_mps_baseline,
    run_torcharrow_baseline,
)
from ..core import RapPlanner
from ..dlrm import TrainingWorkload, model_for_plan
from ..preprocessing import build_plan
from .reporting import format_table, geomean

__all__ = ["run", "render", "DEFAULT_GPUS", "DEFAULT_PLANS", "DEFAULT_BATCHES"]

DEFAULT_GPUS = (2, 4, 8)
DEFAULT_PLANS = (0, 1, 2, 3)
DEFAULT_BATCHES = (4096, 8192)

SYSTEMS = ("torcharrow", "cuda_stream", "mps", "rap")


def run(
    gpu_counts=DEFAULT_GPUS,
    plan_ids=DEFAULT_PLANS,
    batch_sizes=DEFAULT_BATCHES,
) -> dict:
    """Run the full Fig.-9 grid; returns rows plus speedup summaries."""
    rows: list[dict] = []
    for plan_id in plan_ids:
        for batch in batch_sizes:
            graphs, schema = build_plan(plan_id, rows=batch)
            model = model_for_plan(graphs, schema)
            for num_gpus in gpu_counts:
                workload = TrainingWorkload(model, num_gpus=num_gpus, local_batch=batch)
                rap = RapPlanner(workload).plan_and_evaluate(graphs)
                entry = {
                    "plan": plan_id,
                    "batch": batch,
                    "gpus": num_gpus,
                    "torcharrow": run_torcharrow_baseline(graphs, workload).throughput,
                    "cuda_stream": run_cuda_stream_baseline(graphs, workload).throughput,
                    "mps": run_mps_baseline(graphs, workload).throughput,
                    "rap": rap.throughput,
                    "ideal": workload.ideal_throughput(),
                }
                rows.append(entry)
    summary = {
        f"rap_over_{name}": geomean([r["rap"] / r[name] for r in rows])
        for name in ("torcharrow", "cuda_stream", "mps")
    }
    summary["rap_vs_ideal"] = geomean([r["rap"] / r["ideal"] for r in rows])
    return {"rows": rows, "summary": summary}


def render(results: dict) -> str:
    table = format_table(
        ["plan", "batch", "gpus", "TorchArrow", "CUDA stream", "MPS", "RAP", "Ideal"],
        [
            [r["plan"], r["batch"], r["gpus"], r["torcharrow"], r["cuda_stream"],
             r["mps"], r["rap"], r["ideal"]]
            for r in results["rows"]
        ],
        title="Figure 9: end-to-end training throughput (samples/s)",
    )
    s = results["summary"]
    summary = (
        f"RAP speedup (geomean): {s['rap_over_torcharrow']:.1f}x vs TorchArrow, "
        f"{s['rap_over_cuda_stream']:.2f}x vs CUDA stream, "
        f"{s['rap_over_mps']:.2f}x vs MPS; "
        f"RAP reaches {100 * s['rap_vs_ideal']:.1f}% of ideal.\n"
        "Paper: 17.8x vs TorchArrow, 2.01x vs CUDA stream, 1.43x vs MPS, 96.8% of ideal."
    )
    return table + "\n\n" + summary
