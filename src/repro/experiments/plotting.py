"""Terminal plotting for the experiment harnesses.

The paper's figures are line/bar charts; for a dependency-free repository
the runner renders them as ASCII charts alongside the raw tables, so the
shapes (crossovers, saturation, turning points) are visible without
leaving the terminal.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

_MARKERS = "*o+x#@%&"


def ascii_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 70,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Plot one or more (x, y) series on a shared character grid.

    Each series gets its own marker; the legend maps markers to names.
    Points are nearest-cell rasterized -- enough to see the paper's shapes.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:,.6g}"
    bottom_label = f"{y_lo:,.6g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label
        elif r == height - 1:
            label = bottom_label
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_axis = f"{x_lo:,.6g}".ljust(width - len(f"{x_hi:,.6g}")) + f"{x_hi:,.6g}"
    lines.append(f"{' ' * label_width}  {x_axis}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bars scaled to the maximum value."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{name.ljust(label_width)} |{bar} {value:,.6g}")
    return "\n".join(lines)
