"""Plain-text reporting helpers shared by the experiment harnesses.

Every experiment returns plain dict/list data (so tests and benchmarks can
assert on it) and can render itself through these helpers for the
EXPERIMENTS.md record and console output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_kv", "geomean"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render key/value pairs, one per line."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {_fmt(v)}" for k, v in pairs.items())
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional aggregate for speedups)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
