"""Run every experiment and render the full evaluation record.

``python -m repro.experiments.runner`` regenerates all tables and figures
(with configurable scale) and prints the EXPERIMENTS.md-style record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import fig1, fig5, fig9, fig10, fig11, fig12, sensitivity, table5
from .tables import (
    render_table1,
    render_table2,
    render_table3,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = ["run_all", "main"]


def run_all(
    quick: bool = False,
    stream=sys.stdout,
    output_dir: str | Path | None = None,
) -> dict[str, dict]:
    """Execute every experiment; ``quick`` shrinks sweeps for smoke runs.

    With ``output_dir`` set, each experiment's structured results are also
    written as ``<name>.json`` (for external plotting) alongside the
    rendered text in ``<name>.txt``.
    """
    results: dict[str, dict] = {}
    out_path = Path(output_dir) if output_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    def section(name: str, fn, renderer):
        start = time.perf_counter()
        results[name] = fn()
        elapsed = time.perf_counter() - start
        rendered = renderer(results[name])
        print(f"\n{'=' * 72}\n{name}  ({elapsed:.1f}s)\n{'=' * 72}", file=stream)
        print(rendered, file=stream)
        if out_path is not None:
            (out_path / f"{name}.json").write_text(json.dumps(results[name], indent=2, default=str))
            (out_path / f"{name}.txt").write_text(rendered + "\n")

    section("table1", run_table1, render_table1)
    section("table2", run_table2, render_table2)
    section("table3", run_table3, render_table3)
    section("fig1", lambda: fig1.run(num_gpus=2 if quick else 4), fig1.render)
    section("fig5", lambda: fig5.run(num_gpus=2 if quick else 4), fig5.render)
    if quick:
        section(
            "fig9",
            lambda: fig9.run(gpu_counts=(2,), plan_ids=(0, 1), batch_sizes=(4096,)),
            fig9.render,
        )
        section("fig10", lambda: fig10.run(plan_ids=(0, 1), num_gpus=4), fig10.render)
        section("fig11", lambda: fig11.run(workload_sizes=tuple(range(0, 49, 16))), fig11.render)
        section("fig12", lambda: fig12.run(local_batch=2048), fig12.render)
        section("sensitivity", lambda: sensitivity.run(plan_id=1, num_gpus=2), sensitivity.render)
        section("table5", lambda: table5.run(num_samples=2000), table5.render)
    else:
        section("fig9", fig9.run, fig9.render)
        section("fig10", fig10.run, fig10.render)
        section("fig11", fig11.run, fig11.render)
        section("fig12", fig12.run, fig12.render)
        section("sensitivity", sensitivity.run, sensitivity.render)
        section("table5", table5.run, table5.render)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweeps for a smoke run")
    parser.add_argument("--output-dir", metavar="DIR",
                        help="also write per-experiment JSON + text files")
    args = parser.parse_args(argv)
    run_all(quick=args.quick, output_dir=args.output_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
