"""Sensitivity study: how robust is RAP's advantage to calibration choices?

Our reproduction fixes constants the paper measured on hardware -- stage
efficiency factors, sharing-policy penalties, kernel launch overhead, GPU
generation. This study sweeps them and checks the *qualitative* results
(RAP > MPS > sequential; RAP near ideal) survive, i.e. the reproduction's
conclusions are not an artifact of one lucky calibration point.

Each sweep perturbs one knob across a range, re-runs RAP and the MPS
baseline on a mid-weight workload, and records the speedup.
"""

from __future__ import annotations

from dataclasses import replace

from ..baselines import run_mps_baseline, run_sequential_baseline
from ..core import RapPlanner
from ..dlrm import DEFAULT_CALIBRATION, TrainingWorkload, model_for_plan
from ..gpusim import A100_SPEC, V100_SPEC
from ..preprocessing import build_plan
from .reporting import format_table

__all__ = ["run", "render", "SWEEPS"]

SWEEPS = ("mlp_efficiency", "embedding_bw_efficiency", "launch_overhead", "gpu_generation")


def _measure(graphs, workload) -> dict:
    rap = RapPlanner(workload).plan_and_evaluate(graphs)
    mps = run_mps_baseline(graphs, workload)
    seq = run_sequential_baseline(graphs, workload)
    ideal = workload.ideal_throughput()
    return {
        "rap_over_mps": rap.throughput / mps.throughput,
        "rap_over_seq": rap.throughput / seq.throughput,
        "rap_vs_ideal": rap.throughput / ideal,
    }


def run(plan_id: int = 2, num_gpus: int = 4, batch: int = 4096) -> dict:
    graphs, schema = build_plan(plan_id, rows=batch)
    model = model_for_plan(graphs, schema)
    rows: list[dict] = []

    def record(sweep: str, point: str, workload: TrainingWorkload) -> None:
        entry = {"sweep": sweep, "point": point}
        entry.update(_measure(graphs, workload))
        rows.append(entry)

    # 1. MLP compute efficiency: faster/slower training changes the
    #    capacity RAP harvests.
    for eff in (0.40, 0.60, 0.80):
        cal = replace(DEFAULT_CALIBRATION, mlp_flops_efficiency=eff)
        record("mlp_efficiency", f"{eff:.2f}", TrainingWorkload(model, num_gpus, batch, calibration=cal))

    # 2. Embedding bandwidth efficiency: reshapes the memory-bound stages.
    for eff in (0.15, 0.30, 0.60):
        cal = replace(DEFAULT_CALIBRATION, embedding_bw_efficiency=eff)
        record("embedding_bw_efficiency", f"{eff:.2f}",
               TrainingWorkload(model, num_gpus, batch, calibration=cal))

    # 3. Kernel launch overhead: moves the fusion payoff.
    for launch in (2.0, 5.0, 12.0):
        spec = replace(A100_SPEC, kernel_launch_us=launch)
        record("launch_overhead", f"{launch:.0f}us",
               TrainingWorkload(model, num_gpus, batch, spec=spec))

    # 4. GPU generation.
    for name, spec in (("A100", A100_SPEC), ("V100", V100_SPEC)):
        record("gpu_generation", name, TrainingWorkload(model, num_gpus, batch, spec=spec))

    robust = all(r["rap_over_mps"] > 1.0 and r["rap_over_seq"] > 1.0 for r in rows)
    return {"rows": rows, "robust": robust}


def render(results: dict) -> str:
    table = format_table(
        ["sweep", "point", "RAP/MPS", "RAP/Seq", "RAP/Ideal"],
        [
            [r["sweep"], r["point"], r["rap_over_mps"], r["rap_over_seq"], r["rap_vs_ideal"]]
            for r in results["rows"]
        ],
        title="Sensitivity: RAP's advantage across calibration choices",
    )
    verdict = "robust: RAP wins at every sweep point" if results["robust"] else "NOT robust"
    return table + "\n\n" + verdict
