"""Table 5: accuracy of the ML-based preprocessing latency predictor.

~11K kernel configurations are sampled, split 9:1 into train/eval, and a
GBDT is trained per operator family. Accuracy is the fraction of held-out
predictions within 10% of the measured latency; the paper reports
92.9-98.5% across families.
"""

from __future__ import annotations

from ..core.latency_predictor import train_default_predictor
from .reporting import format_table

__all__ = ["run", "render", "PAPER_ACCURACY"]

PAPER_ACCURACY = {
    "1D Ops": 0.980,
    "FirstX": 0.955,
    "Ngram": 0.929,
    "Onehot": 0.973,
    "Bucketize": 0.985,
}


def run(num_samples: int = 11_000, seed: int = 7) -> dict:
    _, accuracy = train_default_predictor(num_samples=num_samples, seed=seed)
    return {
        "accuracy": accuracy,
        "num_samples": num_samples,
        "paper": PAPER_ACCURACY,
    }


def render(results: dict) -> str:
    rows = [
        [family, 100 * results["accuracy"].get(family, 0.0), 100 * paper]
        for family, paper in PAPER_ACCURACY.items()
    ]
    return format_table(
        ["operator family", "measured acc (%)", "paper acc (%)"],
        rows,
        title=f"Table 5: latency predictor accuracy ({results['num_samples']} sampled kernels, 9:1 split)",
    )
