"""Setup tables 1-3: reproduced as structured printouts from the library."""

from .table1 import run as run_table1, render as render_table1
from .table2 import run as run_table2, render as render_table2
from .table3 import run as run_table3, render as render_table3

__all__ = [
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_table3",
    "render_table3",
]
