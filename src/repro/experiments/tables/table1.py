"""Table 1: the common DLRM preprocessing operator inventory."""

from __future__ import annotations

from ...preprocessing.ops import OP_REGISTRY
from ..reporting import format_table

__all__ = ["run", "render"]

_DESCRIPTIONS = {
    "Logit": "Logit transform for normalization",
    "BoxCox": "BoxCox transform for normalization",
    "Onehot": "Apply one hot encoding to normalize dense features",
    "SigridHash": "Compute hash value to normalize list of sparse features",
    "FirstX": "List truncation of sparse features for normalization",
    "Clamp": "Clamp the sparse input based on the upper and lower bound",
    "Bucketize": "Shard features based on bucket borders",
    "Ngram": "Compute an n-gram between multiple sparse features",
    "MapId": "Maps feature IDs to fixed values",
    "FillNull": "Fill NA/NaN values using the specified value",
    "Cast": "Cast the data to different type",
}

_CATEGORY_ORDER = {"DN": 0, "SN": 1, "FG": 2, "Other": 3}


def run() -> dict:
    rows = []
    for name, cls in OP_REGISTRY.items():
        rows.append(
            {
                "type": cls.category,
                "operator": name,
                "description": _DESCRIPTIONS[name],
                "input_kind": cls.input_kind,
                "predictor_family": cls.predictor_family,
            }
        )
    rows.sort(key=lambda r: (_CATEGORY_ORDER[r["type"]], r["operator"]))
    return {"rows": rows}


def render(results: dict) -> str:
    return format_table(
        ["type", "operator", "description"],
        [[r["type"], r["operator"], r["description"]] for r in results["rows"]],
        title="Table 1: common DLRM preprocessing operations",
    )
