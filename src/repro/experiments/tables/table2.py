"""Table 2: dataset and model architecture details."""

from __future__ import annotations

from ...dlrm import kaggle_model, terabyte_model
from ..reporting import format_table

__all__ = ["run", "render"]


def run() -> dict:
    rows = []
    for label, model in (("Criteo Kaggle", kaggle_model()), ("Criteo Terabyte", terabyte_model())):
        rows.append(
            {
                "dataset": label,
                "total_hash_size": sum(t.hash_size for t in model.tables),
                "dimension": model.embedding_dim,
                "dense_arch": "-".join(str(w) for w in model.dense_arch.layers),
                "top_arch": "-".join(str(w) for w in model.top_arch_layers),
                "num_tables": model.num_tables,
            }
        )
    return {"rows": rows}


def render(results: dict) -> str:
    return format_table(
        ["dataset", "total hash size", "dim", "dense arch", "top arch"],
        [
            [r["dataset"], r["total_hash_size"], r["dimension"], r["dense_arch"], r["top_arch"]]
            for r in results["rows"]
        ],
        title="Table 2: dataset and model architecture",
    )
