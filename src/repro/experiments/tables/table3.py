"""Table 3: the DLRM input preprocessing plans."""

from __future__ import annotations

from ...preprocessing import PLAN_TABLE, build_plan
from ..reporting import format_table

__all__ = ["run", "render"]


def run(rows_per_plan: int = 128) -> dict:
    rows = []
    for plan_id, spec in PLAN_TABLE.items():
        graphs, schema = build_plan(plan_id, rows=rows_per_plan)
        rows.append(
            {
                "plan": plan_id,
                "dataset": spec.dataset,
                "num_dense": schema.num_dense,
                "num_sparse": schema.num_sparse,
                "ops_per_feature": graphs.total_ops / (schema.num_dense + schema.num_sparse),
                "total_ops": graphs.total_ops,
                "paper_total_ops": spec.total_ops,
            }
        )
    return {"rows": rows}


def render(results: dict) -> str:
    return format_table(
        ["plan", "dataset", "#dense", "#sparse", "op/feature", "total #op", "paper total"],
        [
            [r["plan"], r["dataset"], r["num_dense"], r["num_sparse"],
             r["ops_per_feature"], r["total_ops"], r["paper_total_ops"]]
            for r in results["rows"]
        ],
        title="Table 3: DLRM input preprocessing plans",
    )
