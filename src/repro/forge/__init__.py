"""``repro.forge`` -- adversarial scenario generation and robustness sweeps.

The planner is only as good as the workloads and fleets it is stressed
against. This package is the scenario-diversity engine (ROADMAP item 4):

- :mod:`repro.forge.scenario` -- the :class:`Scenario` schema: a workload
  spec, a (possibly heterogeneous) fleet, background fault rates, an
  explicit *correlated* fault schedule, per-op latency drift, and an
  arrival curve, all serializable to canonical JSON.
- :mod:`repro.forge.generator` -- :class:`ScenarioForge`, a seeded
  generator sampling randomized-but-audited scenarios across skew shifts,
  vocabulary growth, bursty/diurnal arrival, mixed A100/H100-class fleets,
  and correlated multi-GPU fault patterns.
- :mod:`repro.forge.audit` -- the admission audit every generated scenario
  must pass: feasibility, conservation, and bit-identical replayability
  from its seed.
- :mod:`repro.forge.sweep` -- the sweep harness executing planner+runtime
  across many seeds with crash isolation and per-scenario timeouts, and
  the ``BENCH_scenarios.json`` robustness scorecard with per-dimension
  pass/fail gates.
- :mod:`repro.forge.triage` -- shrinking a failing scenario to a minimal
  reproducer for regression pinning.
"""

from .audit import AuditFinding, AuditResult, audit_scenario
from .generator import ForgeConfig, ScenarioForge
from .scenario import (
    SCENARIO_FORMAT_VERSION,
    ArrivalCurve,
    Scenario,
    WorkloadSpec,
    scenario_digest,
)
from .sweep import (
    GATE_CRITERIA,
    ScenarioOutcome,
    SweepConfig,
    build_scorecard,
    run_scenario,
    sweep,
    write_scorecard,
)
from .triage import minimize_scenario

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "ArrivalCurve",
    "Scenario",
    "WorkloadSpec",
    "scenario_digest",
    "ForgeConfig",
    "ScenarioForge",
    "AuditFinding",
    "AuditResult",
    "audit_scenario",
    "GATE_CRITERIA",
    "ScenarioOutcome",
    "SweepConfig",
    "build_scorecard",
    "run_scenario",
    "sweep",
    "write_scorecard",
    "minimize_scenario",
]
