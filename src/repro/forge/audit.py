"""Admission audit: no scenario enters a sweep without passing it.

Random generation buys coverage but loses the guarantee that every run is
*meaningful* -- an infeasible scenario (a fleet that can't be built, a
fault scheduled past the end of the run, a drift target no op implements)
would burn a sweep slot producing noise, and a non-replayable one would
produce failures nobody can reproduce. The audit checks three invariant
families before a scenario is admitted:

- **Feasibility**: the fleet resolves against the profile registry, the
  workload builds into a valid heterogeneous
  :class:`~repro.dlrm.TrainingWorkload`, every scheduled fault names a
  known schedulable kind at an in-run iteration with a victim that exists,
  and every drift entry targets a registered op type inside the run.
- **Conservation**: arrival/drift scale steps are positive and their
  running product stays within bounds -- a scenario may breathe or spike
  the input scale but never run it away (which would make every downstream
  score meaningless).
- **Replayability**: the scenario round-trips through its serialized dict
  digest-identically, and (given the forge) re-generating from the seed
  reproduces the exact canonical JSON bytes.

Findings are structured (check family + detail) so a sweep's admission
report can say *why* seeds were rejected, not just how many.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim import resolve_profile
from ..preprocessing.ops import OP_REGISTRY
from ..runtime.faults import GPU_LOST, PLAN_DRIFT, FAULT_KINDS
from .scenario import SCHEDULABLE_FAULT_KINDS, Scenario, scenario_digest

__all__ = ["AuditFinding", "AuditResult", "audit_scenario"]

#: The running plan-drift scale product must stay inside these bounds at
#: every prefix of the schedule (spikes allowed, runaways rejected).
SCALE_FLOOR = 0.2
SCALE_CEILING = 5.0

#: No single background fault class may fire more often than this.
MAX_BACKGROUND_RATE = 0.5


@dataclass(frozen=True)
class AuditFinding:
    """One audit violation: which invariant family, and what broke."""

    check: str
    detail: str

    def to_dict(self) -> dict:
        return {"check": self.check, "detail": self.detail}


@dataclass
class AuditResult:
    """The audit verdict for one scenario."""

    scenario_name: str
    digest: str
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario_name,
            "digest": self.digest,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }


def _audit_feasibility(scenario: Scenario, findings: list[AuditFinding]) -> None:
    for handle in scenario.fleet:
        try:
            resolve_profile(handle)
        except ValueError as exc:
            findings.append(AuditFinding("feasibility", str(exc)))
            return  # an unresolvable fleet poisons everything downstream

    try:
        _, workload = scenario.build_workload()
    except Exception as exc:  # noqa: BLE001 - any build failure is a rejection
        findings.append(AuditFinding("feasibility", f"workload failed to build: {exc}"))
        return
    if workload.num_gpus != scenario.num_gpus:
        findings.append(
            AuditFinding("feasibility", "built workload disagrees with fleet size")
        )

    lost = 0
    for event in scenario.full_schedule():
        if event.kind not in FAULT_KINDS:
            findings.append(
                AuditFinding("feasibility", f"unknown scheduled fault kind {event.kind!r}")
            )
            continue
        if event.kind not in SCHEDULABLE_FAULT_KINDS:
            findings.append(
                AuditFinding(
                    "feasibility",
                    f"kind {event.kind!r} cannot be scheduled (kernel names are "
                    "only known after planning); use a rate-drawn FaultSpec",
                )
            )
        if not 0 <= event.iteration < scenario.iterations:
            findings.append(
                AuditFinding(
                    "feasibility",
                    f"scheduled {event.kind} at iteration {event.iteration} is "
                    f"outside the {scenario.iterations}-iteration run",
                )
            )
        if event.kind == GPU_LOST:
            # Victims are post-compaction indices: after `lost` earlier
            # losses the live fleet has num_gpus - lost devices.
            live = scenario.num_gpus - lost
            if not 0 <= event.gpu < live:
                findings.append(
                    AuditFinding(
                        "feasibility",
                        f"gpu_lost victim {event.gpu} does not exist in the "
                        f"{live}-GPU fleet live at iteration {event.iteration}",
                    )
                )
            lost += 1
    if lost >= scenario.num_gpus:
        findings.append(
            AuditFinding(
                "feasibility",
                f"schedule kills all {scenario.num_gpus} GPUs; at least one "
                "survivor is required for a GPU run",
            )
        )

    for drift in scenario.drift_schedule:
        if drift.op_type not in OP_REGISTRY:
            findings.append(
                AuditFinding(
                    "feasibility",
                    f"drift targets unknown op type {drift.op_type!r}; known: "
                    f"{sorted(OP_REGISTRY)}",
                )
            )
        if drift.start_iteration >= scenario.iterations:
            findings.append(
                AuditFinding(
                    "feasibility",
                    f"drift on {drift.op_type} starts at iteration "
                    f"{drift.start_iteration}, after the run ends",
                )
            )


def _audit_conservation(scenario: Scenario, findings: list[AuditFinding]) -> None:
    scale = 1.0
    for event in scenario.full_schedule():
        if event.kind != PLAN_DRIFT:
            continue
        if event.magnitude <= 0:
            findings.append(
                AuditFinding(
                    "conservation",
                    f"non-positive drift step {event.magnitude} at iteration "
                    f"{event.iteration}",
                )
            )
            return
        scale *= event.magnitude
        if not SCALE_FLOOR <= scale <= SCALE_CEILING:
            findings.append(
                AuditFinding(
                    "conservation",
                    f"cumulative input scale {scale:.3f} at iteration "
                    f"{event.iteration} escapes [{SCALE_FLOOR}, {SCALE_CEILING}]",
                )
            )
            return

    for spec in scenario.fault_specs:
        if spec.rate > MAX_BACKGROUND_RATE:
            findings.append(
                AuditFinding(
                    "conservation",
                    f"background {spec.kind} rate {spec.rate} exceeds "
                    f"{MAX_BACKGROUND_RATE}; the run would measure noise, not recovery",
                )
            )


def _audit_replayability(
    scenario: Scenario, findings: list[AuditFinding], forge=None
) -> None:
    round_tripped = Scenario.from_dict(scenario.to_dict())
    if scenario_digest(round_tripped) != scenario_digest(scenario):
        findings.append(
            AuditFinding("replayability", "to_dict/from_dict round trip changed the digest")
        )
    if forge is not None:
        regenerated = forge.generate(scenario.seed)
        if regenerated.canonical_json() != scenario.canonical_json():
            findings.append(
                AuditFinding(
                    "replayability",
                    f"re-generating seed {scenario.seed} produced different "
                    "canonical bytes; the generator is not pure in the seed",
                )
            )


def audit_scenario(scenario: Scenario, forge=None) -> AuditResult:
    """Run the full admission audit; pass the forge to check seed replay."""
    result = AuditResult(scenario_name=scenario.name, digest=scenario_digest(scenario))
    _audit_feasibility(scenario, result.findings)
    _audit_conservation(scenario, result.findings)
    _audit_replayability(scenario, result.findings, forge=forge)
    return result
