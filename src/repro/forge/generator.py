"""``ScenarioForge``: seeded sampling of adversarial scenarios.

One integer seed deterministically expands into one :class:`Scenario`
covering a sampled point in the robustness space:

- **workload**: a random-but-valid preprocessing plan (dense/sparse/ngram
  mix, chain depths, batch size);
- **fleet**: 2-4 GPUs, heterogeneous (mixed A100/H100/V100 profiles)
  about half the time;
- **input drift**: categorical-skew shifts (a sparse op type's latency
  inflating mid-run) and vocabulary growth (hash/map ops creeping up for
  the rest of the run), targeted at op types actually present in the
  sampled plan;
- **arrival**: steady, diurnal, or bursty curves compiled to plan-drift
  steps;
- **background faults**: independent per-iteration rates over the full
  fault taxonomy;
- **correlated faults**: one pre-drawn pattern per scenario at most --
  a same-host ``gpu_lost`` pair, a cascading CPU-pool crash, or a
  plan-drift storm;
- **retry pressure**: jittered backoff and a per-epoch retry budget, the
  knobs that make fault storms exhaust the ladder deterministically.

Determinism contract: ``generate(seed)`` is a pure function of
``(config, seed)``. The RNG is string-seeded (``rap-forge:<seed>``) so the
stream survives hash randomization, and every admitted scenario's audit
re-generates from the seed and asserts canonical-JSON equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..runtime.faults import (
    CPU_POOL_CRASH,
    FUSED_OOM,
    GPU_LOST,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultSpec,
)
from ..telemetry import LatencyDrift
from .scenario import ArrivalCurve, Scenario, WorkloadSpec

__all__ = ["ForgeConfig", "ScenarioForge"]

#: Op types whose latency plausibly shifts with categorical skew (heavier
#: key distributions make hashing/dedup work harder).
SKEW_SHIFT_OPS = ("SigridHash", "MapId", "Ngram", "Bucketize")

#: Op types whose latency plausibly creeps with vocabulary growth.
VOCAB_GROWTH_OPS = ("SigridHash", "MapId")


@dataclass(frozen=True)
class ForgeConfig:
    """Sampling bounds of the forge (all ranges inclusive)."""

    min_gpus: int = 2
    max_gpus: int = 4
    min_iterations: int = 10
    max_iterations: int = 16
    hetero_probability: float = 0.5
    drift_probability: float = 0.6
    correlated_probability: float = 0.6
    profiles: tuple[str, ...] = ("a100", "h100", "v100")
    batches: tuple[int, ...] = (256, 512, 1024)
    max_fault_rate: float = 0.35

    def __post_init__(self) -> None:
        if not 1 <= self.min_gpus <= self.max_gpus:
            raise ValueError("need 1 <= min_gpus <= max_gpus")
        if not 4 <= self.min_iterations <= self.max_iterations:
            raise ValueError("need 4 <= min_iterations <= max_iterations")
        if not self.profiles or not self.batches:
            raise ValueError("profiles and batches must be non-empty")


class ScenarioForge:
    """Deterministic scenario sampler over :class:`ForgeConfig` bounds."""

    def __init__(self, config: ForgeConfig | None = None) -> None:
        self.config = config or ForgeConfig()

    # ------------------------------------------------------------------

    def generate(self, seed: int) -> Scenario:
        """Expand one seed into one scenario (pure in ``(config, seed)``)."""
        cfg = self.config
        rng = random.Random(f"rap-forge:{seed}")
        tags: list[str] = []

        workload = self._sample_workload(rng, seed)
        fleet = self._sample_fleet(rng, tags)
        iterations = rng.randint(cfg.min_iterations, cfg.max_iterations)

        drift_schedule = self._sample_drift(rng, workload, iterations, tags)
        arrival = self._sample_arrival(rng, iterations, tags)
        fault_specs = self._sample_fault_specs(rng, tags)
        fault_schedule = self._sample_correlated(rng, len(fleet), iterations, tags)

        retry_jitter = 0.0
        retry_budget = 0
        if rng.random() < 0.5:
            retry_jitter = round(rng.uniform(0.1, 0.5), 3)
            tags.append("retry-jitter")
        if rng.random() < 0.4:
            retry_budget = rng.randint(2, 6)
            tags.append("retry-budget")

        return Scenario(
            name=f"forge-{seed:05d}",
            seed=seed,
            workload=workload,
            fleet=fleet,
            iterations=iterations,
            fault_specs=fault_specs,
            fault_schedule=fault_schedule,
            drift_schedule=drift_schedule,
            arrival=arrival,
            retry_jitter=retry_jitter,
            retry_budget=retry_budget,
            tags=tuple(sorted(set(tags))),
        )

    # ------------------------------------------------------------------
    # Dimension samplers
    # ------------------------------------------------------------------

    def _sample_workload(self, rng: random.Random, seed: int) -> WorkloadSpec:
        min_chain = rng.randint(2, 3)
        return WorkloadSpec(
            plan_seed=rng.randint(0, 2**31 - 1),
            num_dense=rng.randint(2, 4),
            num_sparse=rng.randint(3, 6),
            min_chain=min_chain,
            max_chain=rng.randint(min_chain, 4),
            num_ngram_graphs=rng.randint(0, 2),
            ngram_width=2,
            batch=rng.choice(self.config.batches),
        )

    def _sample_fleet(self, rng: random.Random, tags: list[str]) -> tuple[str, ...]:
        cfg = self.config
        n = rng.randint(cfg.min_gpus, cfg.max_gpus)
        if rng.random() < cfg.hetero_probability and len(cfg.profiles) > 1:
            fleet = tuple(rng.choice(cfg.profiles) for _ in range(n))
            if len(set(fleet)) == 1:
                # Force at least one odd device in, otherwise the "hetero"
                # draw silently degenerates to a uniform fleet.
                other = rng.choice([p for p in cfg.profiles if p != fleet[0]])
                fleet = (other,) + fleet[1:]
            tags.append("hetero-fleet")
            return fleet
        return (cfg.profiles[0],) * n

    def _sample_drift(
        self,
        rng: random.Random,
        workload: WorkloadSpec,
        iterations: int,
        tags: list[str],
    ) -> tuple[LatencyDrift, ...]:
        if rng.random() >= self.config.drift_probability:
            return ()
        graphs, _ = workload.build()
        present = sorted({op.op_name for graph in graphs for op in graph.ops})
        drifts: list[LatencyDrift] = []

        skew_targets = [op for op in SKEW_SHIFT_OPS if op in present]
        if skew_targets and rng.random() < 0.7:
            start = rng.randint(2, max(2, iterations // 2))
            end = min(iterations, start + rng.randint(3, 6))
            drifts.append(
                LatencyDrift(
                    op_type=rng.choice(skew_targets),
                    factor=round(rng.uniform(1.4, 2.2), 3),
                    start_iteration=start,
                    end_iteration=end,
                )
            )
            tags.append("skew-shift")

        growth_targets = [op for op in VOCAB_GROWTH_OPS if op in present]
        if growth_targets and rng.random() < 0.5:
            drifts.append(
                LatencyDrift(
                    op_type=rng.choice(growth_targets),
                    factor=round(rng.uniform(1.2, 1.8), 3),
                    start_iteration=rng.randint(1, max(1, iterations // 3)),
                    end_iteration=None,
                )
            )
            tags.append("vocab-growth")
        return tuple(drifts)

    def _sample_arrival(
        self, rng: random.Random, iterations: int, tags: list[str]
    ) -> ArrivalCurve:
        roll = rng.random()
        if roll < 0.4:
            return ArrivalCurve()
        if roll < 0.7:
            tags.append("diurnal-arrival")
            return ArrivalCurve(
                shape="diurnal",
                amplitude=round(rng.uniform(0.2, 0.5), 3),
                period=rng.randint(4, 8),
            )
        tags.append("bursty-arrival")
        return ArrivalCurve(
            shape="bursty",
            amplitude=round(rng.uniform(0.4, 0.9), 3),
            burst_at=rng.randint(1, max(1, iterations - 4)),
            burst_length=rng.randint(2, 3),
        )

    def _sample_fault_specs(
        self, rng: random.Random, tags: list[str]
    ) -> tuple[FaultSpec, ...]:
        cap = self.config.max_fault_rate
        specs: list[FaultSpec] = []
        if rng.random() < 0.7:
            specs.append(
                FaultSpec(
                    kind=KERNEL_FAILURE,
                    rate=round(rng.uniform(0.05, cap), 3),
                    persistence=round(rng.uniform(0.0, 0.2), 3),
                )
            )
        if rng.random() < 0.4:
            specs.append(
                FaultSpec(
                    kind=LATENCY_OVERRUN,
                    rate=round(rng.uniform(0.05, cap), 3),
                    magnitude=round(rng.uniform(1.3, 2.5), 3),
                )
            )
        if rng.random() < 0.25:
            specs.append(FaultSpec(kind=FUSED_OOM, rate=round(rng.uniform(0.03, 0.15), 3)))
        if specs:
            tags.append("background-faults")
        return tuple(specs)

    def _sample_correlated(
        self,
        rng: random.Random,
        num_gpus: int,
        iterations: int,
        tags: list[str],
    ) -> tuple[FaultEvent, ...]:
        if rng.random() >= self.config.correlated_probability:
            return ()
        patterns = ["pool-cascade", "drift-storm"]
        # A same-iteration pair loss needs a third survivor to stay a GPU run.
        if num_gpus >= 3:
            patterns.append("gpu-pair-loss")
        pattern = rng.choice(patterns)
        tags.append(pattern)
        at = rng.randint(2, max(2, iterations - 3))

        if pattern == "gpu-pair-loss":
            # Both victims share an (imaginary) host and die in the same
            # iteration. Events are delivered in order, and the first loss
            # compacts GPU indices, so the second victim is named by its
            # *post-compaction* index: original pair (a, b) with a < b is
            # scheduled as gpu=a then gpu=b-1.
            a, b = sorted(rng.sample(range(num_gpus), 2))
            return (
                FaultEvent(kind=GPU_LOST, iteration=at, gpu=a, recover_after=-1),
                FaultEvent(kind=GPU_LOST, iteration=at, gpu=b - 1, recover_after=-1),
            )
        if pattern == "pool-cascade":
            # The host pool crashes on consecutive iterations with rising
            # restart cost -- a flapping supervisor, not independent noise.
            return tuple(
                FaultEvent(
                    kind=CPU_POOL_CRASH,
                    iteration=min(at + k, iterations - 1),
                    magnitude=round(1.5 + 0.5 * k, 3),
                    recover_after=1,
                )
                for k in range(3)
            )
        # drift-storm: two sharp scale steps up, then the exact release, so
        # the storm is a spike with unit net scale (conservation-auditable).
        up1 = round(rng.uniform(1.3, 1.6), 3)
        up2 = round(rng.uniform(1.2, 1.5), 3)
        release = 1.0 / (up1 * up2)
        return (
            FaultEvent(kind=PLAN_DRIFT, iteration=at, magnitude=up1, recover_after=0),
            FaultEvent(
                kind=PLAN_DRIFT,
                iteration=min(at + 1, iterations - 1),
                magnitude=up2,
                recover_after=0,
            ),
            FaultEvent(
                kind=PLAN_DRIFT,
                iteration=min(at + 2, iterations - 1),
                magnitude=release,
                recover_after=0,
            ),
        )
