"""The :class:`Scenario` schema: one complete robustness experiment.

A scenario bundles everything a planner+runtime run consumes into a single
serializable value: the workload (a :class:`~repro.preprocessing.random_plans.RandomPlanConfig`
sample plus batch size), the fleet (a tuple of GPU profile handles, mixed
profiles allowed), the run length, background fault rates, an explicit
*correlated* fault schedule, a per-op-type latency-drift schedule, an
arrival curve compiled into plan-drift steps, and the retry-policy knobs.

Two properties make scenarios auditable and pinnable:

- **Canonical serialization**: :meth:`Scenario.canonical_json` emits
  sorted-key, fixed-separator JSON, and :func:`scenario_digest` hashes it.
  "Replays bit-identically from seed" means the generator reproduces the
  exact canonical bytes.
- **Closed vocabulary**: fleets name profiles from
  :data:`repro.gpusim.GPU_PROFILES`, scheduled faults name kinds from
  :data:`repro.runtime.faults.FAULT_KINDS` (append-only), and drift targets
  name op types from :data:`repro.preprocessing.ops.OP_REGISTRY`, so a
  serialized scenario from an older build still validates.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

from ..dlrm import TrainingWorkload, model_for_plan
from ..gpusim import GpuSpec, resolve_profile
from ..preprocessing.graph import GraphSet
from ..preprocessing.random_plans import RandomPlanConfig, generate_random_plan
from ..runtime.faults import (
    CPU_POOL_CRASH,
    GPU_LOST,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from ..runtime.retry import RetryPolicy
from ..telemetry import LatencyDrift

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "SCHEDULABLE_FAULT_KINDS",
    "ARRIVAL_SHAPES",
    "ArrivalCurve",
    "WorkloadSpec",
    "Scenario",
    "scenario_digest",
]

#: Bumped whenever the serialized scenario schema changes shape. Old
#: reproducer files carry their version so a mismatch is an explicit error
#: rather than a silent misparse.
SCENARIO_FORMAT_VERSION = 1

#: Fault kinds a scenario may *schedule* explicitly. Kernel-targeted kinds
#: (kernel_failure, latency_overrun, fused_oom) are excluded: a scheduled
#: event binds a kernel by name, and the generator cannot know kernel names
#: before the plan is searched -- those kinds arrive via rate-drawn specs,
#: which bind against the live plan's placement sites.
SCHEDULABLE_FAULT_KINDS = (CPU_POOL_CRASH, PLAN_DRIFT, GPU_LOST)

ARRIVAL_SHAPES = ("steady", "diurnal", "bursty")


@dataclass(frozen=True)
class ArrivalCurve:
    """A deterministic input-arrival intensity curve over the run.

    The runtime has no notion of arrival rate; what it *does* model is
    plan drift -- the live distribution rescaling relative to the planned
    one. An arrival curve therefore compiles to a sequence of
    ``plan_drift`` step events whose magnitudes are the iteration-to-
    iteration intensity ratios: a diurnal curve breathes the scale up and
    down, a burst spikes it and releases it. Intensity ratios telescope,
    so the cumulative scale at iteration *i* is exactly
    ``intensity(i) / intensity(0)`` -- the conservation property the audit
    checks.

    ``amplitude`` is the peak deviation from 1.0 (must stay below 1 so
    intensity is always positive); ``period`` is the diurnal wavelength in
    iterations; ``burst_at``/``burst_length`` place the bursty window.
    """

    shape: str = "steady"
    amplitude: float = 0.0
    period: int = 8
    burst_at: int = 0
    burst_length: int = 2

    def __post_init__(self) -> None:
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(f"shape must be one of {ARRIVAL_SHAPES}, got {self.shape!r}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period < 2:
            raise ValueError("period must be >= 2 iterations")
        if self.burst_at < 0 or self.burst_length < 1:
            raise ValueError("burst window must be non-negative and non-empty")

    def intensity(self, iteration: int) -> float:
        """Relative arrival intensity at one iteration (1.0 = planned)."""
        if self.shape == "steady" or self.amplitude == 0.0:
            return 1.0
        if self.shape == "diurnal":
            return 1.0 + self.amplitude * math.sin(2.0 * math.pi * iteration / self.period)
        if self.burst_at <= iteration < self.burst_at + self.burst_length:
            return 1.0 + self.amplitude
        return 1.0

    def delay_schedule(self, num_batches: int, base_delay_s: float) -> tuple[float, ...]:
        """Lower the curve to per-batch arrival delays for a real source.

        Intensity is a *rate*, so the gap in front of batch ``i`` is
        ``base_delay_s / intensity(i)``: a burst packs batches together, a
        diurnal trough spreads them out. Feed the result to
        :class:`repro.ingest.sources.PacedSource` to drive an actual
        ingest stream with the same curve the drift compiler uses, instead
        of only rescaling synthetic plan ratios.
        """
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        return tuple(base_delay_s / self.intensity(i) for i in range(num_batches))

    def compile(self, iterations: int) -> tuple[FaultEvent, ...]:
        """Lower the curve to scheduled ``plan_drift`` step events."""
        events: list[FaultEvent] = []
        for i in range(1, iterations):
            ratio = self.intensity(i) / self.intensity(i - 1)
            if abs(ratio - 1.0) <= 1e-12:
                continue
            events.append(
                FaultEvent(kind=PLAN_DRIFT, iteration=i, magnitude=ratio, recover_after=0)
            )
        return tuple(events)

    def to_dict(self) -> dict:
        return {
            "shape": self.shape,
            "amplitude": self.amplitude,
            "period": self.period,
            "burst_at": self.burst_at,
            "burst_length": self.burst_length,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalCurve":
        return cls(
            shape=data.get("shape", "steady"),
            amplitude=float(data.get("amplitude", 0.0)),
            period=int(data.get("period", 8)),
            burst_at=int(data.get("burst_at", 0)),
            burst_length=int(data.get("burst_length", 2)),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded random-workload sample plus its batch size.

    Thin, serializable wrapper over
    :class:`~repro.preprocessing.random_plans.RandomPlanConfig`: the same
    ``plan_seed`` always rebuilds the same graphs, which is what lets a
    scenario ship as a few integers instead of a graph dump.
    """

    plan_seed: int = 0
    num_dense: int = 3
    num_sparse: int = 4
    min_chain: int = 2
    max_chain: int = 4
    num_ngram_graphs: int = 1
    ngram_width: int = 2
    batch: int = 512

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError("batch must be positive")
        self.to_random_config()  # delegate knob validation

    def to_random_config(self) -> RandomPlanConfig:
        return RandomPlanConfig(
            num_dense=self.num_dense,
            num_sparse=self.num_sparse,
            min_chain=self.min_chain,
            max_chain=self.max_chain,
            num_ngram_graphs=self.num_ngram_graphs,
            ngram_width=self.ngram_width,
            seed=self.plan_seed,
        )

    def build(self) -> tuple[GraphSet, object]:
        """Materialize (graph set, schema) for this spec."""
        return generate_random_plan(self.to_random_config(), rows=self.batch)

    def to_dict(self) -> dict:
        return {
            "plan_seed": self.plan_seed,
            "num_dense": self.num_dense,
            "num_sparse": self.num_sparse,
            "min_chain": self.min_chain,
            "max_chain": self.max_chain,
            "num_ngram_graphs": self.num_ngram_graphs,
            "ngram_width": self.ngram_width,
            "batch": self.batch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass(frozen=True)
class Scenario:
    """One complete, serializable robustness experiment.

    ``fleet`` is a tuple of profile handles (keys of
    :data:`repro.gpusim.GPU_PROFILES`); mixed handles make the run
    heterogeneous end to end (per-GPU stage profiles, slowest-link
    interconnect, fingerprints, checkpoint fleet echo).
    ``fault_schedule`` holds the correlated events the forge pre-draws --
    same-host ``gpu_lost`` pairs, cascading pool crashes, drift storms --
    expressed against *current* GPU indices at delivery time (the second
    victim of a same-iteration pair is named post-compaction).
    """

    name: str
    seed: int
    workload: WorkloadSpec
    fleet: tuple[str, ...]
    iterations: int
    fault_specs: tuple[FaultSpec, ...] = ()
    fault_schedule: tuple[FaultEvent, ...] = ()
    drift_schedule: tuple[LatencyDrift, ...] = ()
    arrival: ArrivalCurve = field(default_factory=ArrivalCurve)
    retry_jitter: float = 0.0
    retry_budget: int = 0
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "fleet", tuple(self.fleet))
        object.__setattr__(self, "fault_specs", tuple(self.fault_specs))
        object.__setattr__(self, "fault_schedule", tuple(self.fault_schedule))
        object.__setattr__(self, "drift_schedule", tuple(self.drift_schedule))
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.fleet:
            raise ValueError("a scenario needs at least one GPU")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return len(self.fleet)

    @property
    def heterogeneous(self) -> bool:
        return len(set(self.fleet)) > 1

    def resolve_fleet(self) -> tuple[GpuSpec, ...]:
        return tuple(resolve_profile(handle) for handle in self.fleet)

    def full_schedule(self) -> tuple[FaultEvent, ...]:
        """Correlated events plus the compiled arrival curve, by iteration.

        The sort is stable, so same-iteration correlated events keep their
        authored order (which encodes post-compaction GPU indices).
        """
        merged = list(self.fault_schedule) + list(self.arrival.compile(self.iterations))
        merged.sort(key=lambda e: e.iteration)
        return tuple(merged)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def build_workload(self) -> tuple[GraphSet, TrainingWorkload]:
        graphs, schema = self.workload.build()
        specs = self.resolve_fleet()
        workload = TrainingWorkload(
            model_for_plan(graphs, schema),
            num_gpus=self.num_gpus,
            local_batch=self.workload.batch,
            spec=specs[0],
            specs=specs,
        )
        return graphs, workload

    def build_injector(self) -> FaultInjector:
        return FaultInjector(
            specs=self.fault_specs, seed=self.seed, schedule=self.full_schedule()
        )

    def build_retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            jitter_fraction=self.retry_jitter,
            retry_budget_per_epoch=self.retry_budget,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "workload": self.workload.to_dict(),
            "fleet": list(self.fleet),
            "iterations": self.iterations,
            "fault_specs": [
                {
                    "kind": s.kind,
                    "rate": s.rate,
                    "magnitude": s.magnitude,
                    "persistence": s.persistence,
                }
                for s in self.fault_specs
            ],
            "fault_schedule": [e.to_dict() for e in self.fault_schedule],
            "drift_schedule": [d.to_dict() for d in self.drift_schedule],
            "arrival": self.arrival.to_dict(),
            "retry_jitter": self.retry_jitter,
            "retry_budget": self.retry_budget,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        version = int(data.get("format_version", SCENARIO_FORMAT_VERSION))
        if version > SCENARIO_FORMAT_VERSION:
            raise ValueError(
                f"scenario format_version {version} is newer than this build "
                f"understands ({SCENARIO_FORMAT_VERSION})"
            )
        return cls(
            name=data["name"],
            seed=int(data["seed"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            fleet=tuple(data["fleet"]),
            iterations=int(data["iterations"]),
            fault_specs=tuple(FaultSpec(**s) for s in data.get("fault_specs", [])),
            fault_schedule=tuple(
                FaultEvent.from_dict(e) for e in data.get("fault_schedule", [])
            ),
            drift_schedule=tuple(
                LatencyDrift.from_dict(d) for d in data.get("drift_schedule", [])
            ),
            arrival=ArrivalCurve.from_dict(data.get("arrival", {})),
            retry_jitter=float(data.get("retry_jitter", 0.0)),
            retry_budget=int(data.get("retry_budget", 0)),
            tags=tuple(data.get("tags", [])),
        )

    def canonical_json(self) -> str:
        """Sorted-key, fixed-separator JSON -- the replayability currency."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with fields replaced (triage's shrinking primitive)."""
        return replace(self, **changes)


def scenario_digest(scenario: Scenario) -> str:
    """Content address of a scenario (SHA-256 of its canonical JSON)."""
    return hashlib.sha256(scenario.canonical_json().encode()).hexdigest()
