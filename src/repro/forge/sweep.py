"""The sweep harness and the ``BENCH_scenarios.json`` scorecard.

A sweep expands a range of seeds through the forge, audits each scenario,
and executes every admitted one through the full planner+runtime stack --
in a child process per scenario (a planner crash or hang takes down one
seed, never the sweep) with a per-scenario timeout. Each run is scored on
five dimensions:

- **plan quality**: the RAP mapping's predicted exposed latency against an
  empirical oracle (the best of every mapping strategy on the same
  workload);
- **recovery**: how much wall time the run burned recovering, and the
  longest consecutive degraded streak;
- **ladder depth**: the deepest degradation rung any fault reached;
- **calibration**: whether telemetry's online recalibration actually
  reduced prediction error on drifting scenarios;
- **resume integrity**: for a rotating subset, a kill+restore mid-run must
  reproduce the uninterrupted run bit-identically.

:func:`build_scorecard` aggregates outcomes into per-dimension pass/fail
gates (:data:`GATE_CRITERIA`) and :func:`write_scorecard` lands the result
atomically as ``BENCH_scenarios.json``. Failing scenarios can be shrunk to
minimal reproducers via :mod:`repro.forge.triage`.
"""

from __future__ import annotations

import json
import multiprocessing
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from ..core import RapPlanner
from ..ioutil import atomic_write_json
from ..runtime import (
    CPU_FALLBACK,
    LADDER,
    CheckpointManager,
    FaultTolerantRuntime,
    ResilienceReport,
    SimulatedKill,
)
from ..telemetry import TelemetrySession
from .audit import audit_scenario
from .generator import ForgeConfig, ScenarioForge
from .scenario import Scenario, scenario_digest

__all__ = [
    "GATE_CRITERIA",
    "ScenarioOutcome",
    "SweepConfig",
    "run_scenario",
    "sweep",
    "build_scorecard",
    "write_scorecard",
]

SCORECARD_FORMAT_VERSION = 1

#: Depth of each degradation rung (index in the ladder).
LADDER_DEPTH = {rung: depth for depth, rung in enumerate(LADDER)}

#: The published robustness gates. Values are calibrated against sweeps of
#: the current stack: tightening one is a deliberate robustness claim,
#: loosening one is a regression that must be argued in review.
GATE_CRITERIA: dict[str, dict] = {
    "completion": {
        "description": "fraction of admitted scenarios that ran to the last iteration",
        "op": ">=",
        "threshold": 0.9,
    },
    "plan_quality": {
        "description": "p95 of predicted exposed latency vs best-strategy oracle",
        "op": "<=",
        "threshold": 1.5,
    },
    "recovery": {
        # Median, not p95: the forge *deliberately* emits storm scenarios
        # (pair loss + drift under retry jitter) whose recovery fraction
        # legitimately approaches 1.0, so the tail measures the generator,
        # not the runtime. The median says the typical adversarial scenario
        # recovers cheaply; the storms are guarded by completion and the
        # pinned worst-case reproducers in tests/forge/test_reproducers.py.
        "description": "median fraction of run wall time spent in recovery",
        "op": "<=",
        "threshold": 0.5,
    },
    "ladder_depth": {
        "description": "fraction of runs that fell all the way to cpu_fallback",
        "op": "<=",
        "threshold": 0.5,
    },
    "calibration": {
        "description": "fraction of drifting runs where recalibration reduced MAPE",
        "op": ">=",
        "threshold": 0.6,
    },
    "resume_integrity": {
        "description": "fraction of checked kill+resume runs replaying bit-identically",
        "op": ">=",
        "threshold": 1.0,
    },
}

#: Mapping strategies the empirical oracle searches over.
ORACLE_STRATEGIES = ("rap", "data_parallel", "data_locality")


@dataclass
class SweepConfig:
    """Knobs of one sweep invocation."""

    seeds: int = 100
    start_seed: int = 0
    iterations: int | None = None
    timeout_s: float = 300.0
    jobs: int = 0
    resume_check_every: int = 3
    triage_dir: Path | None = None
    forge: ForgeConfig = field(default_factory=ForgeConfig)

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = run inline)")
        if self.resume_check_every < 1:
            raise ValueError("resume_check_every must be >= 1")


@dataclass
class ScenarioOutcome:
    """One admitted scenario's scored run (JSON-ready via ``row``)."""

    row: dict

    @property
    def ok(self) -> bool:
        return self.row.get("status") == "ok"


# ----------------------------------------------------------------------
# Executing one scenario
# ----------------------------------------------------------------------


def _make_planner(workload, strategy: str = "rap") -> RapPlanner:
    # Child processes must never nest process pools: parallel search off.
    return RapPlanner(workload, mapping_strategy=strategy, parallel_search=False)


def _longest_degraded_streak(report: ResilienceReport) -> int:
    longest = current = 0
    for record in report.iterations:
        current = current + 1 if record.degraded else 0
        longest = max(longest, current)
    return longest


def _resume_replays_identically(scenario: Scenario) -> bool:
    """Kill mid-run, restore from the latest checkpoint, compare reports."""
    graphs, workload = scenario.build_workload()
    uninterrupted = FaultTolerantRuntime(
        _make_planner(workload),
        graphs,
        injector=scenario.build_injector(),
        retry_policy=scenario.build_retry_policy(),
        telemetry=TelemetrySession(),
        drift_schedule=scenario.drift_schedule,
    ).run(scenario.iterations)

    checkpoint_every = 3
    kill_after = min(scenario.iterations - 1, checkpoint_every + 2)
    with tempfile.TemporaryDirectory(prefix="forge-resume-") as tmp:
        manager = CheckpointManager(Path(tmp) / "ckpt")
        runtime = FaultTolerantRuntime(
            _make_planner(workload),
            graphs,
            injector=scenario.build_injector(),
            retry_policy=scenario.build_retry_policy(),
            telemetry=TelemetrySession(),
            drift_schedule=scenario.drift_schedule,
        )
        try:
            runtime.run(
                scenario.iterations,
                checkpoints=manager,
                checkpoint_every=checkpoint_every,
                kill_after=kill_after,
            )
        except SimulatedKill:
            pass
        snapshot = manager.latest()
        if snapshot is None:
            return False
        restored, report, next_iteration = FaultTolerantRuntime.restore(
            snapshot,
            graphs,
            workload,
            make_planner=_make_planner,
            injector=scenario.build_injector(),
            retry_policy=scenario.build_retry_policy(),
            telemetry=TelemetrySession(),
            drift_schedule=scenario.drift_schedule,
        )
        resumed = restored.run(
            scenario.iterations - next_iteration,
            start_iteration=next_iteration,
            report=report,
        )
    return resumed.to_dict() == uninterrupted.to_dict()


def run_scenario(scenario: Scenario, check_resume: bool = False) -> dict:
    """Execute one scenario end to end and score it.

    Returns a JSON-serializable row; raises nothing for in-scenario
    failures (the caller's isolation handles crashes of this function
    itself).
    """
    graphs, workload = scenario.build_workload()

    # Empirical oracle: the best predicted exposure any mapping strategy
    # achieves on this exact workload. The RAP strategy is in the pool, so
    # the quality ratio is >= 1 by construction and 1.0 means "as good as
    # the best strategy we know".
    exposures: dict[str, float] = {}
    for strategy in ORACLE_STRATEGIES:
        planner = _make_planner(workload, strategy)
        exposures[strategy] = planner.plan_and_evaluate(graphs).plan.predicted_exposed_us
    rap_exposed = exposures["rap"]
    oracle_exposed = min(exposures.values())
    ratio = (rap_exposed + 1.0) / (oracle_exposed + 1.0)

    telemetry = TelemetrySession()
    runtime = FaultTolerantRuntime(
        _make_planner(workload),
        graphs,
        injector=scenario.build_injector(),
        retry_policy=scenario.build_retry_policy(),
        telemetry=telemetry,
        drift_schedule=scenario.drift_schedule,
    )
    report = runtime.run(scenario.iterations)

    total_iteration_us = sum(r.iteration_us for r in report.iterations)
    total_recovery_us = report.total_recovery_us + report.backoff_total_us
    max_depth = max(
        (LADDER_DEPTH[t.to_rung] for t in report.transitions), default=0
    )

    drifting = bool(scenario.drift_schedule)
    row = {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "digest": scenario_digest(scenario),
        "status": "ok",
        "tags": list(scenario.tags),
        "fleet": list(scenario.fleet),
        "heterogeneous": scenario.heterogeneous,
        "iterations": scenario.iterations,
        "completed": report.num_iterations == scenario.iterations,
        "faults": report.num_faults,
        "replans": report.replans,
        "membership_changes": len(report.membership_changes),
        "plan_quality": {
            "rap_exposed_us": round(float(rap_exposed), 3),
            "oracle_exposed_us": round(float(oracle_exposed), 3),
            "oracle_strategy": min(exposures, key=exposures.get),
            "ratio": round(float(ratio), 6),
        },
        "recovery": {
            "total_us": round(float(total_recovery_us), 3),
            "fraction": round(
                float(total_recovery_us / total_iteration_us) if total_iteration_us else 0.0,
                6,
            ),
            "longest_degraded_streak": _longest_degraded_streak(report),
        },
        "ladder": {
            "max_depth": max_depth,
            "deepest_rung": LADDER[max_depth],
            "rungs": report.rungs_reached(),
        },
        "calibration": {
            "drifting": drifting,
            "drift_events": len(telemetry.drift_events),
            # float()/bool() strip numpy scalar types, which json refuses.
            "mape_raw": round(float(telemetry.predictor_mape), 6),
            "mape_calibrated": round(float(telemetry.calibrated_mape), 6),
            "improved": bool(
                telemetry.calibrated_mape <= telemetry.predictor_mape + 1e-9
            ),
        },
        "resume": {"checked": False, "identical": None},
    }
    if check_resume and scenario.iterations >= 6:
        row["resume"] = {
            "checked": True,
            "identical": _resume_replays_identically(scenario),
        }
    return row


def _failure_row(scenario: Scenario, status: str, error: str) -> dict:
    return {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "digest": scenario_digest(scenario),
        "status": status,
        "error": error,
        "tags": list(scenario.tags),
        "fleet": list(scenario.fleet),
        "heterogeneous": scenario.heterogeneous,
        "iterations": scenario.iterations,
        "completed": False,
    }


# ----------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------


def _child_entry(scenario_json: str, check_resume: bool, result_path: str) -> None:
    """Child-process entry point: run one scenario, land the row on disk."""
    scenario = Scenario.from_dict(json.loads(scenario_json))
    try:
        row = run_scenario(scenario, check_resume=check_resume)
    except Exception:  # noqa: BLE001 - the row *is* the error report
        row = _failure_row(scenario, "error", traceback.format_exc(limit=10))
    atomic_write_json(result_path, row, indent=None)


def _run_isolated(
    scenario: Scenario, check_resume: bool, timeout_s: float, workdir: Path
) -> dict:
    """Run one scenario in its own process with a hard timeout."""
    result_path = workdir / f"{scenario.name}.row.json"
    process = multiprocessing.Process(
        target=_child_entry,
        args=(json.dumps(scenario.to_dict()), check_resume, str(result_path)),
    )
    process.start()
    process.join(timeout_s)
    if process.is_alive():
        process.terminate()
        process.join(10.0)
        if process.is_alive():  # pragma: no cover - kill-resistant child
            process.kill()
            process.join()
        return _failure_row(
            scenario, "timeout", f"exceeded the {timeout_s:.0f}s per-scenario timeout"
        )
    if not result_path.exists():
        return _failure_row(
            scenario, "crash", f"child exited {process.exitcode} without a result row"
        )
    try:
        return json.loads(result_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return _failure_row(scenario, "crash", f"unreadable result row: {exc}")


def _run_inline(scenario: Scenario, check_resume: bool) -> dict:
    try:
        return run_scenario(scenario, check_resume=check_resume)
    except Exception:  # noqa: BLE001 - isolation without a process
        return _failure_row(scenario, "error", traceback.format_exc(limit=10))


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


def sweep(config: SweepConfig | None = None, log=None) -> dict:
    """Generate, audit, and execute ``config.seeds`` scenarios; score all.

    Returns the scorecard dict (see :func:`build_scorecard`). With
    ``config.jobs == 0`` scenarios run inline (fast, test-friendly);
    otherwise each runs in its own process with a per-scenario timeout,
    ``jobs`` of them concurrently.
    """
    config = config or SweepConfig()
    forge = ScenarioForge(config.forge)
    say = log or (lambda message: None)

    admitted: list[tuple[int, Scenario]] = []
    rejected: list[dict] = []
    for index in range(config.seeds):
        seed = config.start_seed + index
        scenario = forge.generate(seed)
        if config.iterations is not None:
            scenario = scenario.with_overrides(iterations=config.iterations)
            audit = audit_scenario(scenario)  # overrides void the seed-replay check
        else:
            audit = audit_scenario(scenario, forge)
        if audit.ok:
            admitted.append((index, scenario))
        else:
            rejected.append(audit.to_dict())
    say(f"admitted {len(admitted)}/{config.seeds} scenarios ({len(rejected)} rejected)")

    outcomes: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="forge-sweep-") as tmp:
        workdir = Path(tmp)
        if config.jobs == 0:
            for index, scenario in admitted:
                check = index % config.resume_check_every == 0
                outcomes.append(_run_inline(scenario, check))
        else:
            pending = list(admitted)
            while pending:
                batch, pending = pending[: config.jobs], pending[config.jobs :]
                # Per-batch fan-out keeps the bookkeeping trivial; a hung
                # scenario stalls only its batch slot for timeout_s.
                for index, scenario in batch:
                    check = index % config.resume_check_every == 0
                    outcomes.append(
                        _run_isolated(scenario, check, config.timeout_s, workdir)
                    )
        failing = [o for o in outcomes if o.get("status") != "ok"]
        say(
            f"ran {len(outcomes)} scenarios: {len(outcomes) - len(failing)} ok, "
            f"{len(failing)} failing"
        )

    reproducers: list[dict] = []
    if config.triage_dir is not None and failing:
        from .triage import minimize_scenario, reproduces_failure

        config.triage_dir.mkdir(parents=True, exist_ok=True)
        for row in failing:
            scenario = forge.generate(row["seed"])
            if config.iterations is not None:
                scenario = scenario.with_overrides(iterations=config.iterations)
            minimal = minimize_scenario(
                scenario, lambda s: reproduces_failure(s, row["status"])
            )
            path = config.triage_dir / f"{minimal.name}.repro.json"
            atomic_write_json(path, minimal.to_dict())
            reproducers.append({"scenario": minimal.name, "path": str(path)})
            say(f"minimized {row['scenario']} -> {path}")

    return build_scorecard(outcomes, rejected, reproducers=reproducers, config=config)


# ----------------------------------------------------------------------
# The scorecard
# ----------------------------------------------------------------------


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _gate(name: str, value: float) -> dict:
    criteria = GATE_CRITERIA[name]
    threshold = criteria["threshold"]
    passed = value >= threshold if criteria["op"] == ">=" else value <= threshold
    return {
        "description": criteria["description"],
        "value": round(value, 6),
        "op": criteria["op"],
        "threshold": threshold,
        "pass": passed,
    }


def build_scorecard(
    outcomes: list[dict],
    rejected: list[dict] | None = None,
    reproducers: list[dict] | None = None,
    config: SweepConfig | None = None,
) -> dict:
    """Aggregate per-scenario rows into the gated robustness scorecard."""
    rejected = rejected or []
    ok_rows = [o for o in outcomes if o.get("status") == "ok"]

    completion = (
        sum(1 for o in ok_rows if o.get("completed")) / len(outcomes) if outcomes else 0.0
    )
    quality_p95 = _percentile(
        [o["plan_quality"]["ratio"] for o in ok_rows if "plan_quality" in o], 0.95
    )
    recovery_median = _percentile(
        [o["recovery"]["fraction"] for o in ok_rows if "recovery" in o], 0.5
    )
    fallback_fraction = (
        sum(1 for o in ok_rows if o.get("ladder", {}).get("deepest_rung") == CPU_FALLBACK)
        / len(ok_rows)
        if ok_rows
        else 0.0
    )
    drifting = [o for o in ok_rows if o.get("calibration", {}).get("drifting")]
    calibration = (
        sum(1 for o in drifting if o["calibration"]["improved"]) / len(drifting)
        if drifting
        else 1.0
    )
    resumes = [o for o in ok_rows if o.get("resume", {}).get("checked")]
    resume_integrity = (
        sum(1 for o in resumes if o["resume"]["identical"]) / len(resumes)
        if resumes
        else 1.0
    )

    dimensions = {
        "completion": _gate("completion", completion),
        "plan_quality": _gate("plan_quality", quality_p95),
        "recovery": _gate("recovery", recovery_median),
        "ladder_depth": _gate("ladder_depth", fallback_fraction),
        "calibration": _gate("calibration", calibration),
        "resume_integrity": _gate("resume_integrity", resume_integrity),
    }
    statuses: dict[str, int] = {}
    for row in outcomes:
        status = row.get("status", "unknown")
        statuses[status] = statuses.get(status, 0) + 1

    return {
        "format_version": SCORECARD_FORMAT_VERSION,
        "config": {
            "seeds": config.seeds if config else len(outcomes) + len(rejected),
            "start_seed": config.start_seed if config else 0,
            "jobs": config.jobs if config else 0,
            "timeout_s": config.timeout_s if config else None,
        },
        "admission": {
            "generated": len(outcomes) + len(rejected),
            "admitted": len(outcomes),
            "rejected": len(rejected),
            "rejections": rejected,
        },
        "statuses": statuses,
        "coverage": {
            "heterogeneous": sum(1 for o in outcomes if o.get("heterogeneous")),
            "drifting": len([o for o in outcomes if "drift" in " ".join(o.get("tags", []))]),
            "correlated": len(
                [
                    o
                    for o in outcomes
                    if any(
                        t in ("gpu-pair-loss", "pool-cascade", "drift-storm")
                        for t in o.get("tags", [])
                    )
                ]
            ),
            "resume_checked": len(resumes),
        },
        "dimensions": dimensions,
        "pass": all(d["pass"] for d in dimensions.values()),
        "scenarios": outcomes,
        "reproducers": reproducers or [],
    }


def write_scorecard(scorecard: dict, path: str | Path) -> Path:
    """Land the scorecard atomically (the nightly artifact contract)."""
    path = Path(path)
    atomic_write_json(path, scorecard)
    return path
