"""Shrinking failing scenarios to minimal reproducers.

A forge-found failure arrives wrapped in everything the seed happened to
sample -- background fault rates, drift windows, an arrival curve, a
heterogeneous fleet -- most of which is irrelevant to the bug. Triage
strips the scenario one dimension at a time, keeping each simplification
only if the failure still reproduces, until no single removal preserves
it. The result is 1-minimal: every remaining dimension is load-bearing,
which is what makes a pinned regression test legible.

The shrink moves are deliberately coarse (drop one scheduled event, drop
one drift entry, drop one fault spec, flatten the arrival curve, zero the
retry knobs, homogenize the fleet, halve the run, shrink the workload) so
minimization stays a bounded number of re-runs rather than a search.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from .audit import audit_scenario
from .scenario import ArrivalCurve, Scenario, WorkloadSpec

__all__ = ["minimize_scenario", "reproduces_failure"]


def reproduces_failure(scenario: Scenario, status: str) -> bool:
    """Does running the scenario inline land on the same failure status?

    ``timeout`` statuses are checked as ``error`` -- a child-process
    timeout usually shows up inline as either a hang (which triage must
    not risk) or an error; we only shrink the error-reproducible kind.
    """
    from .sweep import _run_inline

    row = _run_inline(scenario, check_resume=False)
    want = "error" if status == "timeout" else status
    return row.get("status") == want


def _shrink_candidates(scenario: Scenario) -> Iterator[tuple[str, Scenario]]:
    """Every single-step simplification of a scenario, most drastic first."""
    if scenario.fault_specs:
        yield "drop-all-fault-specs", scenario.with_overrides(fault_specs=())
    if scenario.drift_schedule:
        yield "drop-all-drift", scenario.with_overrides(drift_schedule=())
    if scenario.arrival.shape != "steady":
        yield "flatten-arrival", scenario.with_overrides(arrival=ArrivalCurve())
    if scenario.retry_jitter or scenario.retry_budget:
        yield "default-retry", scenario.with_overrides(retry_jitter=0.0, retry_budget=0)
    if scenario.heterogeneous:
        yield (
            "homogenize-fleet",
            scenario.with_overrides(fleet=(scenario.fleet[0],) * scenario.num_gpus),
        )
    for i in range(len(scenario.fault_schedule)):
        kept = scenario.fault_schedule[:i] + scenario.fault_schedule[i + 1 :]
        yield f"drop-scheduled-{i}", scenario.with_overrides(fault_schedule=kept)
    for i in range(len(scenario.fault_specs)):
        kept = scenario.fault_specs[:i] + scenario.fault_specs[i + 1 :]
        yield f"drop-spec-{i}", scenario.with_overrides(fault_specs=kept)
    for i in range(len(scenario.drift_schedule)):
        kept = scenario.drift_schedule[:i] + scenario.drift_schedule[i + 1 :]
        yield f"drop-drift-{i}", scenario.with_overrides(drift_schedule=kept)
    if scenario.iterations > 4:
        yield (
            "halve-iterations",
            scenario.with_overrides(iterations=max(4, scenario.iterations // 2)),
        )
    small = WorkloadSpec(plan_seed=scenario.workload.plan_seed, batch=scenario.workload.batch)
    if scenario.workload != small:
        yield "shrink-workload", scenario.with_overrides(workload=small)


def minimize_scenario(
    scenario: Scenario,
    failing: Callable[[Scenario], bool],
    max_runs: int = 64,
) -> Scenario:
    """Greedy 1-minimal shrink of ``scenario`` under the ``failing`` oracle.

    Every candidate must still pass the admission audit (shrinking may
    orphan a scheduled event past a halved run; such candidates are
    skipped, not repaired) and still fail. Stops after ``max_runs``
    oracle invocations, so triage cost is bounded even for a stubborn
    failure.
    """
    current = scenario
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for move, candidate in _shrink_candidates(current):
            if runs >= max_runs:
                break
            if not audit_scenario(candidate).ok:
                continue
            runs += 1
            if failing(candidate):
                current = candidate.with_overrides(
                    name=f"{scenario.name}-min", tags=current.tags + (move,)
                )
                progress = True
                break
    return current
