"""``repro.gpusim`` -- analytic multi-GPU co-running simulator.

This package stands in for the paper's DGX-A100 testbed. It models the two
contended resources RAP reasons about (SM issue slots and DRAM bandwidth),
the rate-sharing contention between co-running work, priority-stream and
MPS sharing semantics, and the NVSwitch interconnect.

Public surface
--------------
- :class:`GpuSpec`, :data:`A100_SPEC`, :class:`ResourceVector` -- hardware
  description and demand arithmetic.
- :class:`KernelDesc`, :func:`fuse_kernels`, :func:`shard_kernel` -- work
  units and the horizontal-fusion / sharding primitives.
- :class:`StageProfile`, :class:`GpuDevice`, :class:`CoRunPolicy`,
  :class:`IterationResult` -- single-GPU co-running simulation.
- :class:`MultiGpuCluster`, :class:`Interconnect` -- multi-GPU composition.
- :class:`UtilizationTrace` -- profiling output for the figures.
"""

from .resources import (
    A100_SPEC,
    GPU_PROFILES,
    H100_SPEC,
    V100_SPEC,
    GpuSpec,
    ResourceVector,
    resolve_profile,
    warps_to_sm_fraction,
)
from .kernel import KernelDesc, fuse_kernels, shard_kernel
from .trace import TraceSegment, UtilizationTrace
from .device import (
    CoRunPolicy,
    GpuDevice,
    IterationResult,
    KernelSpan,
    MPS_POLICY,
    RAP_POLICY,
    STREAM_POLICY,
    StageProfile,
    StageSpan,
)
from .interconnect import Interconnect
from .cluster import ClusterIterationResult, MultiGpuCluster
from .stream import run_on_low_priority_stream
from .mps import run_under_mps
from .export import render_gantt, to_chrome_trace

__all__ = [
    "A100_SPEC",
    "H100_SPEC",
    "V100_SPEC",
    "GPU_PROFILES",
    "GpuSpec",
    "ResourceVector",
    "resolve_profile",
    "warps_to_sm_fraction",
    "KernelDesc",
    "fuse_kernels",
    "shard_kernel",
    "TraceSegment",
    "UtilizationTrace",
    "CoRunPolicy",
    "GpuDevice",
    "IterationResult",
    "KernelSpan",
    "StageSpan",
    "StageProfile",
    "RAP_POLICY",
    "STREAM_POLICY",
    "MPS_POLICY",
    "Interconnect",
    "ClusterIterationResult",
    "MultiGpuCluster",
    "run_on_low_priority_stream",
    "run_under_mps",
    "render_gantt",
    "to_chrome_trace",
]
