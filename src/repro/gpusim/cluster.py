"""Multi-GPU cluster: devices plus interconnect plus synchronization.

A DLRM training iteration is bulk-synchronous across GPUs (the all-to-all
and the gradient all-reduce are barriers), so the per-iteration time of the
cluster is the slowest GPU's time plus any inter-GPU input redistribution
that sits on the critical path. This module holds that composition logic;
per-GPU physics lives in :mod:`repro.gpusim.device`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .device import CoRunPolicy, GpuDevice, IterationResult, RAP_POLICY, StageProfile
from .interconnect import Interconnect
from .kernel import KernelDesc
from .resources import GpuSpec, A100_SPEC

__all__ = ["ClusterIterationResult", "MultiGpuCluster"]


@dataclass
class ClusterIterationResult:
    """Aggregated outcome of one synchronous iteration across all GPUs.

    ``recovery_us_per_gpu`` is per-GPU fault-recovery wall time (failed
    kernel re-runs, retry backoff) injected by a fault-tolerant runtime; it
    extends that GPU's iteration before the bulk-synchronous barrier, so a
    single recovering GPU stalls the whole cluster.
    """

    iteration_time_us: float
    input_comm_us: float
    per_gpu: list[IterationResult] = field(default_factory=list)
    recovery_us_per_gpu: list[float] = field(default_factory=list)

    @property
    def slowest_gpu(self) -> int:
        times = [
            r.total_time_us + rec
            for r, rec in zip(self.per_gpu, self._recovery_padded())
        ]
        return times.index(max(times)) if times else 0

    @property
    def max_exposed_preprocessing_us(self) -> float:
        return max((r.exposed_preprocessing_us for r in self.per_gpu), default=0.0)

    @property
    def max_recovery_us(self) -> float:
        return max(self.recovery_us_per_gpu, default=0.0)

    @property
    def degraded(self) -> bool:
        return self.max_recovery_us > 0.0

    def _recovery_padded(self) -> list[float]:
        pad = len(self.per_gpu) - len(self.recovery_us_per_gpu)
        return list(self.recovery_us_per_gpu) + [0.0] * max(0, pad)

    def throughput_samples_per_s(self, batch_size: int) -> float:
        if self.iteration_time_us <= 0:
            return 0.0
        return batch_size / (self.iteration_time_us * 1e-6)


class MultiGpuCluster:
    """A fully connected node of GPUs (the DGX-A100 testbed by default).

    ``specs`` admits a heterogeneous fleet (mixed A100/H100-class devices):
    device ``i`` is built from ``specs[i]``, and the shared interconnect is
    sized by the *slowest* member's NVLink -- a mixed fabric negotiates down
    to its weakest link. With ``specs`` omitted every device uses ``spec``
    and behavior is unchanged.
    """

    def __init__(
        self,
        num_gpus: int,
        spec: GpuSpec = A100_SPEC,
        interconnect: Interconnect | None = None,
        specs: Sequence[GpuSpec] | None = None,
    ) -> None:
        if num_gpus < 1:
            raise ValueError("cluster needs at least one GPU")
        if specs is not None and len(specs) != num_gpus:
            raise ValueError(
                f"specs lists {len(specs)} GPUs but the cluster has {num_gpus}"
            )
        self.num_gpus = num_gpus
        self.spec = spec
        self.specs = tuple(specs) if specs is not None else None
        self.devices = [
            GpuDevice(self.spec_for_gpu(i), device_id=i) for i in range(num_gpus)
        ]
        if interconnect is None:
            fabric_spec = (
                min(self.specs, key=lambda s: s.nvlink_bw_gbps) if self.specs else spec
            )
            interconnect = Interconnect(fabric_spec)
        self.interconnect = interconnect

    def spec_for_gpu(self, gpu_id: int) -> GpuSpec:
        """The spec of one device (``spec`` for a homogeneous fleet)."""
        if not 0 <= gpu_id < self.num_gpus:
            raise ValueError(f"gpu_id {gpu_id} out of range for {self.num_gpus} GPUs")
        return self.specs[gpu_id] if self.specs is not None else self.spec

    @property
    def heterogeneous(self) -> bool:
        return self.specs is not None and len(set(s.name for s in self.specs)) > 1

    def shrink(self, lost_gpu: int) -> "MultiGpuCluster":
        """The survivor cluster after one GPU is permanently lost.

        Device ids are compacted into ``0..n-2`` (the bulk-synchronous
        iteration is indexed by position, not hardware id) and the
        interconnect object is carried over, so bandwidth assumptions are
        unchanged for the survivors.
        """
        if not 0 <= lost_gpu < self.num_gpus:
            raise ValueError(f"lost_gpu {lost_gpu} out of range for {self.num_gpus} GPUs")
        if self.num_gpus < 2:
            raise ValueError("cannot shrink a single-GPU cluster")
        survivors = (
            tuple(s for i, s in enumerate(self.specs) if i != lost_gpu)
            if self.specs is not None
            else None
        )
        return MultiGpuCluster(
            self.num_gpus - 1, self.spec, interconnect=self.interconnect, specs=survivors
        )

    def simulate_iteration(
        self,
        stages_per_gpu: Sequence[Sequence[StageProfile]],
        assignments_per_gpu: Sequence[Mapping[int, Sequence[KernelDesc]]] | None = None,
        trailing_per_gpu: Sequence[Sequence[KernelDesc]] | None = None,
        input_comm_bytes: float = 0.0,
        input_comm_transfers: int = 1,
        policy: CoRunPolicy = RAP_POLICY,
        recovery_us_per_gpu: Sequence[float] | None = None,
    ) -> ClusterIterationResult:
        """Simulate one bulk-synchronous iteration.

        Parameters
        ----------
        stages_per_gpu:
            Training stage pipeline for each GPU (usually identical replicas
            with embedding stages sized by the local shard).
        assignments_per_gpu / trailing_per_gpu:
            Per-GPU preprocessing kernel placement, as produced by a mapping
            + scheduling plan.
        input_comm_bytes:
            Total preprocessing output volume that must move between GPUs
            before embedding lookup can start. It serializes with training
            (it feeds the first stage), so it lands on the critical path --
            the mechanism that penalizes data-parallel mapping in Fig. 12.
        """
        if len(stages_per_gpu) != self.num_gpus:
            raise ValueError(
                f"expected stage pipelines for {self.num_gpus} GPUs, got {len(stages_per_gpu)}"
            )
        assignments_per_gpu = assignments_per_gpu or [{} for _ in range(self.num_gpus)]
        trailing_per_gpu = trailing_per_gpu or [() for _ in range(self.num_gpus)]
        if len(assignments_per_gpu) != self.num_gpus or len(trailing_per_gpu) != self.num_gpus:
            raise ValueError("assignment lists must match the number of GPUs")
        recovery = list(recovery_us_per_gpu) if recovery_us_per_gpu else [0.0] * self.num_gpus
        if len(recovery) != self.num_gpus:
            raise ValueError("recovery_us_per_gpu must match the number of GPUs")
        if any(r < 0 for r in recovery):
            raise ValueError("recovery times must be non-negative")

        results = [
            device.simulate_iteration(
                stages,
                assignments=assignment,
                trailing_kernels=trailing,
                policy=policy,
            )
            for device, stages, assignment, trailing in zip(
                self.devices, stages_per_gpu, assignments_per_gpu, trailing_per_gpu
            )
        ]
        comm = self.interconnect.redistribution_us(
            input_comm_bytes, self.num_gpus, num_transfers=input_comm_transfers
        )
        iteration = max(r.total_time_us + rec for r, rec in zip(results, recovery)) + comm
        return ClusterIterationResult(
            iteration_time_us=iteration,
            input_comm_us=comm,
            per_gpu=results,
            recovery_us_per_gpu=recovery,
        )
