"""The single-GPU co-running simulator.

This is the physics core of the reproduction. A device executes a DLRM
training iteration expressed as a sequence of :class:`StageProfile` spans,
optionally co-running a queue of preprocessing kernels assigned per stage
(RAP), or issued greedily from the start of the iteration (the CUDA-stream
and MPS baselines).

Contention model
----------------
While a preprocessing kernel is resident alongside a training stage, both
advance at ``1 / s`` of their standalone rate, where
``s = max(1, sm_train + sm_kernel, dram_train + dram_kernel)`` is the
rate-sharing slowdown of the most oversubscribed resource. When the kernel
fits in the training stage's leftover resources ``s == 1``: the paper's
contention-free co-running regime where preprocessing is literally free.
This reproduces the behaviour measured in the paper's Fig. 1c (training
latency inflates once the co-running NGram kernel outgrows the leftover)
and Fig. 5b (overlapping latency tracks standalone latency linearly once
capacity is exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .kernel import KernelDesc
from .resources import GpuSpec, ResourceVector, A100_SPEC
from .trace import UtilizationTrace

__all__ = ["StageProfile", "CoRunPolicy", "KernelSpan", "StageSpan", "IterationResult", "GpuDevice"]


@dataclass(frozen=True)
class StageProfile:
    """One span of a training iteration with constant resource utilization."""

    name: str
    duration_us: float
    utilization: ResourceVector

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"stage {self.name!r} has negative duration")

    def leftover(self) -> ResourceVector:
        return self.utilization.headroom()


@dataclass(frozen=True)
class CoRunPolicy:
    """How aggressively co-running shares the device.

    ``demand_inflation`` models sharing-mechanism inefficiency: a
    low-priority CUDA stream or an MPS sibling process does not partition
    resources as cleanly as RAP's capacity-sized kernels, so its effective
    footprint is inflated. ``per_kernel_overhead_us`` charges a fixed issue
    overhead per kernel (context switching / software scheduling).
    ``train_stall_us`` models head-of-line blocking at kernel issue: each
    preprocessing kernel injected from a foreign stream/process briefly
    stalls the training stream's launch pipeline. RAP pays none because its
    generated code enqueues the (few, fused) kernels inside the training
    loop itself with pre-resolved dependencies.
    """

    name: str = "rap"
    demand_inflation: float = 1.0
    per_kernel_overhead_us: float = 0.0
    train_stall_us: float = 0.0
    serialization_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.serialization_fraction <= 1.0:
            raise ValueError("serialization_fraction must be in [0, 1]")

    def effective(self, kernel: KernelDesc) -> tuple[float, ResourceVector]:
        """Return (effective duration, effective demand) under this policy."""
        duration = kernel.duration_us + self.per_kernel_overhead_us
        demand = kernel.demand.scale(self.demand_inflation)
        return duration, demand


RAP_POLICY = CoRunPolicy(name="rap")
STREAM_POLICY = CoRunPolicy(
    name="cuda_stream",
    demand_inflation=1.35,
    per_kernel_overhead_us=4.0,
    train_stall_us=7.0,
    serialization_fraction=0.80,
)
MPS_POLICY = CoRunPolicy(
    name="mps",
    demand_inflation=1.12,
    per_kernel_overhead_us=1.5,
    train_stall_us=2.5,
    serialization_fraction=0.45,
)


@dataclass(frozen=True)
class KernelSpan:
    """Completed execution record of one kernel (possibly across stages)."""

    name: str
    t_start: float
    t_end: float
    tag: str
    overlapped: bool

    @property
    def wall_time(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class StageSpan:
    """Completed execution record of one training stage."""

    name: str
    t_start: float
    t_end: float
    standalone_us: float

    @property
    def wall_time(self) -> float:
        return self.t_end - self.t_start

    @property
    def slowdown(self) -> float:
        if self.standalone_us <= 0:
            return 1.0
        return self.wall_time / self.standalone_us


@dataclass
class IterationResult:
    """Everything the cost model and the figures need from one iteration."""

    total_time_us: float
    training_time_us: float
    exposed_preprocessing_us: float
    stage_spans: list[StageSpan] = field(default_factory=list)
    kernel_spans: list[KernelSpan] = field(default_factory=list)
    trace: UtilizationTrace = field(default_factory=UtilizationTrace)

    @property
    def training_slowdown(self) -> float:
        standalone = sum(s.standalone_us for s in self.stage_spans)
        if standalone <= 0:
            return 1.0
        return self.training_time_us / standalone

    @property
    def preprocessing_wall_us(self) -> float:
        return sum(k.wall_time for k in self.kernel_spans)


class _RunningKernel:
    """Mutable progress tracker for a kernel moving through the simulation."""

    __slots__ = ("kernel", "remaining_us", "effective_demand", "t_start", "overlapped")

    def __init__(self, kernel: KernelDesc, policy: CoRunPolicy) -> None:
        duration, demand = policy.effective(kernel)
        self.kernel = kernel
        self.remaining_us = duration
        self.effective_demand = demand
        self.t_start: float | None = None
        self.overlapped = False


class GpuDevice:
    """A single simulated GPU executing training stages and co-run kernels."""

    def __init__(self, spec: GpuSpec = A100_SPEC, device_id: int = 0) -> None:
        self.spec = spec
        self.device_id = device_id

    # ------------------------------------------------------------------
    # Standalone execution
    # ------------------------------------------------------------------

    def run_kernels_standalone(self, kernels: Sequence[KernelDesc], t0: float = 0.0) -> IterationResult:
        """Execute kernels back to back with the device otherwise idle."""
        trace = UtilizationTrace()
        spans: list[KernelSpan] = []
        t = t0
        for k in kernels:
            end = t + k.duration_us
            trace.record(t, end, k.demand.clamp(), label=k.name)
            spans.append(KernelSpan(k.name, t, end, k.tag, overlapped=False))
            t = end
        return IterationResult(
            total_time_us=t - t0,
            training_time_us=0.0,
            exposed_preprocessing_us=t - t0,
            stage_spans=[],
            kernel_spans=spans,
            trace=trace,
        )

    def run_training_standalone(self, stages: Sequence[StageProfile]) -> IterationResult:
        """Execute a training iteration with no co-running preprocessing."""
        return self.simulate_iteration(stages, assignments={})

    # ------------------------------------------------------------------
    # Co-running simulation
    # ------------------------------------------------------------------

    def simulate_iteration(
        self,
        stages: Sequence[StageProfile],
        assignments: Mapping[int, Sequence[KernelDesc]] | None = None,
        trailing_kernels: Sequence[KernelDesc] = (),
        policy: CoRunPolicy = RAP_POLICY,
        t0: float = 0.0,
    ) -> IterationResult:
        """Simulate one training iteration with per-stage kernel assignments.

        Parameters
        ----------
        stages:
            The training iteration's stage pipeline, executed in order.
        assignments:
            Maps stage index -> kernels released when that stage begins.
            Kernels execute sequentially (one resident co-runner at a time,
            matching how RAP sizes one fused kernel per slot) and spill into
            subsequent stages if they outlast their stage.
        trailing_kernels:
            Kernels released only after all training stages finish; together
            with any spilled work they form the *exposed* preprocessing
            latency -- the quantity RAP's scheduler minimizes.
        policy:
            Sharing mechanism (RAP / CUDA stream / MPS) efficiency knobs.
        """
        assignments = assignments or {}
        for idx in assignments:
            if not 0 <= idx < len(stages):
                raise IndexError(f"assignment to stage {idx} outside pipeline of {len(stages)} stages")

        trace = UtilizationTrace()
        stage_spans: list[StageSpan] = []
        kernel_spans: list[KernelSpan] = []
        queue: list[_RunningKernel] = []
        t = t0

        for idx, stage in enumerate(stages):
            queue.extend(_RunningKernel(k, policy) for k in assignments.get(idx, ()))
            stage_start = t
            remaining_work = stage.duration_us

            while remaining_work > 1e-12:
                if not queue:
                    end = t + remaining_work
                    trace.record(t, end, stage.utilization, label=stage.name)
                    t = end
                    remaining_work = 0.0
                    break

                running = queue[0]
                if running.t_start is None:
                    running.t_start = t
                    serial_us = policy.train_stall_us
                    if policy.serialization_fraction > 0:
                        # Whole-SM kernel-granularity scheduling: while the
                        # foreign stream's kernel holds the device, training
                        # kernels cannot launch. The kernel itself advances
                        # at full (standalone) rate during this phase.
                        serial_us += policy.serialization_fraction * running.remaining_us
                        running.remaining_us *= 1.0 - policy.serialization_fraction
                    if serial_us > 0:
                        stall_end = t + serial_us
                        trace.record(
                            t, stall_end, running.effective_demand.clamp(), label="issue_stall"
                        )
                        t = stall_end
                        if running.remaining_us <= 1e-9:
                            kernel_spans.append(
                                KernelSpan(
                                    running.kernel.name,
                                    running.t_start,
                                    t,
                                    running.kernel.tag,
                                    True,
                                )
                            )
                            queue.pop(0)
                            continue
                running.overlapped = True
                slowdown = max(
                    1.0,
                    stage.utilization.sm + running.effective_demand.sm,
                    stage.utilization.dram + running.effective_demand.dram,
                )
                combined = (stage.utilization + running.effective_demand).clamp()
                # Wall time until either the kernel or the stage completes.
                wall_kernel = running.remaining_us * slowdown
                wall_stage = remaining_work * slowdown
                wall = min(wall_kernel, wall_stage)
                progressed = wall / slowdown
                end = t + wall
                trace.record(t, end, combined, label=f"{stage.name}+{running.kernel.name}")
                remaining_work -= progressed
                running.remaining_us -= progressed
                if running.remaining_us <= 1e-9:
                    kernel_spans.append(
                        KernelSpan(running.kernel.name, running.t_start, end, running.kernel.tag, True)
                    )
                    queue.pop(0)
                t = end

            stage_spans.append(StageSpan(stage.name, stage_start, t, stage.duration_us))

        training_end = t

        # Drain spilled kernels plus trailing kernels with the device free:
        # they run at full rate, fully exposed.
        queue.extend(_RunningKernel(k, policy) for k in trailing_kernels)
        for running in queue:
            if running.t_start is None:
                running.t_start = t
            end = t + running.remaining_us
            trace.record(t, end, running.effective_demand.clamp(), label=running.kernel.name)
            kernel_spans.append(
                KernelSpan(running.kernel.name, running.t_start, end, running.kernel.tag, running.overlapped)
            )
            t = end

        return IterationResult(
            total_time_us=t - t0,
            training_time_us=training_end - t0,
            exposed_preprocessing_us=t - training_end,
            stage_spans=stage_spans,
            kernel_spans=kernel_spans,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Measurement helpers used by the cost model and figures
    # ------------------------------------------------------------------

    def overlap_latency(
        self,
        stage: StageProfile,
        kernel: KernelDesc,
        policy: CoRunPolicy = RAP_POLICY,
    ) -> float:
        """Wall time for ``stage`` co-run with ``kernel`` (Fig. 1c measurement)."""
        result = self.simulate_iteration([stage], assignments={0: [kernel]}, policy=policy)
        return result.total_time_us

    def stage_overlapping_capacity(self, stage: StageProfile, probe: ResourceVector) -> float:
        """Overlapping capacity of ``stage`` in standalone-latency units (§5.1).

        The capacity is the largest total standalone latency of kernels with
        demand profile ``probe`` that co-run with the stage for free. A probe
        that fits in the leftover advances at full rate for the stage's whole
        duration, so the capacity equals the stage duration scaled by how
        much of the probe's demand the leftover admits.
        """
        leftover = stage.leftover()
        if probe.sm <= 0 and probe.dram <= 0:
            return stage.duration_us
        ratios = []
        if probe.sm > 0:
            ratios.append(leftover.sm / probe.sm)
        if probe.dram > 0:
            ratios.append(leftover.dram / probe.dram)
        admit = min(1.0, min(ratios)) if ratios else 1.0
        return stage.duration_us * admit
