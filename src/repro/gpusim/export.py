"""Trace export: Chrome trace-event JSON and ASCII Gantt rendering.

Simulated iterations produce :class:`repro.gpusim.trace.UtilizationTrace`
objects plus stage/kernel spans. This module turns them into artifacts a
human can inspect:

- :func:`to_chrome_trace` -- the Trace Event Format consumed by
  ``chrome://tracing`` / Perfetto, one row per GPU with training stages
  and co-running preprocessing kernels as duration events;
- :func:`render_gantt` -- a terminal Gantt chart of one GPU's iteration,
  which the examples print.
"""

from __future__ import annotations

from ..telemetry.chrome import process_metadata_events, trace_json
from ..telemetry.spans import iteration_span_events
from .cluster import ClusterIterationResult
from .device import IterationResult

__all__ = ["to_chrome_trace", "render_gantt"]


def to_chrome_trace(
    results: IterationResult | ClusterIterationResult,
    indent: int | None = None,
) -> str:
    """Serialize one simulated iteration as Chrome trace-event JSON.

    Accepts either a single-GPU :class:`IterationResult` or a whole
    cluster's :class:`ClusterIterationResult` (one ``pid`` per GPU; the
    training stream is ``tid 0``, the preprocessing stream ``tid 1``).
    All events are built by :mod:`repro.telemetry.chrome` -- the same
    constructors the runtime span tracer uses -- so one viewer profile
    reads both artifacts.
    """
    if isinstance(results, ClusterIterationResult):
        per_gpu = results.per_gpu
    else:
        per_gpu = [results]
    events: list[dict] = []
    for pid, result in enumerate(per_gpu):
        events.extend(
            process_metadata_events(
                pid, f"GPU {pid}", threads={0: "training", 1: "preprocessing"}
            )
        )
        events.extend(iteration_span_events(result, pid))
    return trace_json(events, indent=indent)


def render_gantt(
    result: IterationResult,
    width: int = 80,
    max_rows: int = 40,
) -> str:
    """Render one GPU's iteration as an ASCII Gantt chart.

    Training stages use ``=`` bars; preprocessing kernels use ``#`` bars;
    everything shares one time axis scaled to ``width`` characters.
    """
    if width < 20:
        raise ValueError("width must be at least 20 characters")
    total = result.total_time_us
    if total <= 0:
        return "(empty iteration)"

    def bar(t0: float, t1: float, fill: str) -> str:
        start = int(round(t0 / total * width))
        end = max(start + 1, int(round(t1 / total * width)))
        return " " * start + fill * (end - start)

    rows: list[tuple[str, str]] = []
    for span in result.stage_spans:
        rows.append((span.name, bar(span.t_start, span.t_end, "=")))
    for span in result.kernel_spans[: max(0, max_rows - len(rows))]:
        rows.append((span.name, bar(span.t_start, span.t_end, "#")))
    hidden = len(result.stage_spans) + len(result.kernel_spans) - len(rows)

    label_width = min(28, max((len(name) for name, _ in rows), default=4))
    lines = [
        f"0{' ' * (label_width + width - len(f'{total:,.0f} us') - 1)}{total:,.0f} us",
        f"{'-' * label_width}+{'-' * width}",
    ]
    for name, plot in rows:
        label = name if len(name) <= label_width else name[: label_width - 1] + "~"
        lines.append(f"{label.ljust(label_width)}|{plot}")
    if hidden > 0:
        lines.append(f"... ({hidden} more kernels not shown)")
    return "\n".join(lines)
