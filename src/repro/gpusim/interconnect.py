"""NVLink/NVSwitch interconnect cost model.

DLRM hybrid parallelism moves data between GPUs twice per iteration
(all-to-all of embedding activations forward and backward) and all-reduces
the data-parallel MLP gradients. Input-preprocessing graph mapping adds a
third flow: when a feature's preprocessing output is not produced on the
GPU that consumes it, the tensor must be redistributed -- the penalty RAP's
data-locality-aware mapping removes (Fig. 12).

The model is the standard alpha-beta cost with per-algorithm effective
bandwidth on a fully connected NVSwitch fabric (the DGX-A100 topology).
"""

from __future__ import annotations

from dataclasses import dataclass

from .resources import GpuSpec, A100_SPEC

__all__ = ["Interconnect"]


@dataclass(frozen=True)
class Interconnect:
    """Collective and point-to-point latency estimates for one node.

    Parameters
    ----------
    spec:
        The GPU spec supplying per-GPU NVLink bandwidth.
    alpha_us:
        Fixed per-collective software latency (launch + rendezvous).
    efficiency:
        Fraction of peak link bandwidth achieved by collectives.
    """

    spec: GpuSpec = A100_SPEC
    alpha_us: float = 12.0
    efficiency: float = 0.75

    @property
    def link_bytes_per_us(self) -> float:
        return self.spec.nvlink_bw_gbps * 1e9 / 1e6 * self.efficiency

    def p2p_us(self, nbytes: float) -> float:
        """One GPU sending ``nbytes`` to one peer."""
        if nbytes <= 0:
            return 0.0
        return self.alpha_us + nbytes / self.link_bytes_per_us

    def all_to_all_us(self, nbytes_per_gpu: float, num_gpus: int) -> float:
        """All-to-all where each GPU exchanges ``nbytes_per_gpu`` in total.

        Each GPU sends ``(n-1)/n`` of its payload over its own links, which
        on NVSwitch happens in parallel across peers.
        """
        if num_gpus <= 1 or nbytes_per_gpu <= 0:
            return 0.0
        payload = nbytes_per_gpu * (num_gpus - 1) / num_gpus
        return self.alpha_us + payload / self.link_bytes_per_us

    def all_reduce_us(self, nbytes: float, num_gpus: int) -> float:
        """Ring all-reduce of an ``nbytes`` buffer across ``num_gpus`` GPUs."""
        if num_gpus <= 1 or nbytes <= 0:
            return 0.0
        volume = 2.0 * nbytes * (num_gpus - 1) / num_gpus
        return self.alpha_us + volume / self.link_bytes_per_us

    def redistribution_us(
        self,
        nbytes_moved: float,
        num_gpus: int,
        num_transfers: int = 1,
    ) -> float:
        """Cost of moving misplaced preprocessing outputs between GPUs.

        ``nbytes_moved`` is the total volume leaving its producer GPU; on a
        switch fabric the transfers parallelize across source GPUs, so the
        bandwidth term is set by the busiest GPU (assumed to carry an even
        share). ``num_transfers`` counts the distinct per-feature tensors
        being exchanged: each is its own collective and pays the fixed
        latency -- the reason data-parallel mapping's per-feature input
        redistribution is expensive even when the tensors are small
        (Fig. 12).
        """
        if nbytes_moved <= 0 or num_gpus <= 1 or num_transfers <= 0:
            return 0.0
        per_gpu = nbytes_moved / num_gpus
        return self.alpha_us * num_transfers + per_gpu / self.link_bytes_per_us
