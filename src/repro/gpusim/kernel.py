"""Kernel descriptors: the unit of work the simulated GPU executes.

A :class:`KernelDesc` is a *resource-annotated* piece of work: how long it
takes standalone, how many warps it launches, and what fraction of SM issue
slots and DRAM bandwidth it demands while running. Preprocessing operators
(``repro.preprocessing.ops``) and DLRM training stages (``repro.dlrm``)
both lower to kernels before hitting the device model.

Sharding physics
----------------
Resource-aware kernel sharding (§6.2) splits a kernel into pieces that fit
the leftover resources of a training stage. Sharding is not free: every
shard pays its own launch overhead, and a shard's body time has a floor of
one "wave" (all its warps resident simultaneously) -- doing the same work
with less parallelism cannot be faster. The scheduler's preference for
high-capacity stages falls out of this cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .resources import GpuSpec, ResourceVector

__all__ = ["KernelDesc", "fuse_kernels", "shard_kernel"]


@dataclass(frozen=True)
class KernelDesc:
    """A GPU kernel with its standalone latency and resource demand.

    Parameters
    ----------
    name:
        Human-readable identifier (also used in traces).
    duration_us:
        Standalone execution latency in microseconds, i.e. the latency when
        the kernel owns the whole device. This is the uniform cost currency
        of RAP's latency-based preprocessing overhead abstraction (§5.1).
    demand:
        Fractional SM/DRAM demand while the kernel is resident.
    num_warps:
        Total warps launched; drives demand scaling under sharding and the
        Fig.-5c analysis.
    tag:
        Operator family (e.g. ``"Ngram"``); fused kernels keep their family
        tag because only same-type operators fuse horizontally.
    launch_us:
        The fixed launch overhead included in ``duration_us``. Shards each
        pay it again.
    warp_slots:
        Total resident-warp capacity of the device the kernel was costed
        for (0 = unknown; sharding then scales demand linearly).
    meta:
        Free-form metadata (op configuration, feature ids, ...).
    """

    name: str
    duration_us: float
    demand: ResourceVector
    num_warps: int = 0
    tag: str = "generic"
    launch_us: float = 0.0
    warp_slots: int = 0
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"kernel {self.name!r} has negative duration")
        if self.num_warps < 0:
            raise ValueError(f"kernel {self.name!r} has negative warp count")
        if self.launch_us < 0 or self.launch_us > self.duration_us + 1e-9:
            raise ValueError(
                f"kernel {self.name!r}: launch_us must lie within [0, duration_us]"
            )

    @property
    def body_us(self) -> float:
        """Execution time excluding the fixed launch overhead."""
        return max(0.0, self.duration_us - self.launch_us)

    @property
    def waves(self) -> float:
        """How many times the kernel oversubscribes the device's warp slots."""
        if self.warp_slots <= 0 or self.num_warps <= 0:
            return 1.0
        return max(1.0, self.num_warps / self.warp_slots)

    @property
    def wave_floor_us(self) -> float:
        """Body time of a single fully-resident wave: the sharding floor."""
        return self.body_us / self.waves

    def with_duration(self, duration_us: float) -> "KernelDesc":
        return replace(self, duration_us=duration_us)

    def scaled(self, fraction: float, suffix: str = "") -> "KernelDesc":
        """Return a shard covering ``fraction`` of this kernel's work.

        The shard launches ``fraction`` of the warps, pays a full launch
        overhead, and its body time scales with its own wave count --
        flooring at one wave, so sub-saturation shards do not get faster.
        Demand scales with resident warps (saturated kernels stay at full
        demand until their shard drops below one wave).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"shard fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0 and not suffix:
            return self
        # A shard is a warp-slice of the whole kernel: member identity is
        # lost, so fused-member descriptors must not survive (they would
        # double-count work if the shard were later degree-reduced).
        meta = {k: v for k, v in self.meta.items() if k != "member_kernels"} if self.meta else {}
        new_warps = max(1, int(round(self.num_warps * fraction))) if self.num_warps else 0
        if self.warp_slots > 0 and self.num_warps > 0:
            new_waves = max(1.0, new_warps / self.warp_slots)
            new_body = self.wave_floor_us * new_waves
            sm = min(1.0, new_warps / self.warp_slots)
            dram_scale = sm / self.demand.sm if self.demand.sm > 0 else fraction
            dram = min(1.0, self.demand.dram * min(1.0, dram_scale))
        else:
            new_body = self.body_us * fraction
            sm = self.demand.sm * fraction
            dram = self.demand.dram * fraction
        return replace(
            self,
            name=self.name + suffix,
            duration_us=self.launch_us + new_body,
            demand=ResourceVector(sm=sm, dram=dram),
            num_warps=new_warps,
            meta=meta,
        )


def fuse_kernels(
    kernels: list[KernelDesc],
    spec: GpuSpec,
    launch_overhead_us: float | None = None,
) -> KernelDesc:
    """Horizontally fuse same-type kernels into one wider kernel.

    Horizontal fusion (§6.1) launches the threads of several independent
    same-type kernels together. The fused kernel:

    - pays a *single* launch overhead instead of one per kernel, which is
      where the speedup comes from (the member kernels are lightweight and
      launch-bound);
    - demands the *sum* of member resources (it is genuinely wider);
    - runs its member bodies concurrently -- the body time is the max
      member body, stretched once the aggregate demand saturates the
      device, never exceeding the serial sum.
    """
    if not kernels:
        raise ValueError("cannot fuse an empty kernel list")
    tags = {k.tag for k in kernels}
    if len(tags) != 1:
        raise ValueError(f"horizontal fusion requires a single operator type, got {sorted(tags)}")
    if len(kernels) == 1:
        return kernels[0]

    launch = spec.kernel_launch_us if launch_overhead_us is None else launch_overhead_us
    bodies = [k.body_us for k in kernels]
    total_warps = sum(k.num_warps for k in kernels)
    raw_sm = sum(k.demand.sm for k in kernels)
    raw_dram = sum(k.demand.dram for k in kernels)
    demand = ResourceVector(sm=min(1.0, raw_sm), dram=min(1.0, raw_dram))
    stretch = max(1.0, raw_sm, raw_dram)
    concurrent = max(bodies)
    serial = sum(bodies)
    body = min(serial, concurrent * stretch)
    tag = kernels[0].tag
    total_rows = sum(int(k.meta.get("rows", 0)) for k in kernels)
    return KernelDesc(
        name=f"fused_{tag}_x{len(kernels)}",
        duration_us=launch + body,
        demand=demand,
        num_warps=total_warps,
        tag=tag,
        launch_us=launch,
        warp_slots=spec.total_warp_slots,
        meta={
            "fused": [k.name for k in kernels],
            "members": len(kernels),
            "rows": total_rows,
            "member_kernels": tuple(kernels),
        },
    )


def shard_kernel(kernel: KernelDesc, first_fraction: float) -> tuple[KernelDesc, KernelDesc]:
    """Split a kernel into two shards covering ``first_fraction`` and the rest.

    Implements the primitive used by resource-aware fused-kernel sharding
    (§6.2): when a fused kernel is too large to co-run with the remaining
    overlapping capacity of a training stage, RAP shards it and schedules
    the remainder later. Both shards pay launch overhead, so the combined
    duration exceeds the original -- sharding is a cost the scheduler only
    accepts to avoid contention.
    """
    if not 0.0 < first_fraction < 1.0:
        raise ValueError(f"first_fraction must be in (0, 1), got {first_fraction}")
    first = kernel.scaled(first_fraction, suffix="#a")
    second = kernel.scaled(1.0 - first_fraction, suffix="#b")
    return first, second
