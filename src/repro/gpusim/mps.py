"""NVIDIA MPS (Multi-Process Service) sharing semantics.

The paper's MPS baseline runs two processes per GPU -- one training, one
preprocessing -- sharing a CUDA context through MPS so their kernels can
execute concurrently. MPS provides true spatial sharing (better than
priority streams, hence the paper's MPS baseline beating the stream
baseline) but still schedules preprocessing kernels sequentially with no
knowledge of the training stage's leftover resources.

Modelled as a :class:`repro.gpusim.device.CoRunPolicy` with a mild demand
inflation (MPS partitions SMs at thread-percentage granularity) and a small
per-kernel overhead (cross-process submission), with kernels released at
the top of the iteration exactly like the stream baseline.
"""

from __future__ import annotations

from typing import Sequence

from .device import GpuDevice, IterationResult, MPS_POLICY, StageProfile
from .kernel import KernelDesc

__all__ = ["run_under_mps", "MPS_POLICY"]


def run_under_mps(
    device: GpuDevice,
    stages: Sequence[StageProfile],
    kernels: Sequence[KernelDesc],
) -> IterationResult:
    """Co-run ``kernels`` with training via an MPS sibling process."""
    assignments = {0: list(kernels)} if kernels else {}
    return device.simulate_iteration(stages, assignments=assignments, policy=MPS_POLICY)
