"""GPU hardware specifications and resource-vector arithmetic.

The simulator models a GPU as a bundle of two contended, rate-shared
resources -- streaming-multiprocessor (SM) issue slots and DRAM bandwidth --
following the observation in the RAP paper (Fig. 1) that DLRM training
alternates between compute-bound MLP phases and memory-bound embedding
phases, leaving complementary slack for input preprocessing.

Everything downstream (kernels, training stages, co-running contention)
expresses its demand as a :class:`ResourceVector` of fractional SM and DRAM
utilization against a :class:`GpuSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GpuSpec",
    "ResourceVector",
    "A100_SPEC",
    "H100_SPEC",
    "V100_SPEC",
    "GPU_PROFILES",
    "resolve_profile",
    "warps_to_sm_fraction",
]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU's capacity.

    The defaults follow the NVIDIA A100-40GB used in the paper's DGX-A100
    testbed. Only quantities the co-running model actually consumes are
    included; anything else (L2 size, clocks, ...) is folded into the
    calibrated per-operator cost constants in ``repro.preprocessing.ops``.
    """

    name: str = "A100-40GB"
    num_sms: int = 108
    warps_per_sm: int = 64
    dram_bw_gbps: float = 1555.0
    mem_gb: float = 40.0
    fp32_tflops: float = 19.5
    nvlink_bw_gbps: float = 300.0
    pcie_bw_gbps: float = 32.0
    kernel_launch_us: float = 5.0

    @property
    def total_warp_slots(self) -> int:
        """Maximum number of resident warps across all SMs."""
        return self.num_sms * self.warps_per_sm

    @property
    def dram_bytes_per_us(self) -> float:
        """DRAM bandwidth expressed in bytes per microsecond."""
        return self.dram_bw_gbps * 1e9 / 1e6

    def h2d_time_us(self, nbytes: float) -> float:
        """Host-to-device copy time over PCIe for ``nbytes`` bytes."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.pcie_bw_gbps * 1e9 / 1e6)


A100_SPEC = GpuSpec()
H100_SPEC = GpuSpec(
    name="H100-80GB",
    num_sms=132,
    warps_per_sm=64,
    dram_bw_gbps=3350.0,
    mem_gb=80.0,
    fp32_tflops=66.9,
    nvlink_bw_gbps=450.0,
    pcie_bw_gbps=64.0,
    kernel_launch_us=4.0,
)
V100_SPEC = GpuSpec(
    name="V100-32GB",
    num_sms=80,
    warps_per_sm=64,
    dram_bw_gbps=900.0,
    mem_gb=32.0,
    fp32_tflops=14.0,
    nvlink_bw_gbps=150.0,
    pcie_bw_gbps=16.0,
)

#: Named GPU profiles for heterogeneous-fleet construction (scenario forge,
#: ``--fleet`` CLI). Keys are the short lowercase handles serialized into
#: scenarios and checkpoints; treat them as append-only identifiers.
GPU_PROFILES: dict[str, GpuSpec] = {
    "a100": A100_SPEC,
    "h100": H100_SPEC,
    "v100": V100_SPEC,
}


def resolve_profile(name: str) -> GpuSpec:
    """Look up a GPU profile by handle (``a100``) or full spec name."""
    key = name.strip().lower()
    if key in GPU_PROFILES:
        return GPU_PROFILES[key]
    for spec in GPU_PROFILES.values():
        if spec.name.lower() == key:
            return spec
    raise ValueError(
        f"unknown GPU profile {name!r}; expected one of {', '.join(sorted(GPU_PROFILES))}"
    )


def warps_to_sm_fraction(num_warps: float, spec: GpuSpec) -> float:
    """Convert a warp count into the fraction of SM issue capacity it needs.

    The mapping is intentionally simple -- occupancy effects beyond slot
    counting are folded into per-operator cost constants -- but it preserves
    the property exploited by Fig. 1b of the paper: kernel resource demand
    grows with input width until the device saturates.
    """
    if num_warps <= 0:
        return 0.0
    return min(1.0, num_warps / spec.total_warp_slots)


@dataclass(frozen=True)
class ResourceVector:
    """Fractional demand on (or utilization of) the two contended resources.

    Values are fractions of the device's peak; they may transiently exceed
    1.0 when expressing *demand* (oversubscription), in which case the
    contention model in :mod:`repro.gpusim.device` rate-shares the resource.
    """

    sm: float = 0.0
    dram: float = 0.0

    def __post_init__(self) -> None:
        if self.sm < 0 or self.dram < 0:
            raise ValueError(f"resource fractions must be non-negative, got {self}")
        if math.isnan(self.sm) or math.isnan(self.dram):
            raise ValueError("resource fractions must not be NaN")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.sm + other.sm, self.dram + other.dram)

    def scale(self, factor: float) -> "ResourceVector":
        """Return a copy with both components multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return ResourceVector(self.sm * factor, self.dram * factor)

    def clamp(self, limit: float = 1.0) -> "ResourceVector":
        """Return a copy with both components clipped to ``limit``."""
        return ResourceVector(min(self.sm, limit), min(self.dram, limit))

    @property
    def peak(self) -> float:
        """The dominant (bottleneck) component."""
        return max(self.sm, self.dram)

    def headroom(self) -> "ResourceVector":
        """Leftover capacity if this vector describes current utilization."""
        return ResourceVector(max(0.0, 1.0 - self.sm), max(0.0, 1.0 - self.dram))

    def fits_within(self, available: "ResourceVector") -> bool:
        """True when this demand fits inside ``available`` without contention."""
        return self.sm <= available.sm + 1e-12 and self.dram <= available.dram + 1e-12

    def contention_factor(self, other: "ResourceVector") -> float:
        """Slowdown from co-running this workload with ``other``.

        The rate-sharing model: when combined demand on a resource exceeds
        the device peak, both co-runners advance at ``1 / combined_demand``
        of their standalone rate on that resource. The overall slowdown is
        set by the most contended resource, and is 1.0 when the two demands
        fit side by side -- which is exactly RAP's contention-free target.
        """
        combined = self + other
        return max(1.0, combined.sm, combined.dram)

    def as_tuple(self) -> tuple[float, float]:
        return (self.sm, self.dram)


IDLE = ResourceVector(0.0, 0.0)
