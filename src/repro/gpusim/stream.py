"""CUDA priority-stream sharing semantics.

The handcrafted CUDA-stream baseline in the paper creates one extra stream
with lower priority than training and pushes every preprocessing kernel
onto it. The hardware scheduler then interleaves the two streams with no
awareness of the training stage's leftover resources: kernels are issued
as soon as their predecessor finishes, starting at the top of the
iteration, and contend with whatever training stage happens to be running.

We model that as a :class:`repro.gpusim.device.CoRunPolicy` with inflated
effective demand (time-sliced SM partitions are coarser than RAP's
capacity-sized kernels) plus a per-kernel issue overhead, with all kernels
released at stage 0 so they spill greedily through the iteration.
"""

from __future__ import annotations

from typing import Sequence

from .device import GpuDevice, IterationResult, STREAM_POLICY, StageProfile
from .kernel import KernelDesc

__all__ = ["run_on_low_priority_stream", "STREAM_POLICY"]


def run_on_low_priority_stream(
    device: GpuDevice,
    stages: Sequence[StageProfile],
    kernels: Sequence[KernelDesc],
) -> IterationResult:
    """Co-run ``kernels`` with training via a low-priority CUDA stream.

    All preprocessing kernels are enqueued at the beginning of the
    iteration; the stream drains them one at a time alongside whichever
    training stage is active, paying contention wherever their demand
    exceeds the stage's leftover.
    """
    assignments = {0: list(kernels)} if kernels else {}
    return device.simulate_iteration(stages, assignments=assignments, policy=STREAM_POLICY)
