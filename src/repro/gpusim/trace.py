"""Utilization timelines recorded by the device simulator.

Traces are what the paper's profiling figures are drawn from: Fig. 1a plots
SM and DRAM utilization across two training iterations, and Table 4 reports
average GPU/SM utilization at the latency turning points. The simulator
emits a :class:`UtilizationTrace` per simulated iteration; traces can be
concatenated, sampled onto a uniform grid, and summarized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .resources import ResourceVector

__all__ = ["TraceSegment", "UtilizationTrace"]


@dataclass(frozen=True)
class TraceSegment:
    """A half-open time interval ``[t0, t1)`` with constant utilization."""

    t0: float
    t1: float
    utilization: ResourceVector
    label: str = ""

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"segment ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class UtilizationTrace:
    """An append-only sequence of contiguous utilization segments."""

    def __init__(self, segments: Iterable[TraceSegment] = ()) -> None:
        self._segments: list[TraceSegment] = []
        for seg in segments:
            self.append(seg)

    def append(self, segment: TraceSegment) -> None:
        """Append a segment; it must not start before the trace ends."""
        if self._segments and segment.t0 < self._segments[-1].t1 - 1e-9:
            raise ValueError(
                f"segment starting at {segment.t0} overlaps trace ending at "
                f"{self._segments[-1].t1}"
            )
        if segment.duration <= 0:
            return
        self._segments.append(segment)

    def record(self, t0: float, t1: float, utilization: ResourceVector, label: str = "") -> None:
        """Convenience wrapper building and appending a segment."""
        self.append(TraceSegment(t0, t1, utilization, label))

    def extend(self, other: "UtilizationTrace") -> None:
        for seg in other:
            self.append(seg)

    def __iter__(self) -> Iterator[TraceSegment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> tuple[TraceSegment, ...]:
        return tuple(self._segments)

    @property
    def t_start(self) -> float:
        return self._segments[0].t0 if self._segments else 0.0

    @property
    def t_end(self) -> float:
        return self._segments[-1].t1 if self._segments else 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def sample(self, dt: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample the trace on a uniform grid of step ``dt``.

        Returns ``(times, sm_utilization, dram_utilization)`` arrays, the
        format the figure harnesses plot directly.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not self._segments:
            return np.array([]), np.array([]), np.array([])
        times = np.arange(self.t_start, self.t_end, dt)
        sm = np.zeros_like(times)
        dram = np.zeros_like(times)
        idx = 0
        for i, t in enumerate(times):
            while idx < len(self._segments) - 1 and t >= self._segments[idx].t1:
                idx += 1
            sm[i] = self._segments[idx].utilization.sm
            dram[i] = self._segments[idx].utilization.dram
        return times, sm, dram

    def mean_utilization(self, t0: float | None = None, t1: float | None = None) -> ResourceVector:
        """Time-weighted mean utilization over ``[t0, t1]`` (default: whole trace)."""
        lo = self.t_start if t0 is None else t0
        hi = self.t_end if t1 is None else t1
        if hi <= lo:
            return ResourceVector(0.0, 0.0)
        sm_area = 0.0
        dram_area = 0.0
        for seg in self._segments:
            a = max(lo, seg.t0)
            b = min(hi, seg.t1)
            if b > a:
                sm_area += seg.utilization.sm * (b - a)
                dram_area += seg.utilization.dram * (b - a)
        span = hi - lo
        return ResourceVector(sm_area / span, dram_area / span)

    def mean_peak_utilization(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted mean of ``max(sm, dram)`` -- the "GPU utilization"
        a coarse profiler reports: how much of the device's dominant
        resource is in use at each instant, averaged over the window."""
        lo = self.t_start if t0 is None else t0
        hi = self.t_end if t1 is None else t1
        if hi <= lo:
            return 0.0
        area = 0.0
        for seg in self._segments:
            a = max(lo, seg.t0)
            b = min(hi, seg.t1)
            if b > a:
                area += seg.utilization.peak * (b - a)
        return area / (hi - lo)

    def busy_fraction(self, threshold: float = 0.01) -> float:
        """Fraction of time either resource is above ``threshold``.

        This matches what ``nvidia-smi``-style "GPU utilization" reports
        (any kernel resident), as distinct from SM occupancy -- the paper's
        Table 4 reports both.
        """
        if not self._segments:
            return 0.0
        busy = sum(
            seg.duration
            for seg in self._segments
            if seg.utilization.sm > threshold or seg.utilization.dram > threshold
        )
        return busy / self.duration if self.duration > 0 else 0.0

    def leftover_area(self) -> ResourceVector:
        """Integral of (1 - utilization) over the trace, per resource.

        This is the geometric quantity behind RAP's overlapping capacity
        estimator (Fig. 5a): the shaded leftover area in the
        utilization-time graph, in units of (fraction x microseconds).
        """
        sm_area = 0.0
        dram_area = 0.0
        for seg in self._segments:
            sm_area += max(0.0, 1.0 - seg.utilization.sm) * seg.duration
            dram_area += max(0.0, 1.0 - seg.utilization.dram) * seg.duration
        return ResourceVector(sm_area, dram_area)

    def shifted(self, offset: float) -> "UtilizationTrace":
        """Return a copy with all timestamps shifted by ``offset``."""
        return UtilizationTrace(
            TraceSegment(seg.t0 + offset, seg.t1 + offset, seg.utilization, seg.label)
            for seg in self._segments
        )
