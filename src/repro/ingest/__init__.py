"""Pluggable streaming ingestion: sources, backpressure, pipelined feeding.

The ingest tier turns one URL-style spec string (``csv:///path?shard=3/8``,
``synthetic://kaggle?batch=4096``, ``replay:///log.jsonl?speed=2``, ...)
into a sharded, seekable batch generator, feeds it through a multi-use
:class:`PipelinedFeeder` (paper §6.3 inter-batch interleaving), and keeps
producer/consumer rates honest with a :class:`BackpressureQueue` whose
overload policies (``block`` / ``drop_oldest`` / ``spill_to_disk``) bound
in-flight memory. :class:`IngestMetrics` exposes the whole tier's health
in the telemetry registry. See DESIGN.md §14.
"""

from .feeder import PipelinedFeeder, QueueConfig
from .metrics import IngestMetrics
from .queue import OVERLOAD_POLICIES, BackpressureQueue, QueueClosed, QueueStats
from .shmio import (
    ShmBatchHandle,
    decode_batch,
    dispose_handle,
    encode_batch,
    shm_available,
)
from .sources import (
    BatchSource,
    CsvSource,
    JsonlSource,
    MixedSource,
    PacedSource,
    ParquetSource,
    ReplaySource,
    SyntheticBatchSource,
    SyntheticSource,
    build_source,
    source,
    write_csv,
    write_jsonl,
    write_replay_log,
)
from .spec import IngestError, SourceSpec, parse_spec, split_specs

__all__ = [
    "BackpressureQueue",
    "BatchSource",
    "CsvSource",
    "IngestError",
    "IngestMetrics",
    "JsonlSource",
    "MixedSource",
    "OVERLOAD_POLICIES",
    "PacedSource",
    "ParquetSource",
    "PipelinedFeeder",
    "QueueClosed",
    "QueueConfig",
    "QueueStats",
    "ReplaySource",
    "ShmBatchHandle",
    "SourceSpec",
    "SyntheticBatchSource",
    "SyntheticSource",
    "build_source",
    "decode_batch",
    "dispose_handle",
    "encode_batch",
    "parse_spec",
    "shm_available",
    "source",
    "split_specs",
    "write_csv",
    "write_jsonl",
    "write_replay_log",
]
