"""Inter-batch pipelined feeding (§6.3) on top of leased worker pools.

:class:`PipelinedFeeder` prepares batch *i+1* in the background while the
consumer works on batch *i* — the paper's inter-batch interleaving on real
data. This rewrite fixes the original's silent single-use lifecycle: the
old ``__iter__`` called ``close()`` in its ``finally``, so ``list(f);
list(f)`` raised a bare ``RuntimeError: feeder is closed``. Now every
``__iter__`` leases a *fresh* pool (and, in queue mode, a fresh
:class:`~repro.ingest.queue.BackpressureQueue`); exhausting or abandoning
the iterator releases the lease but leaves the feeder reusable. Only the
explicit ``close()`` / ``with``-exit ends the lifecycle, after which
iteration raises ``RuntimeError`` as before.

Guarantees (unchanged from the original, plus re-iterability):

- **In-order delivery** — batch ``i`` always precedes ``i+1``.
- **Bounded lookahead** — at most ``depth`` batches in flight; with a
  queue, in-memory buffering is additionally bounded by the queue's
  overload policy.
- **Clean, bounded shutdown** — exhaustion, consumer ``break``, producer
  failure, or ``close()`` always releases the lease's workers, waiting
  only for batches already started.
- **Exception propagation** — a producer failure re-raises at the failed
  batch's position: thread mode with the original traceback, process mode
  with the remote traceback chained via ``__cause__``.

``produce`` is any ``index -> Batch`` callable — typically a
:class:`repro.ingest.sources.BatchSource`, whose ``__len__`` also supplies
``num_batches``. This module deliberately never imports the sources (duck
typing only), so ``repro.ingest`` stays cycle-free.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .metrics import IngestMetrics
from .queue import BackpressureQueue, QueueClosed

__all__ = ["PipelinedFeeder", "QueueConfig"]


@dataclass(frozen=True)
class QueueConfig:
    """Recipe for the per-lease backpressure queue (see
    :class:`~repro.ingest.queue.BackpressureQueue` for semantics)."""

    capacity: int = 4
    policy: str = "block"
    high_watermark: int | None = None
    low_watermark: int | None = None
    spill_dir: str | None = None

    def build(self, dispose=None) -> BackpressureQueue:
        return BackpressureQueue(
            self.capacity,
            policy=self.policy,
            high_watermark=self.high_watermark,
            low_watermark=self.low_watermark,
            spill_dir=self.spill_dir,
            dispose=dispose,
        )


class _Failure:
    """Queue-borne wrapper for a producer exception (re-raised in order)."""

    __slots__ = ("index", "exc")

    def __init__(self, index: int, exc: BaseException) -> None:
        self.index = index
        self.exc = exc


class _Sentinel:
    """End-of-epoch marker.

    The spill_to_disk queue policy pickles whatever it holds, so the marker
    must keep its identity across a pickle round trip — a bare ``object()``
    would come back as a different instance and the consumer would wait for
    an end-of-epoch that never arrives.
    """

    __slots__ = ()

    def __reduce__(self):
        return (_get_sentinel, ())


_SENTINEL = _Sentinel()


def _get_sentinel() -> "_Sentinel":
    return _SENTINEL


class _ShmProducer:
    """Picklable producer wrapper: encode each batch into shared memory.

    Runs in the pool worker. The consumer gets a tiny
    :class:`~repro.ingest.shmio.ShmBatchHandle` over the result pipe
    instead of a pickled batch; anything that is not a batch (or that
    fails to encode) falls back to the plain pickle path transparently.
    """

    def __init__(self, produce) -> None:
        self.produce = produce

    def __call__(self, index: int):
        from repro.preprocessing.data import Batch

        from .shmio import encode_batch

        out = self.produce(index)
        if isinstance(out, Batch):
            try:
                return encode_batch(out)
            except Exception:  # pragma: no cover - e.g. /dev/shm full
                return out
        return out


class _Lease:
    """One iteration's worth of resources: pool, queue, coordinator."""

    def __init__(self, feeder: "PipelinedFeeder") -> None:
        self.feeder = feeder
        if feeder.mode == "thread":
            self.pool: Executor = ThreadPoolExecutor(
                max_workers=feeder.workers, thread_name_prefix="rap-feeder"
            )
        else:
            if feeder.shm_handoff:
                # Workers must inherit the parent's resource tracker so
                # segment registrations retire where the unlinks happen.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            self.pool = ProcessPoolExecutor(max_workers=feeder.workers)
        self.queue: BackpressureQueue | None = (
            feeder.queue_config.build(dispose=feeder._dispose)
            if feeder.queue_config is not None
            else None
        )
        self.stop = threading.Event()
        self.coordinator: threading.Thread | None = None
        self.started_at = time.perf_counter()
        self._released = False

    def start_coordinator(self) -> None:
        assert self.queue is not None
        self.coordinator = threading.Thread(
            target=self._coordinate, name="rap-feeder-coordinator", daemon=True
        )
        self.coordinator.start()

    def _coordinate(self) -> None:
        """Keep ≤ depth producer futures in flight; enqueue results in order."""
        feeder, queue = self.feeder, self.queue
        assert queue is not None
        produce = feeder._producer()
        pending: deque = deque()
        next_index = 0
        try:
            while (pending or next_index < feeder.num_batches) and not self.stop.is_set():
                while next_index < feeder.num_batches and len(pending) < feeder.depth:
                    pending.append((next_index, self.pool.submit(produce, next_index)))
                    next_index += 1
                index, fut = pending.popleft()
                try:
                    item = fut.result()
                except BaseException as exc:  # noqa: BLE001 - forwarded to consumer
                    queue.put(_Failure(index, exc))
                    return
                try:
                    queue.put(item)
                except QueueClosed:
                    # Closed while we were blocked in put(): the popped item
                    # would otherwise vanish holding its shm segment.
                    feeder._dispose(item)
                    raise
            queue.put(_SENTINEL)
        except QueueClosed:
            pass  # consumer went away; nothing left to deliver to
        except BaseException as exc:  # noqa: BLE001 - never strand the consumer
            try:
                queue.put(_Failure(next_index, exc))
            except QueueClosed:
                pass
        finally:
            for _, fut in pending:
                fut.cancel()
            # A future that already ran (or finishes during pool shutdown)
            # may hold an undecoded shm handle; release its segment.
            for _, fut in pending:
                try:
                    item = fut.result(timeout=30.0)
                except BaseException:  # noqa: BLE001 - cancelled/failed: nothing to free
                    continue
                feeder._dispose(item)

    def release(self) -> None:
        """Tear the lease down; waits only for already-started batches."""
        if self._released:
            return
        self._released = True
        self.stop.set()
        if self.queue is not None:
            # Wakes a coordinator blocked in put() and drops buffered items.
            self.queue.drain_and_discard()
        self.pool.shutdown(wait=True, cancel_futures=True)
        if self.coordinator is not None:
            self.coordinator.join(timeout=30.0)
        metrics = self.feeder.metrics
        if metrics is not None and self.queue is not None:
            wall = time.perf_counter() - self.started_at
            metrics.absorb_queue_stats(self.queue.stats(), wall_s=wall)


class PipelinedFeeder:
    """Depth-``d`` background batch producer with a multi-use lifecycle.

    Parameters
    ----------
    produce:
        ``index -> batch`` callable (a :class:`BatchSource` qualifies).
        Must be picklable in ``process`` mode.
    num_batches:
        Batches per iteration; defaults to ``len(produce)`` when the
        producer is sized (every ingest source is).
    depth:
        Maximum batches in flight (2 = classic double buffering).
    mode:
        ``"thread"`` or ``"process"``.
    workers:
        Worker count of each leased pool.
    queue:
        Optional :class:`QueueConfig`. Without it, delivery is the direct
        futures window (producers can never run more than ``depth`` ahead);
        with it, results flow through a fresh
        :class:`~repro.ingest.queue.BackpressureQueue` per iteration, so
        overload policies (``block`` / ``drop_oldest`` / ``spill_to_disk``)
        and stall accounting apply.
    metrics:
        Optional :class:`~repro.ingest.metrics.IngestMetrics`; pass one
        bound to the run's telemetry registry to expose ingest health.
    """

    def __init__(
        self,
        produce: Callable[[int], Any],
        num_batches: int | None = None,
        depth: int = 2,
        mode: str = "thread",
        workers: int = 1,
        queue: QueueConfig | None = None,
        metrics: IngestMetrics | None = None,
    ) -> None:
        if num_batches is None:
            try:
                num_batches = len(produce)  # type: ignore[arg-type]
            except TypeError:
                raise ValueError(
                    "num_batches not given and the producer has no len(); "
                    "pass num_batches explicitly"
                ) from None
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        if depth < 1:
            raise ValueError("depth must be at least 1 (2 = double buffering)")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.produce = produce
        self.num_batches = num_batches
        self.depth = depth
        self.mode = mode
        self.workers = workers
        self.queue_config = queue
        self.metrics = metrics
        if mode == "process":
            from .shmio import shm_available

            self.shm_handoff = shm_available()
        else:
            self.shm_handoff = False
        self._closed = False
        self._leases: set[_Lease] = set()
        self._lease_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "PipelinedFeeder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """End the feeder's lifecycle: release every live lease and refuse
        further iteration. Idempotent; never leaks workers."""
        self._closed = True
        with self._lease_lock:
            leases, self._leases = list(self._leases), set()
        for lease in leases:
            lease.release()

    @property
    def closed(self) -> bool:
        return self._closed

    def _producer(self) -> Callable[[int], Any]:
        """The callable actually submitted to the pool.

        Thread mode wraps ``produce`` with wall-time accounting; process
        mode submits it raw (the wrapper's metrics objects aren't
        picklable, and remote timing would be lost anyway).
        """
        metrics = self.metrics
        if self.mode != "thread":
            if self.shm_handoff:
                # Ship a shared-memory handle over the result pipe instead
                # of a pickled batch (decoded in _materialize).
                return _ShmProducer(self.produce)
            return self.produce
        if metrics is None:
            return self.produce

        def produce_timed(index: int):
            start = time.perf_counter()
            out = self.produce(index)
            metrics.record_produce(time.perf_counter() - start)
            return out

        return produce_timed

    def _materialize(self, item):
        """Decode a shared-memory handle into a batch; pass anything else."""
        from .shmio import ShmBatchHandle, decode_batch

        if isinstance(item, ShmBatchHandle):
            return decode_batch(item)
        return item

    def _dispose(self, item) -> None:
        """Release an item that will never reach the consumer."""
        from .shmio import ShmBatchHandle, dispose_handle

        if isinstance(item, ShmBatchHandle):
            dispose_handle(item)

    def _lease(self) -> _Lease:
        if self._closed:
            raise RuntimeError("feeder is closed")
        lease = _Lease(self)
        with self._lease_lock:
            # close() may have won the race; don't strand a fresh pool.
            if self._closed:
                lease.release()
                raise RuntimeError("feeder is closed")
            self._leases.add(lease)
        return lease

    def _retire(self, lease: _Lease) -> None:
        with self._lease_lock:
            self._leases.discard(lease)
        lease.release()

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        if self.queue_config is None:
            return self._iter_futures()
        return self._iter_queue()

    def _iter_futures(self) -> Iterator[Any]:
        """Direct futures window: the original delivery path, now per-lease."""
        lease = self._lease()
        pending: deque = deque()
        next_index = 0
        produce = self._producer()
        try:
            while pending or next_index < self.num_batches:
                while next_index < self.num_batches and len(pending) < self.depth:
                    pending.append(lease.pool.submit(produce, next_index))
                    next_index += 1
                # .result() re-raises a producer exception: thread mode with
                # the original traceback, process mode with the remote
                # traceback as __cause__.
                batch = self._materialize(pending.popleft().result())
                if self.metrics is not None:
                    self.metrics.record_delivery()
                yield batch
            if self.metrics is not None:
                self.metrics.record_epoch()
        finally:
            # Reached on exhaustion, consumer break, or producer failure:
            # release THIS lease only — the feeder itself stays open.
            for fut in pending:
                fut.cancel()
            self._retire(lease)
            # Anything that finished producing but was never delivered may
            # hold an undecoded shm handle; release those segments now that
            # the pool has drained (retire waits for started batches).
            for fut in pending:
                try:
                    item = fut.result(timeout=0)
                except BaseException:  # noqa: BLE001 - cancelled/failed
                    continue
                self._dispose(item)

    def _iter_queue(self) -> Iterator[Any]:
        """Queue delivery: a coordinator keeps the window full and the
        backpressure queue applies the overload policy between it and us."""
        lease = self._lease()
        assert lease.queue is not None
        lease.start_coordinator()
        try:
            while True:
                try:
                    item = lease.queue.get()
                except QueueClosed:
                    break  # closed underneath us (feeder.close() mid-iteration)
                if item is _SENTINEL:
                    if self.metrics is not None:
                        self.metrics.record_epoch()
                    break
                if isinstance(item, _Failure):
                    # Thread mode: the original exception object, original
                    # traceback. Process mode: already carries the remote
                    # traceback via __cause__ (ProcessPoolExecutor semantics).
                    raise item.exc
                if self.metrics is not None:
                    self.metrics.record_delivery()
                yield self._materialize(item)
        finally:
            self._retire(lease)
