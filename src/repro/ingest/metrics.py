"""Ingest telemetry: the feeder/queue counters as registry metric families.

`IngestMetrics` binds the ingest tier to a
:class:`repro.telemetry.registry.MetricsRegistry` (lazily imported so
`repro.ingest` never drags telemetry in at import time). Families, all
prefixed ``rap_ingest_``:

- ``batches_total`` / ``produced_total`` — batches delivered to the
  consumer vs produced upstream (the gap is drops still in flight).
- ``produce_seconds_total`` — producer-side wall time, for overlap math.
- ``queue_depth`` (gauge) / ``queue_peak_depth`` — live and high-water
  in-memory depth.
- ``queue_wait_seconds`` (histogram) — enqueue-to-dequeue latency.
- ``drops_total`` / ``spills_total`` / ``spill_restores_total`` — overload
  policy activity.
- ``producer_stall_seconds_total`` / ``consumer_stall_seconds_total`` and
  the derived ``producer_stall_ratio`` / ``consumer_stall_ratio`` gauges —
  who is waiting on whom (consumer-heavy ⇒ ingest is the bottleneck).
- ``epochs_total`` — completed iterations of the feeder (each one a
  fresh lease; >1 proves the multi-use lifecycle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.registry import MetricsRegistry

    from .queue import QueueStats

__all__ = ["IngestMetrics", "INGEST_WAIT_BUCKETS_S"]

# Enqueue-to-dequeue waits span "consumer was starving" (~0) to "queue sat
# full for whole batches" (seconds); log-spaced like the latency buckets.
INGEST_WAIT_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class IngestMetrics:
    """Ingest counters registered on a metrics registry.

    With ``registry=None`` a private registry is created, so the feeder
    can always record unconditionally; pass ``telemetry.registry`` to
    surface the families in the run's Prometheus/JSONL artifacts.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        if registry is None:
            from repro.telemetry.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self.batches_total = registry.counter(
            "rap_ingest_batches_total", "Batches delivered to the consumer."
        )
        self.produced_total = registry.counter(
            "rap_ingest_produced_total", "Batches produced by the ingest workers."
        )
        self.produce_seconds_total = registry.counter(
            "rap_ingest_produce_seconds_total",
            "Wall-clock seconds spent producing batches.",
        )
        self.queue_depth = registry.gauge(
            "rap_ingest_queue_depth", "Current in-memory backpressure queue depth."
        )
        self.queue_peak_depth = registry.gauge(
            "rap_ingest_queue_peak_depth", "Peak in-memory backpressure queue depth."
        )
        self.queue_wait = registry.histogram(
            "rap_ingest_queue_wait_seconds",
            "Enqueue-to-dequeue wait per batch.",
            buckets=INGEST_WAIT_BUCKETS_S,
        )
        self.drops_total = registry.counter(
            "rap_ingest_drops_total", "Batches dropped by the drop_oldest policy."
        )
        self.spills_total = registry.counter(
            "rap_ingest_spills_total", "Batches spilled to disk above the high watermark."
        )
        self.spill_restores_total = registry.counter(
            "rap_ingest_spill_restores_total", "Spilled batches restored into memory."
        )
        self.producer_stall_seconds = registry.counter(
            "rap_ingest_producer_stall_seconds_total",
            "Seconds producers spent blocked on a full queue.",
        )
        self.consumer_stall_seconds = registry.counter(
            "rap_ingest_consumer_stall_seconds_total",
            "Seconds the consumer spent blocked on an empty queue.",
        )
        self.producer_stall_ratio = registry.gauge(
            "rap_ingest_producer_stall_ratio",
            "Producer stall seconds / lease wall seconds (last completed lease).",
        )
        self.consumer_stall_ratio = registry.gauge(
            "rap_ingest_consumer_stall_ratio",
            "Consumer stall seconds / lease wall seconds (last completed lease).",
        )
        self.epochs_total = registry.counter(
            "rap_ingest_epochs_total", "Completed feeder iterations (leases)."
        )

    # -- feeder hooks ----------------------------------------------------

    def record_produce(self, seconds: float) -> None:
        self.produced_total.inc()
        self.produce_seconds_total.inc(seconds)

    def record_delivery(self) -> None:
        self.batches_total.inc()

    def absorb_queue_stats(self, stats: "QueueStats", *, wall_s: float) -> None:
        """Fold one finished lease's queue counters into the registry."""
        self.queue_depth.set(stats.depth)
        self.queue_peak_depth.set(stats.peak_depth)
        for wait in stats.wait_samples:
            self.queue_wait.observe(wait)
        if stats.drops:
            self.drops_total.inc(stats.drops)
        if stats.spills:
            self.spills_total.inc(stats.spills)
        if stats.restores:
            self.spill_restores_total.inc(stats.restores)
        if stats.producer_stall_s:
            self.producer_stall_seconds.inc(stats.producer_stall_s)
        if stats.consumer_stall_s:
            self.consumer_stall_seconds.inc(stats.consumer_stall_s)
        if wall_s > 0:
            self.producer_stall_ratio.set(stats.producer_stall_s / wall_s)
            self.consumer_stall_ratio.set(stats.consumer_stall_s / wall_s)

    def record_epoch(self) -> None:
        self.epochs_total.inc()
