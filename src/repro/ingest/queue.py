"""Bounded hand-off queue with watermarks and overload policies.

The :class:`BackpressureQueue` sits between the feeder's producer pool and
the training loop. It is a plain bounded FIFO until the producer outruns
the consumer; what happens then is the *overload policy*:

- ``block`` — the producer stalls in :meth:`put` until the consumer
  drains below capacity. Stall time is measured and counted: a high
  producer-stall ratio means ingest is over-provisioned, a high
  consumer-stall ratio means it is the bottleneck (the tf.data-service
  disaggregation signal).
- ``drop_oldest`` — the head of the queue is discarded to admit the new
  item. In-flight memory stays bounded at ``capacity``; drops are counted
  so sweeps can score staleness against throughput.
- ``spill_to_disk`` — above the high watermark, new items overflow to
  numbered pickle files; once the in-memory depth drains below the low
  watermark, spilled items are restored *in FIFO order*. Memory stays
  bounded at the high watermark while nothing is lost.

`close()` wakes every waiter with :class:`QueueClosed`; a closed queue
still drains whatever it holds (memory first, then spill files) before
`get` raises, so a finished producer's tail is never lost.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BackpressureQueue", "QueueClosed", "QueueStats", "OVERLOAD_POLICIES"]

OVERLOAD_POLICIES = ("block", "drop_oldest", "spill_to_disk")


class QueueClosed(Exception):
    """Raised by put/get once the queue is closed (and, for get, drained)."""


@dataclass
class QueueStats:
    """Point-in-time counters for one queue; all monotonic except depth."""

    depth: int = 0
    peak_depth: int = 0
    puts: int = 0
    gets: int = 0
    drops: int = 0
    spills: int = 0
    restores: int = 0
    producer_stall_s: float = 0.0
    consumer_stall_s: float = 0.0
    wait_samples: list[float] = field(default_factory=list)


class BackpressureQueue:
    """Bounded FIFO with high/low watermarks and a pluggable overload policy.

    ``capacity`` bounds the in-memory depth. For ``spill_to_disk`` the
    high watermark (default: capacity) is where spilling starts and the
    low watermark (default: ``max(1, capacity // 2)``) is where restore
    resumes; for the other policies the watermarks are inert.
    """

    def __init__(
        self,
        capacity: int,
        *,
        policy: str = "block",
        high_watermark: int | None = None,
        low_watermark: int | None = None,
        spill_dir: str | None = None,
        dispose=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {policy!r} (choose from {', '.join(OVERLOAD_POLICIES)})"
            )
        self.capacity = capacity
        self.policy = policy
        self.high_watermark = capacity if high_watermark is None else high_watermark
        self.low_watermark = (
            max(1, capacity // 2) if low_watermark is None else low_watermark
        )
        if not 1 <= self.high_watermark <= capacity:
            raise ValueError(
                f"high watermark {self.high_watermark} must be in [1, capacity={capacity}]"
            )
        if not 0 <= self.low_watermark <= self.high_watermark:
            raise ValueError(
                f"low watermark {self.low_watermark} must be in [0, high={self.high_watermark}]"
            )
        self._items: deque[tuple[float, Any]] = deque()
        self._dispose = dispose
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._stats = QueueStats()
        self._spill_dir = spill_dir
        self._owns_spill_dir = False
        self._spill_seq = 0          # next file number to write
        self._spill_head = 0         # next file number to restore
        self._restoring = False      # spill backlog exists; drain to low watermark

    # -- core operations -----------------------------------------------

    def put(self, item: Any) -> None:
        """Enqueue ``item``, applying the overload policy when full."""
        with self._lock:
            if self._closed:
                raise QueueClosed("put on closed queue")
            self._stats.puts += 1
            if self.policy == "spill_to_disk":
                # Once a spill backlog exists, everything new spills too so
                # FIFO order survives (memory holds the oldest items).
                if len(self._items) >= self.high_watermark or self._spill_head < self._spill_seq:
                    self._spill(item)
                    return
            elif len(self._items) >= self.capacity:
                if self.policy == "drop_oldest":
                    _, dropped = self._items.popleft()
                    self._stats.drops += 1
                    self._dispose_item(dropped)
                else:  # block
                    start = time.perf_counter()
                    while len(self._items) >= self.capacity and not self._closed:
                        self._not_full.wait()
                    self._stats.producer_stall_s += time.perf_counter() - start
                    if self._closed:
                        raise QueueClosed("put on closed queue")
            self._append(item)
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue the oldest item; blocks (counted as consumer stall) when
        empty. Raises :class:`QueueClosed` once closed *and* drained, or
        ``TimeoutError`` if ``timeout`` elapses first."""
        with self._lock:
            start = time.perf_counter()
            deadline = None if timeout is None else start + timeout
            while not self._items:
                if self._maybe_restore_locked():
                    continue
                if self._closed:
                    raise QueueClosed("get on closed, drained queue")
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    self._stats.consumer_stall_s += time.perf_counter() - start
                    raise TimeoutError(f"queue get timed out after {timeout}s")
                self._not_empty.wait(remaining)
            waited = time.perf_counter() - start
            self._stats.consumer_stall_s += waited
            enq_time, item = self._items.popleft()
            self._stats.gets += 1
            self._stats.depth = len(self._items)
            self._stats.wait_samples.append(time.perf_counter() - enq_time)
            self._maybe_restore_locked()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Stop accepting puts and wake all waiters. Idempotent; remaining
        items (memory + spill) stay gettable until drained."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def drain_and_discard(self) -> None:
        """Close, drop everything still queued, and delete spill files.

        Every discarded item (in-memory and spilled) passes through the
        ``dispose`` hook first, so items owning external resources --
        e.g. shared-memory batch handles -- are released, not leaked.
        """
        self.close()
        with self._lock:
            for _, item in self._items:
                self._dispose_item(item)
            self._items.clear()
            self._stats.depth = 0
            self._cleanup_spill_locked()

    # -- introspection ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> QueueStats:
        """A copy of the counters (wait_samples shared copy-on-read)."""
        with self._lock:
            snap = QueueStats(
                depth=len(self._items),
                peak_depth=self._stats.peak_depth,
                puts=self._stats.puts,
                gets=self._stats.gets,
                drops=self._stats.drops,
                spills=self._stats.spills,
                restores=self._stats.restores,
                producer_stall_s=self._stats.producer_stall_s,
                consumer_stall_s=self._stats.consumer_stall_s,
                wait_samples=list(self._stats.wait_samples),
            )
            return snap

    # -- internals (call with lock held) ---------------------------------

    def _dispose_item(self, item: Any) -> None:
        if self._dispose is None:
            return
        try:
            self._dispose(item)
        except Exception:  # pragma: no cover - dispose must never wedge the queue
            pass

    def _append(self, item: Any) -> None:
        self._items.append((time.perf_counter(), item))
        self._stats.depth = len(self._items)
        self._stats.peak_depth = max(self._stats.peak_depth, len(self._items))

    def _ensure_spill_dir_locked(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="rap-ingest-spill-")
            self._owns_spill_dir = True
        else:
            os.makedirs(self._spill_dir, exist_ok=True)
        return self._spill_dir

    def _spill_path(self, seq: int) -> str:
        assert self._spill_dir is not None
        return os.path.join(self._spill_dir, f"spill-{seq:08d}.pkl")

    def _spill(self, item: Any) -> None:
        directory = self._ensure_spill_dir_locked()
        path = os.path.join(directory, f"spill-{self._spill_seq:08d}.pkl")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(item, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._spill_seq += 1
        self._stats.spills += 1

    def _maybe_restore_locked(self) -> bool:
        """Refill memory from spill files once depth drains below the low
        watermark; returns True if anything was restored."""
        if self._spill_head >= self._spill_seq:
            return False
        if len(self._items) > self.low_watermark:
            return False
        restored = False
        while self._spill_head < self._spill_seq and len(self._items) < self.high_watermark:
            path = self._spill_path(self._spill_head)
            with open(path, "rb") as fh:
                item = pickle.load(fh)
            os.unlink(path)
            self._spill_head += 1
            self._append(item)
            self._stats.restores += 1
            restored = True
        if restored:
            self._not_empty.notify_all()
        return restored

    def _cleanup_spill_locked(self) -> None:
        while self._spill_head < self._spill_seq:
            path = self._spill_path(self._spill_head)
            if self._dispose is not None:
                try:
                    with open(path, "rb") as fh:
                        self._dispose_item(pickle.load(fh))
                except OSError:
                    pass
            try:
                os.unlink(path)
            except OSError:
                pass
            self._spill_head += 1
        if self._owns_spill_dir and self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._owns_spill_dir = False
