"""Shared-memory batch handoff for process-mode ingest (DESIGN.md §17).

Process-mode feeding previously shipped every produced batch back through
the ``ProcessPoolExecutor`` result pipe -- a full pickle round trip per
batch. This module replaces the payload with a tiny
:class:`ShmBatchHandle`: the producer encodes the batch into one named
``multiprocessing.shared_memory`` segment and only the handle (name +
column layout) crosses the pipe; the parent attaches, **unlinks
immediately** (the mapping survives; the name cannot leak), and rebuilds
the batch as zero-copy views.

Lifecycle discipline mirrors :mod:`repro.preprocessing.parallel`: the
segment name is registered with the parent's resource tracker (workers
are forked after ``ensure_running``), and exactly one ``unlink`` per name
retires it -- either :func:`decode_batch` on delivery or
:func:`dispose_handle` on any path that discards an undecoded handle
(drop-oldest eviction, lease teardown, spilled-file cleanup).

Availability is probed once per feeder: POSIX ``/dev/shm``, fork start
method, and not opted out via ``RAP_DISABLE_SHM_INGEST``. When
unavailable the feeder transparently falls back to the pickle path.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os

import numpy as np

from ..preprocessing.data import Batch
from ..preprocessing.parallel import (
    _decode_input_batch,
    _release_fd,
    attach_segment,
    leaked_segments,
    unlink_segment,
)

__all__ = [
    "DISABLE_ENV",
    "SHM_PREFIX",
    "ShmBatchHandle",
    "decode_batch",
    "dispose_handle",
    "encode_batch",
    "shm_available",
]

DISABLE_ENV = "RAP_DISABLE_SHM_INGEST"
SHM_PREFIX = "rap-ing"

_ALIGN = 64
_handle_ids = itertools.count()


def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def shm_available() -> bool:
    """True when the shared-memory handoff can be used safely.

    Requires POSIX ``/dev/shm`` (name-based sweeps need it), the ``fork``
    start method (workers must inherit the parent's resource tracker so
    registrations retire in one place), and no ``RAP_DISABLE_SHM_INGEST``
    opt-out.
    """
    if os.environ.get(DISABLE_ENV):
        return False
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX
        return False
    return multiprocessing.get_start_method(allow_none=True) in (None, "fork")


class ShmBatchHandle:
    """Picklable pointer to one encoded batch: segment name + layout."""

    def __init__(self, name: str, layout: dict, nbytes: int) -> None:
        self.name = name
        self.layout = layout
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShmBatchHandle({self.name!r}, {len(self.layout)} columns, {self.nbytes} bytes)"


def encode_batch(batch: Batch, prefix: str = SHM_PREFIX) -> ShmBatchHandle:
    """Copy ``batch`` into a fresh named segment (producer side).

    The layout format is shared with the parallel engine's input path
    (:func:`repro.preprocessing.parallel._decode_input_batch`), so decode
    is the exact same trusted-view reconstruction.
    """
    from multiprocessing import shared_memory

    layout: dict[str, tuple] = {}
    offset = 0
    for name in sorted(batch.dense):
        values = batch.dense[name].values
        layout[name] = ("dense", values.dtype.str, offset, len(values))
        offset += _align(values.nbytes)
    for name in sorted(batch.sparse):
        col = batch.sparse[name]
        o_off = offset
        offset += _align(col.offsets.nbytes)
        v_off = offset
        offset += _align(col.values.nbytes)
        layout[name] = (
            "sparse",
            o_off,
            len(col.offsets),
            col.values.dtype.str,
            v_off,
            len(col.values),
            col.hash_size,
        )
    seg_name = f"{prefix}-{os.getpid()}-{next(_handle_ids)}"
    seg = shared_memory.SharedMemory(name=seg_name, create=True, size=max(offset, 1))
    try:
        for name, entry in layout.items():
            if entry[0] == "dense":
                _, dtype, off, length = entry
                _put(seg, off, np.dtype(dtype), batch.dense[name].values)
            else:
                col = batch.sparse[name]
                _, o_off, _, v_dtype, v_off, _, _ = entry
                _put(seg, o_off, np.dtype(np.int64), col.offsets)
                _put(seg, v_off, np.dtype(v_dtype), col.values)
    finally:
        # The producer never reads the segment back; drop its mapping
        # (the parent holds the only long-lived attachment).
        seg.close()
    return ShmBatchHandle(seg_name, layout, offset)


def _put(seg, offset: int, dtype: np.dtype, values: np.ndarray) -> None:
    if len(values) == 0:
        return
    view = np.frombuffer(seg.buf, dtype=dtype, count=len(values), offset=offset)
    np.copyto(view, values, casting="no")
    del view  # the exported pointer must die before seg.close()


def decode_batch(handle: ShmBatchHandle) -> Batch:
    """Attach, unlink, and rebuild the batch as zero-copy views (parent).

    Unlinking up front retires the name (and its resource-tracker
    registration) the moment the batch is delivered; the mapping -- and
    therefore every column view -- stays valid until the views die.
    """
    shm = attach_segment(handle.name)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with a sweep
        pass
    batch = _decode_input_batch(shm, handle.layout)
    _release_fd(shm)
    return batch


def dispose_handle(handle: ShmBatchHandle) -> bool:
    """Unlink an undecoded handle's segment (drop/teardown paths)."""
    return unlink_segment(handle.name)


def leaked_ingest_segments() -> list[str]:
    """Names under ``/dev/shm`` from the ingest handoff (for leak tests)."""
    return leaked_segments(SHM_PREFIX + "-")
