"""Pluggable batch sources: one URL-style spec string per source.

Every source is a *sharded, seekable batch generator*: ``batch(i)`` is a
pure function of the index (safe to retry, safe to fan out across a
pool), ``len(source)`` is the number of batches this shard owns, and
``delay_s(i)`` is the arrival pacing (0 for files, the recorded
inter-batch gap for ``replay:``). The feeder calls ``source(i)`` which
sleeps the pacing delay and then materializes the batch — that sleep is
exactly the I/O latency the pipelined feeder exists to hide (paper §6.3).

Schemes
-------
- ``synthetic://kaggle?batch=4096&batches=64&seed=7&io_delay_ms=12`` —
  the deterministic Criteo-schema generator.
- ``csv:///path/day0.csv?batch=512&shard=3/8`` — header names columns
  ``dense_*`` / ``sparse_*``; sparse cells are space-separated ids.
- ``jsonl:///path/rows.jsonl?batch=256`` — schema header line, then one
  ``{"d": [...], "s": [[...], ...]}`` object per row.
- ``parquet:///path/data.parquet?batch=1024`` — gated on pyarrow, which
  this environment may not ship; the error says so instead of tracebacking.
- ``replay:///path/run.replay.jsonl?speed=2&pace=1`` — recorded
  Criteo-schema batch log with original timestamps; replayed at
  ``1/speed`` of recorded pace (``pace=0`` disables sleeping).

``build_source("specA,specB")`` joins several specs into a
:class:`MixedSource` that samples members by their ``weight=`` params,
deterministically from a seed. :class:`PacedSource` overlays an explicit
per-batch delay schedule (e.g. a forge arrival curve) on any source.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.preprocessing.data import (
    KAGGLE_SCHEMA,
    TERABYTE_SCHEMA,
    Batch,
    CriteoSchema,
    DenseColumn,
    SparseColumn,
    SyntheticCriteoDataset,
)

from .spec import IngestError, SourceSpec, parse_spec, split_specs

__all__ = [
    "BatchSource",
    "SyntheticSource",
    "SyntheticBatchSource",
    "CsvSource",
    "JsonlSource",
    "ParquetSource",
    "ReplaySource",
    "MixedSource",
    "PacedSource",
    "source",
    "build_source",
    "write_csv",
    "write_jsonl",
    "write_replay_log",
]

_MIN_HASH_SIZE = 1000


class BatchSource:
    """Base protocol: seekable batches plus optional arrival pacing."""

    def batch(self, index: int) -> Batch:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def delay_s(self, index: int) -> float:
        return 0.0

    def __call__(self, index: int) -> Batch:
        delay = self.delay_s(index)
        if delay > 0:
            time.sleep(delay)
        return self.batch(index)

    @property
    def rows_per_batch(self) -> int | None:
        """Rows per batch if uniform across the source, else ``None``."""
        return None

    def describe(self) -> str:
        return type(self).__name__

    def __iter__(self):
        for i in range(len(self)):
            yield self(i)


# ----------------------------------------------------------------------
# synthetic://
# ----------------------------------------------------------------------


class SyntheticSource(BatchSource):
    """The deterministic generator behind ``synthetic://kaggle|terabyte``."""

    def __init__(
        self,
        schema: CriteoSchema,
        *,
        batch_size: int = 2048,
        num_batches: int = 64,
        seed: int = 2024,
        start: int = 0,
        io_delay_s: float = 0.0,
    ) -> None:
        if batch_size <= 0:
            raise IngestError(f"synthetic batch size must be positive, got {batch_size}")
        if num_batches < 0:
            raise IngestError(f"synthetic batch count must be >= 0, got {num_batches}")
        self.schema = schema
        self.batch_size = batch_size
        self.num_batches = num_batches
        self.seed = seed
        self.start = start
        self.io_delay_s = io_delay_s
        self._dataset = SyntheticCriteoDataset(schema, seed=seed)

    def batch(self, index: int) -> Batch:
        return self._dataset.batch(self.batch_size, index=self.start + index)

    def __len__(self) -> int:
        return self.num_batches

    def delay_s(self, index: int) -> float:
        return self.io_delay_s

    @property
    def rows_per_batch(self) -> int | None:
        return self.batch_size

    def describe(self) -> str:
        return (
            f"synthetic://{self.schema.name}?batch={self.batch_size}"
            f"&batches={self.num_batches}&seed={self.seed}"
        )

    @classmethod
    def from_spec(cls, spec: SourceSpec) -> "SyntheticSource":
        spec.require_known(
            {"batch", "batches", "seed", "start", "io_delay_ms", "nan_rate", "weight"}
        )
        bases = {"kaggle": KAGGLE_SCHEMA, "terabyte": TERABYTE_SCHEMA, "": KAGGLE_SCHEMA}
        base = bases.get(spec.target.strip("/").lower())
        if base is None:
            raise IngestError(
                f"bad source spec {spec.raw!r}: unknown synthetic base "
                f"{spec.target!r} (use kaggle or terabyte)"
            )
        nan_rate = spec.float_param("nan_rate")
        schema = base if nan_rate is None else CriteoSchema(
            name=base.name,
            num_dense=base.num_dense,
            num_sparse=base.num_sparse,
            total_hash_size=base.total_hash_size,
            avg_list_length=base.avg_list_length,
            nan_rate=nan_rate,
            id_skew=base.id_skew,
        )
        return cls(
            schema,
            batch_size=spec.int_param("batch", 2048),
            num_batches=spec.int_param("batches", 64),
            seed=spec.int_param("seed", 2024),
            start=spec.int_param("start", 0),
            io_delay_s=spec.float_param("io_delay_ms", 0.0) / 1000.0,
        )


class SyntheticBatchSource(SyntheticSource):
    """Back-compat alias with the old ``repro.preprocessing.pipeline``
    constructor signature (``io_delay_s`` in seconds, no batch count)."""

    def __init__(
        self,
        schema: CriteoSchema,
        batch_size: int = 4096,
        seed: int = 2024,
        start: int = 0,
        io_delay_s: float = 0.0,
    ) -> None:
        super().__init__(
            schema,
            batch_size=batch_size,
            num_batches=0,
            seed=seed,
            start=start,
            io_delay_s=io_delay_s,
        )

    def __call__(self, index: int) -> Batch:  # old signature: produce(index)
        if self.io_delay_s > 0:
            time.sleep(self.io_delay_s)
        return self.batch(index)


# ----------------------------------------------------------------------
# shared row-table core for file-backed sources
# ----------------------------------------------------------------------


class _RowTableSource(BatchSource):
    """File source materialized lazily into an in-memory sharded row table.

    Subclasses implement ``_load()`` returning ``(dense, sparse)`` where
    ``dense`` maps name -> float32 array over *all* rows and ``sparse``
    maps name -> (offsets, values) CSR over all rows. Sharding (strided
    ``rows[k::n]``), batching, and hash-size inference are shared. The
    load is locked so concurrent pool workers parse the file once, and
    ``__getstate__`` drops the cache so process-mode pickling ships the
    path, not the data.
    """

    def __init__(self, path: str, *, batch_size: int, shard: tuple[int, int] = (0, 1)) -> None:
        if batch_size <= 0:
            raise IngestError(f"batch size must be positive, got {batch_size}")
        self.path = path
        self.batch_size = batch_size
        self.shard = shard
        self._lock: threading.Lock | None = threading.Lock()
        self._table: tuple[dict, dict] | None = None
        self._num_batches: int | None = None

    # -- subclass hook ---------------------------------------------------

    def _load(self) -> tuple[dict[str, np.ndarray], dict[str, tuple[np.ndarray, np.ndarray]]]:
        raise NotImplementedError

    # -- lazy sharded table ----------------------------------------------

    def _ensure_table(self) -> tuple[dict, dict]:
        if self._table is not None:
            return self._table
        if self._lock is None:
            self._lock = threading.Lock()
        with self._lock:
            if self._table is None:
                dense, sparse = self._load()
                self._table = self._shard_table(dense, sparse)
            return self._table

    def _shard_table(self, dense: dict, sparse: dict) -> tuple[dict, dict]:
        rows = None
        for arr in dense.values():
            rows = len(arr)
            break
        if rows is None:
            for offs, _ in sparse.values():
                rows = len(offs) - 1
                break
        if rows is None:
            raise IngestError(f"{self.path}: no columns found")
        index, count = self.shard
        keep = np.arange(index, rows, count)
        if len(keep) < self.batch_size:
            raise IngestError(
                f"{self.path}: shard {index}/{count} owns {len(keep)} row(s), "
                f"fewer than one batch of {self.batch_size}"
            )
        sharded_dense = {name: np.ascontiguousarray(arr[keep]) for name, arr in dense.items()}
        sharded_sparse = {}
        for name, (offsets, values) in sparse.items():
            lengths = np.diff(offsets)[keep]
            new_offsets = np.zeros(len(keep) + 1, dtype=np.int64)
            np.cumsum(lengths, out=new_offsets[1:])
            starts = offsets[keep]
            nnz = int(new_offsets[-1])
            if nnz:
                gather = np.repeat(starts, lengths) + (
                    np.arange(nnz, dtype=np.int64) - np.repeat(new_offsets[:-1], lengths)
                )
                new_values = np.ascontiguousarray(values[gather])
            else:
                new_values = np.empty(0, dtype=np.int64)
            hash_size = max(_MIN_HASH_SIZE, int(values.max()) + 1 if len(values) else 0)
            sharded_sparse[name] = (new_offsets, new_values, hash_size)
        self._num_batches = len(keep) // self.batch_size
        return sharded_dense, sharded_sparse

    # -- BatchSource -----------------------------------------------------

    def batch(self, index: int) -> Batch:
        dense, sparse = self._ensure_table()
        if not 0 <= index < len(self):
            raise IndexError(f"batch index {index} out of range for {len(self)} batches")
        lo, hi = index * self.batch_size, (index + 1) * self.batch_size
        dense_cols = {
            name: DenseColumn(name, arr[lo:hi].copy()) for name, arr in dense.items()
        }
        sparse_cols = {}
        for name, (offsets, values, hash_size) in sparse.items():
            base = int(offsets[lo])
            col_offsets = (offsets[lo : hi + 1] - base).astype(np.int64)
            col_values = values[base : int(offsets[hi])].copy()
            sparse_cols[name] = SparseColumn(name, col_offsets, col_values, hash_size)
        return Batch(dense=dense_cols, sparse=sparse_cols)

    def __len__(self) -> int:
        if self._num_batches is None:
            self._ensure_table()
        return int(self._num_batches)  # type: ignore[arg-type]

    @property
    def rows_per_batch(self) -> int | None:
        return self.batch_size

    def describe(self) -> str:
        scheme = type(self).__name__.replace("Source", "").lower()
        index, count = self.shard
        shard = f"&shard={index}/{count}" if count > 1 else ""
        return f"{scheme}://{self.path}?batch={self.batch_size}{shard}"

    # -- pickling (process-mode feeders) ---------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_table"] = None
        state["_num_batches"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _split_names(names: Iterable[str], sparse_override: str | None) -> tuple[list, list]:
    """Classify column names into (dense, sparse) by prefix or override."""
    names = list(names)
    if sparse_override is not None:
        sparse_set = {n for n in sparse_override.split(";") if n}
        missing = sorted(sparse_set - set(names))
        if missing:
            raise IngestError(f"sparse column(s) {', '.join(missing)} not in file header")
    else:
        sparse_set = {n for n in names if n.startswith("sparse")}
    dense = [n for n in names if n not in sparse_set]
    sparse = [n for n in names if n in sparse_set]
    return dense, sparse


class CsvSource(_RowTableSource):
    """``csv://`` — header row names the columns; sparse cells hold
    space-separated ids, dense cells floats (empty cell = NaN)."""

    def __init__(
        self,
        path: str,
        *,
        batch_size: int,
        shard: tuple[int, int] = (0, 1),
        sparse_columns: str | None = None,
        delimiter: str = ",",
    ) -> None:
        super().__init__(path, batch_size=batch_size, shard=shard)
        self.sparse_columns = sparse_columns
        self.delimiter = delimiter

    def _load(self):
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                header_line = fh.readline()
                if not header_line.strip():
                    raise IngestError(f"{self.path}: empty CSV (no header)")
                names = [n.strip() for n in header_line.rstrip("\n").split(self.delimiter)]
                dense_names, sparse_names = _split_names(names, self.sparse_columns)
                dense_raw: dict[str, list[float]] = {n: [] for n in dense_names}
                sparse_raw: dict[str, tuple[list[int], list[int]]] = {
                    n: ([], [0]) for n in sparse_names
                }
                for lineno, line in enumerate(fh, start=2):
                    if not line.strip():
                        continue
                    cells = line.rstrip("\n").split(self.delimiter)
                    if len(cells) != len(names):
                        raise IngestError(
                            f"{self.path}:{lineno}: expected {len(names)} cells, "
                            f"got {len(cells)}"
                        )
                    for name, cell in zip(names, cells):
                        if name in dense_raw:
                            dense_raw[name].append(float(cell) if cell.strip() else np.nan)
                        else:
                            values, offsets = sparse_raw[name]
                            ids = [int(tok) for tok in cell.split()] if cell.strip() else []
                            values.extend(ids)
                            offsets.append(offsets[-1] + len(ids))
        except OSError as exc:
            raise IngestError(f"cannot read CSV source {self.path}: {exc}") from exc
        except ValueError as exc:
            if isinstance(exc, IngestError):
                raise
            raise IngestError(f"{self.path}: malformed cell ({exc})") from exc
        dense = {n: np.asarray(v, dtype=np.float32) for n, v in dense_raw.items()}
        sparse = {
            n: (np.asarray(offs, dtype=np.int64), np.asarray(vals, dtype=np.int64))
            for n, (vals, offs) in sparse_raw.items()
        }
        return dense, sparse

    @classmethod
    def from_spec(cls, spec: SourceSpec) -> "CsvSource":
        spec.require_known({"batch", "shard", "sparse", "delimiter", "weight"})
        return cls(
            spec.target,
            batch_size=spec.int_param("batch", 512),
            shard=spec.shard_param(),
            sparse_columns=spec.str_param("sparse"),
            delimiter=spec.str_param("delimiter", ","),
        )


class JsonlSource(_RowTableSource):
    """``jsonl://`` — schema header line, then one row object per line:
    ``{"d": [floats], "s": [[ids], ...]}`` (null dense = NaN)."""

    def _load(self):
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                header_line = fh.readline()
                if not header_line.strip():
                    raise IngestError(f"{self.path}: empty JSONL (no schema header)")
                header = json.loads(header_line)
                dense_names = list(header.get("dense", []))
                sparse_names = list(header.get("sparse", []))
                if not dense_names and not sparse_names:
                    raise IngestError(
                        f"{self.path}: schema header names no dense/sparse columns"
                    )
                dense_raw: list[list[float]] = []
                sparse_raw: dict[str, tuple[list[int], list[int]]] = {
                    n: ([], [0]) for n in sparse_names
                }
                for lineno, line in enumerate(fh, start=2):
                    if not line.strip():
                        continue
                    row = json.loads(line)
                    d = row.get("d", [])
                    s = row.get("s", [])
                    if len(d) != len(dense_names) or len(s) != len(sparse_names):
                        raise IngestError(
                            f"{self.path}:{lineno}: row shape mismatch vs schema header"
                        )
                    dense_raw.append([np.nan if v is None else float(v) for v in d])
                    for name, ids in zip(sparse_names, s):
                        values, offsets = sparse_raw[name]
                        values.extend(int(i) for i in ids)
                        offsets.append(offsets[-1] + len(ids))
        except OSError as exc:
            raise IngestError(f"cannot read JSONL source {self.path}: {exc}") from exc
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            if isinstance(exc, IngestError):
                raise
            raise IngestError(f"{self.path}: malformed JSONL ({exc})") from exc
        matrix = np.asarray(dense_raw, dtype=np.float32).reshape(len(dense_raw), len(dense_names))
        dense = {n: np.ascontiguousarray(matrix[:, j]) for j, n in enumerate(dense_names)}
        sparse = {
            n: (np.asarray(offs, dtype=np.int64), np.asarray(vals, dtype=np.int64))
            for n, (vals, offs) in sparse_raw.items()
        }
        return dense, sparse

    @classmethod
    def from_spec(cls, spec: SourceSpec) -> "JsonlSource":
        spec.require_known({"batch", "shard", "weight"})
        return cls(
            spec.target,
            batch_size=spec.int_param("batch", 512),
            shard=spec.shard_param(),
        )


class ParquetSource(_RowTableSource):
    """``parquet://`` — columnar file via pyarrow, if the environment has it.

    The container this repo targets ships without pyarrow, so the import
    is gated: resolving a ``parquet:`` spec without it raises a clear
    :class:`IngestError` instead of an ImportError traceback.
    """

    def _load(self):
        try:
            import pyarrow.parquet as pq  # noqa: PLC0415 - optional dependency
        except ImportError as exc:
            raise IngestError(
                "parquet: sources need pyarrow, which is not installed in this "
                "environment; convert the file (e.g. to csv:// or jsonl://) or "
                "install pyarrow"
            ) from exc
        try:
            table = pq.read_table(self.path)
        except OSError as exc:
            raise IngestError(f"cannot read parquet source {self.path}: {exc}") from exc
        dense_names, sparse_names = _split_names(table.column_names, None)
        dense = {}
        for name in dense_names:
            dense[name] = np.asarray(table.column(name).to_pylist(), dtype=np.float32)
        sparse = {}
        for name in sparse_names:
            rows = table.column(name).to_pylist()
            offsets = [0]
            values: list[int] = []
            for row in rows:
                ids = row or []
                values.extend(int(i) for i in ids)
                offsets.append(offsets[-1] + len(ids))
            sparse[name] = (
                np.asarray(offsets, dtype=np.int64),
                np.asarray(values, dtype=np.int64),
            )
        return dense, sparse

    @classmethod
    def from_spec(cls, spec: SourceSpec) -> "ParquetSource":
        spec.require_known({"batch", "shard", "weight"})
        return cls(
            spec.target,
            batch_size=spec.int_param("batch", 512),
            shard=spec.shard_param(),
        )


# ----------------------------------------------------------------------
# replay:// — recorded batch logs with original timestamps
# ----------------------------------------------------------------------


class ReplaySource(BatchSource):
    """Recorded Criteo-schema batch log, replayed at its original pace.

    The log is JSONL: a ``{"type": "rap-replay", ...}`` header, then one
    record per batch with its recorded timestamp and column-major payload
    (see :func:`write_replay_log`). ``delay_s(i)`` is the recorded gap to
    the previous batch divided by ``speed``; ``pace=0`` keeps the data but
    drops the sleeps (useful in tests and benchmarks).
    """

    def __init__(self, path: str, *, speed: float = 1.0, pace: bool = True) -> None:
        if speed <= 0:
            raise IngestError(f"replay speed must be positive, got {speed}")
        self.path = path
        self.speed = speed
        self.pace = pace
        self._lock: threading.Lock | None = threading.Lock()
        self._records: list[dict] | None = None
        self._delays: np.ndarray | None = None
        self._hash_sizes: dict[str, int] | None = None

    def _ensure_loaded(self) -> list[dict]:
        if self._records is not None:
            return self._records
        if self._lock is None:
            self._lock = threading.Lock()
        with self._lock:
            if self._records is None:
                self._load()
            return self._records  # type: ignore[return-value]

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                header_line = fh.readline()
                if not header_line.strip():
                    raise IngestError(f"{self.path}: empty replay log")
                header = json.loads(header_line)
                if header.get("type") != "rap-replay":
                    raise IngestError(
                        f"{self.path}: not a replay log (header type "
                        f"{header.get('type')!r}, expected 'rap-replay')"
                    )
                records = [json.loads(line) for line in fh if line.strip()]
        except OSError as exc:
            raise IngestError(f"cannot read replay source {self.path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise IngestError(f"{self.path}: malformed replay log ({exc})") from exc
        if not records:
            raise IngestError(f"{self.path}: replay log holds no batches")
        ts = np.asarray([float(r["ts"]) for r in records])
        if np.any(np.diff(ts) < 0):
            raise IngestError(f"{self.path}: replay timestamps must be non-decreasing")
        delays = np.concatenate([[0.0], np.diff(ts)]) / self.speed
        hash_sizes: dict[str, int] = {}
        for record in records:
            for name, rows in record.get("sparse", {}).items():
                peak = max((max(ids) for ids in rows if ids), default=-1)
                hash_sizes[name] = max(hash_sizes.get(name, _MIN_HASH_SIZE), peak + 1)
        self._records = records
        self._delays = delays
        self._hash_sizes = hash_sizes

    def batch(self, index: int) -> Batch:
        records = self._ensure_loaded()
        if not 0 <= index < len(records):
            raise IndexError(f"batch index {index} out of range for {len(records)} batches")
        record = records[index]
        dense = {
            name: DenseColumn(
                name,
                np.asarray([np.nan if v is None else v for v in vals], dtype=np.float32),
            )
            for name, vals in record.get("dense", {}).items()
        }
        sparse = {}
        assert self._hash_sizes is not None
        for name, rows in record.get("sparse", {}).items():
            offsets = np.zeros(len(rows) + 1, dtype=np.int64)
            np.cumsum([len(ids) for ids in rows], out=offsets[1:])
            values = np.asarray(
                [i for ids in rows for i in ids] or [], dtype=np.int64
            )
            sparse[name] = SparseColumn(name, offsets, values, self._hash_sizes[name])
        return Batch(dense=dense, sparse=sparse)

    def __len__(self) -> int:
        return len(self._ensure_loaded())

    def delay_s(self, index: int) -> float:
        if not self.pace:
            return 0.0
        self._ensure_loaded()
        assert self._delays is not None
        if not 0 <= index < len(self._delays):
            return 0.0
        return float(self._delays[index])

    @property
    def rows_per_batch(self) -> int | None:
        records = self._ensure_loaded()
        sizes = set()
        for record in records:
            for vals in record.get("dense", {}).values():
                sizes.add(len(vals))
                break
            else:
                for rows in record.get("sparse", {}).values():
                    sizes.add(len(rows))
                    break
        return sizes.pop() if len(sizes) == 1 else None

    def describe(self) -> str:
        return f"replay://{self.path}?speed={self.speed}&pace={int(self.pace)}"

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_records"] = None
        state["_delays"] = None
        state["_hash_sizes"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @classmethod
    def from_spec(cls, spec: SourceSpec) -> "ReplaySource":
        spec.require_known({"speed", "pace", "weight"})
        return cls(
            spec.target,
            speed=spec.float_param("speed", 1.0),
            pace=spec.bool_param("pace", True),
        )


# ----------------------------------------------------------------------
# combinators
# ----------------------------------------------------------------------


class MixedSource(BatchSource):
    """Weighted deterministic sampling across member sources.

    Batch ``i`` comes from the member a seeded draw assigns to position
    ``i``; the member-side batch index is that member's occurrence count
    so far (mod its length, so short members wrap). Assignment is
    precomputed, which keeps the source seekable and pure in the index.
    """

    def __init__(
        self,
        members: Sequence[BatchSource],
        weights: Sequence[float] | None = None,
        *,
        num_batches: int | None = None,
        seed: int = 0,
    ) -> None:
        if not members:
            raise IngestError("MixedSource needs at least one member source")
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(self.members)
        if len(weights) != len(self.members):
            raise IngestError(
                f"got {len(weights)} weights for {len(self.members)} sources"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise IngestError(f"weights must be non-negative and sum > 0, got {weights}")
        self.weights = [float(w) for w in weights]
        self.seed = seed
        member_lengths = [len(m) for m in self.members]
        if num_batches is None:
            num_batches = sum(member_lengths)
        self.num_batches = num_batches
        probs = np.asarray(self.weights) / sum(self.weights)
        rng = np.random.default_rng(seed)
        assignment = rng.choice(len(self.members), size=num_batches, p=probs)
        occurrence = np.zeros(num_batches, dtype=np.int64)
        counts = [0] * len(self.members)
        for i, member in enumerate(assignment):
            occurrence[i] = counts[member]
            counts[member] += 1
        self._assignment = assignment
        self._occurrence = occurrence
        self._member_lengths = member_lengths

    def _resolve(self, index: int) -> tuple[BatchSource, int]:
        if not 0 <= index < self.num_batches:
            raise IndexError(
                f"batch index {index} out of range for {self.num_batches} batches"
            )
        member = int(self._assignment[index])
        length = self._member_lengths[member]
        if length <= 0:
            raise IngestError(
                f"member {self.members[member].describe()} has no batches to sample"
            )
        return self.members[member], int(self._occurrence[index]) % length

    def batch(self, index: int) -> Batch:
        member, member_index = self._resolve(index)
        return member.batch(member_index)

    def delay_s(self, index: int) -> float:
        member, member_index = self._resolve(index)
        return member.delay_s(member_index)

    def __len__(self) -> int:
        return self.num_batches

    @property
    def rows_per_batch(self) -> int | None:
        sizes = {m.rows_per_batch for m in self.members}
        return sizes.pop() if len(sizes) == 1 else None

    def describe(self) -> str:
        parts = ", ".join(
            f"{m.describe()} w={w:g}" for m, w in zip(self.members, self.weights)
        )
        return f"mixed[{parts}]"


class PacedSource(BatchSource):
    """Overlay an explicit per-batch arrival-delay schedule on any source.

    This is how a forge arrival curve drives a real source: the curve's
    intensity becomes a delay schedule
    (:meth:`repro.forge.scenario.ArrivalCurve.delay_schedule`) and the
    wrapped source's own pacing is replaced by it. Indices past the end of
    the schedule reuse its last delay.
    """

    def __init__(self, inner: BatchSource, delays: Sequence[float]) -> None:
        if not len(delays):
            raise IngestError("PacedSource needs a non-empty delay schedule")
        if any(d < 0 for d in delays):
            raise IngestError("arrival delays must be non-negative")
        self.inner = inner
        self.delays = tuple(float(d) for d in delays)

    def batch(self, index: int) -> Batch:
        return self.inner.batch(index)

    def __len__(self) -> int:
        return len(self.inner)

    def delay_s(self, index: int) -> float:
        if index < 0:
            return 0.0
        return self.delays[min(index, len(self.delays) - 1)]

    @property
    def rows_per_batch(self) -> int | None:
        return self.inner.rows_per_batch

    def describe(self) -> str:
        return f"paced({self.inner.describe()})"


# ----------------------------------------------------------------------
# resolver
# ----------------------------------------------------------------------

_SCHEMES: dict[str, Callable[[SourceSpec], BatchSource]] = {
    "synthetic": SyntheticSource.from_spec,
    "csv": CsvSource.from_spec,
    "jsonl": JsonlSource.from_spec,
    "parquet": ParquetSource.from_spec,
    "replay": ReplaySource.from_spec,
}


def source(spec: str | SourceSpec) -> BatchSource:
    """Resolve one spec string into its batch source."""
    parsed = parse_spec(spec) if isinstance(spec, str) else spec
    factory = _SCHEMES.get(parsed.scheme)
    if factory is None:
        raise IngestError(
            f"unknown source scheme {parsed.scheme!r} in {parsed.raw!r} "
            f"(known: {', '.join(sorted(_SCHEMES))})"
        )
    return factory(parsed)


def build_source(specs: str, *, seed: int = 0) -> BatchSource:
    """Resolve a CLI-style ``SPEC[,SPEC...]`` list; several specs become a
    weighted :class:`MixedSource` (per-spec ``weight=`` params, default 1)."""
    pieces = split_specs(specs)
    parsed = [parse_spec(p) for p in pieces]
    sources = [source(p) for p in parsed]
    if len(sources) == 1:
        return sources[0]
    weights = [p.float_param("weight", 1.0) for p in parsed]
    return MixedSource(sources, weights, seed=seed)


# ----------------------------------------------------------------------
# writers (round-trip partners of the file sources; used by tests and CI)
# ----------------------------------------------------------------------


def _ordered_columns(batch: Batch) -> tuple[list[str], list[str]]:
    return list(batch.dense), list(batch.sparse)


def write_csv(path: str, batches: Iterable[Batch], *, delimiter: str = ",") -> int:
    """Write batches as one CSV readable by :class:`CsvSource`; returns rows."""
    rows_written = 0
    header: list[str] | None = None
    with open(path, "w", encoding="utf-8") as fh:
        for batch in batches:
            dense_names, sparse_names = _ordered_columns(batch)
            if header is None:
                header = dense_names + sparse_names
                fh.write(delimiter.join(header) + "\n")
            elif header != dense_names + sparse_names:
                raise IngestError("all batches written to one CSV must share columns")
            for row in range(batch.size):
                cells = []
                for name in dense_names:
                    v = float(batch.dense[name].values[row])
                    cells.append("" if np.isnan(v) else repr(v))
                for name in sparse_names:
                    cells.append(" ".join(str(int(i)) for i in batch.sparse[name].row(row)))
                fh.write(delimiter.join(cells) + "\n")
                rows_written += 1
    if header is None:
        raise IngestError("write_csv needs at least one batch")
    return rows_written


def write_jsonl(path: str, batches: Iterable[Batch]) -> int:
    """Write batches as schema-headed JSONL readable by :class:`JsonlSource`."""
    rows_written = 0
    header: tuple[list[str], list[str]] | None = None
    with open(path, "w", encoding="utf-8") as fh:
        for batch in batches:
            names = _ordered_columns(batch)
            if header is None:
                header = names
                fh.write(json.dumps({"dense": names[0], "sparse": names[1]}) + "\n")
            elif header != names:
                raise IngestError("all batches written to one JSONL must share columns")
            for row in range(batch.size):
                d = [
                    None if np.isnan(v := float(batch.dense[n].values[row])) else v
                    for n in names[0]
                ]
                s = [[int(i) for i in batch.sparse[n].row(row)] for n in names[1]]
                fh.write(json.dumps({"d": d, "s": s}) + "\n")
                rows_written += 1
    if header is None:
        raise IngestError("write_jsonl needs at least one batch")
    return rows_written


def write_replay_log(
    path: str, batches: Iterable[Batch], timestamps: Sequence[float]
) -> int:
    """Record batches with arrival timestamps, readable by :class:`ReplaySource`."""
    batches = list(batches)
    if len(batches) != len(timestamps):
        raise IngestError(
            f"got {len(batches)} batches but {len(timestamps)} timestamps"
        )
    if not batches:
        raise IngestError("write_replay_log needs at least one batch")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "rap-replay", "version": 1}) + "\n")
        for ts, batch in zip(timestamps, batches):
            record = {
                "ts": float(ts),
                "dense": {
                    name: [
                        None if np.isnan(v) else float(v)
                        for v in col.values.astype(np.float64)
                    ]
                    for name, col in batch.dense.items()
                },
                "sparse": {
                    name: [[int(i) for i in col.row(r)] for r in range(col.num_rows)]
                    for name, col in batch.sparse.items()
                },
            }
            fh.write(json.dumps(record) + "\n")
    return len(batches)
