"""URL-style source spec grammar: one string resolves to one batch source.

A spec is ``scheme://target?key=value&...`` where the scheme names a
source family (``synthetic``, ``csv``, ``jsonl``, ``parquet``, ``replay``)
and the query string carries the knobs every family shares (``batch``,
``shard=k/n``, ``seed``, ``weight``) plus family-specific ones
(``io_delay_ms``, ``speed``, ``pace``, ...). Examples:

- ``synthetic://kaggle?batch=4096&batches=64&seed=7&io_delay_ms=12``
- ``csv:///data/criteo/day_0.csv?batch=512&shard=3/8``
- ``jsonl://relative/path/rows.jsonl?batch=256``
- ``replay:///logs/flashcrowd.replay.jsonl?speed=2.0&pace=1``
- ``parquet:///data/criteo.parquet?batch=1024`` (needs pyarrow)

The grammar is deliberately dumb: :func:`parse_spec` does nothing but
split and type the pieces, so every scheme handler sees the same
:class:`SourceSpec` and error messages stay uniform. Resolution of a spec
(or a comma-joined list of specs, which builds a weighted
:class:`repro.ingest.sources.MixedSource`) lives in
:mod:`repro.ingest.sources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["IngestError", "SourceSpec", "parse_spec", "split_specs"]

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


class IngestError(ValueError):
    """A malformed source spec or an unusable source."""


@dataclass(frozen=True)
class SourceSpec:
    """One parsed source spec: scheme, target path/name, typed params."""

    raw: str
    scheme: str
    target: str
    params: dict[str, str] = field(default_factory=dict)

    # -- typed parameter access ----------------------------------------

    def str_param(self, name: str, default: str | None = None) -> str | None:
        return self.params.get(name, default)

    def int_param(self, name: str, default: int | None = None) -> int | None:
        value = self.params.get(name)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise IngestError(
                f"bad source spec {self.raw!r}: {name}={value!r} is not an integer"
            ) from None

    def float_param(self, name: str, default: float | None = None) -> float | None:
        value = self.params.get(name)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError:
            raise IngestError(
                f"bad source spec {self.raw!r}: {name}={value!r} is not a number"
            ) from None

    def bool_param(self, name: str, default: bool = False) -> bool:
        value = self.params.get(name)
        if value is None:
            return default
        lowered = value.lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise IngestError(
            f"bad source spec {self.raw!r}: {name}={value!r} is not a boolean "
            f"(use one of {sorted(_TRUE | _FALSE)})"
        )

    def shard_param(self, name: str = "shard") -> tuple[int, int]:
        """Parse ``shard=k/n`` into ``(k, n)``; defaults to ``(0, 1)``."""
        value = self.params.get(name)
        if value is None:
            return (0, 1)
        index_s, sep, count_s = value.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(index_s), int(count_s)
        except ValueError:
            raise IngestError(
                f"bad source spec {self.raw!r}: {name}={value!r} is not of the form K/N"
            ) from None
        if count < 1 or not 0 <= index < count:
            raise IngestError(
                f"bad source spec {self.raw!r}: shard {index}/{count} needs 0 <= K < N"
            )
        return (index, count)

    def require_known(self, known: set[str]) -> None:
        """Reject typo'd knobs instead of silently ignoring them."""
        unknown = sorted(set(self.params) - known)
        if unknown:
            raise IngestError(
                f"bad source spec {self.raw!r}: unknown parameter(s) "
                f"{', '.join(unknown)} (known: {', '.join(sorted(known))})"
            )


def parse_spec(spec: str) -> SourceSpec:
    """Split one ``scheme://target?query`` spec into a :class:`SourceSpec`."""
    if not spec or not spec.strip():
        raise IngestError("empty source spec")
    spec = spec.strip()
    parts = urlsplit(spec)
    if not parts.scheme:
        raise IngestError(
            f"bad source spec {spec!r}: expected scheme://target?params "
            "(e.g. synthetic://kaggle?batch=4096)"
        )
    # ``csv://data/x.csv`` parses as netloc="data" path="/x.csv"; a file
    # target is the two glued back together. ``csv:///abs/x.csv`` keeps
    # its leading slash (netloc empty, path absolute).
    target = unquote(parts.netloc + parts.path)
    params: dict[str, str] = {}
    for key, value in parse_qsl(parts.query, keep_blank_values=True):
        if key in params:
            raise IngestError(f"bad source spec {spec!r}: duplicate parameter {key!r}")
        params[key] = value
    return SourceSpec(raw=spec, scheme=parts.scheme.lower(), target=target, params=params)


def split_specs(specs: str) -> list[str]:
    """Split a CLI-style ``SPEC[,SPEC...]`` list (commas never appear inside
    a spec: query values are URL-encoded if they need one)."""
    out = [piece.strip() for piece in specs.split(",")]
    if any(not piece for piece in out):
        raise IngestError(f"bad source list {specs!r}: empty spec in comma-joined list")
    return out
