"""Crash-safe artifact I/O shared by every on-disk writer.

Plans, cache entries, checkpoints, and resilience reports are all consumed
by *other* processes (a resumed run, a concurrent planner, a postmortem
tool), so a torn write must never be observable as a half-valid artifact.
Every writer in the repository funnels through :func:`atomic_write_text`:
the bytes land in a temporary file in the destination directory, are
fsync'd, and are published with a single atomic ``rename`` -- readers see
either the complete old content or the complete new content, never a mix.

:func:`advisory_lock` adds cooperative exclusion for shared cache
directories. It is deliberately non-mandatory and degrades gracefully: on
contention (or on platforms without ``fcntl``) the caller simply skips the
write -- for a cache that is a miss, never an error.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

try:  # POSIX only; advisory locking degrades to "never acquired" elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["atomic_write_text", "atomic_write_json", "advisory_lock"]


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so the rename itself survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename. On any failure the
    temporary file is removed and the destination is left untouched --
    either its previous content or its previous absence.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    _fsync_directory(target.parent)


def atomic_write_json(path: str | Path, payload: Any, indent: int | None = 2) -> None:
    """Serialize ``payload`` as JSON and publish it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=True))


@contextlib.contextmanager
def advisory_lock(path: str | Path, blocking: bool = False) -> Iterator[bool]:
    """Advisory exclusive file lock; yields whether it was acquired.

    Cooperating writers (the plan/solve cache disk tiers) take the lock
    before publishing entries so two concurrent processes never interleave
    writes to the same directory. The lock never raises on contention:
    the caller receives ``False`` and is expected to degrade (skip the
    write). Readers need no lock -- atomic renames keep reads consistent.
    """
    lock_path = Path(path)
    if fcntl is None:
        yield False
        return
    try:
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    except OSError:
        yield False
        return
    acquired = False
    try:
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
            acquired = True
        except OSError:
            acquired = False
        yield acquired
    finally:
        if acquired:
            with contextlib.suppress(OSError):
                fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
