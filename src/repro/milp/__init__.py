"""``repro.milp`` -- from-scratch MILP solving (the Gurobi substitute).

A modeling layer, a branch-and-bound solver over scipy HiGHS LP
relaxations, binary-product linearization, and the paper's §6.2
horizontal-fusion formulation with exact and heuristic solution paths.
"""

from .model import Constraint, MilpProblem, Variable
from .branch_and_bound import BranchAndBoundSolver, MilpSolution
from .solve_cache import SolveCache, SolveCacheStats, problem_fingerprint
from .linearize import add_binary_product, add_pairwise_products
from .fusion_problem import (
    FusionAssignment,
    FusionInstance,
    build_fusion_milp,
    solve_fusion,
)

__all__ = [
    "Constraint",
    "MilpProblem",
    "Variable",
    "BranchAndBoundSolver",
    "MilpSolution",
    "SolveCache",
    "SolveCacheStats",
    "problem_fingerprint",
    "add_binary_product",
    "add_pairwise_products",
    "FusionAssignment",
    "FusionInstance",
    "build_fusion_milp",
    "solve_fusion",
]
