"""Branch-and-bound MILP solver over scipy ``linprog`` LP relaxations.

A deliberately transparent implementation of the textbook algorithm:
best-first search on the LP relaxation bound, branching on the most
fractional integer variable, with warm-start incumbents and node/time
limits so large instances degrade gracefully to the best feasible solution
found (mirroring how Gurobi would be used with a time limit in the paper's
pipeline).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from .model import MilpProblem
from .solve_cache import SolveCache, problem_fingerprint

__all__ = ["MilpSolution", "BranchAndBoundSolver"]


@dataclass
class MilpSolution:
    """Outcome of a MILP solve.

    Status/gap contract:

    - ``"optimal"``: the search completed; ``x`` is set and ``gap`` is 0.
    - ``"feasible"``: a limit stopped the search with an incumbent in hand
      (including a warm-start-only incumbent at zero nodes explored);
      ``x`` is set and ``gap`` is a finite bound on the suboptimality.
    - ``"node_limit"`` / ``"time_limit"``: a limit stopped the search with
      *no* incumbent; ``x``, ``objective`` and ``gap`` are ``None``.
    - ``"infeasible"``: the problem has no integral solution; ``x`` and
      ``gap`` are ``None``.
    """

    status: str  # "optimal", "feasible", "infeasible", "node_limit", "time_limit"
    x: np.ndarray | None
    objective: float | None
    nodes_explored: int = 0
    gap: float | None = None

    @property
    def ok(self) -> bool:
        return self.x is not None


@dataclass
class _Node:
    """One branch-and-bound node: extra variable bounds on the relaxation."""

    bound: float  # LP relaxation objective (minimization form)
    lower: np.ndarray
    upper: np.ndarray
    depth: int = 0


class BranchAndBoundSolver:
    """Solve a :class:`MilpProblem` by LP-based branch and bound."""

    def __init__(
        self,
        node_limit: int = 20_000,
        time_limit_s: float = 30.0,
        integrality_tol: float = 1e-6,
        gap_tol: float = 1e-9,
        cache: SolveCache | None = None,
    ) -> None:
        self.node_limit = node_limit
        self.time_limit_s = time_limit_s
        self.integrality_tol = integrality_tol
        self.gap_tol = gap_tol
        self.cache = cache

    def solve(self, problem: MilpProblem, warm_start: np.ndarray | None = None) -> MilpSolution:
        key = None
        if self.cache is not None:
            key = problem_fingerprint(
                problem,
                self.node_limit,
                self.time_limit_s,
                self.integrality_tol,
                self.gap_tol,
                warm_start,
            )
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        solution = self._solve(problem, warm_start)
        if key is not None:
            self.cache.put(key, solution)
        return solution

    def _solve(self, problem: MilpProblem, warm_start: np.ndarray | None = None) -> MilpSolution:
        arrays = problem.to_arrays()
        c = arrays["c"]
        integer_mask = arrays["integer_mask"]
        base_lower = np.array([b[0] for b in arrays["bounds"]], dtype=float)
        base_upper = np.array([b[1] for b in arrays["bounds"]], dtype=float)

        incumbent_x: np.ndarray | None = None
        incumbent_obj = np.inf  # minimization form
        if warm_start is not None and problem.is_feasible(warm_start):
            incumbent_x = np.asarray(warm_start, dtype=float)
            incumbent_obj = float(c @ incumbent_x)

        def relax(lower: np.ndarray, upper: np.ndarray):
            return linprog(
                c,
                A_ub=arrays["A_ub"],
                b_ub=arrays["b_ub"],
                A_eq=arrays["A_eq"],
                b_eq=arrays["b_eq"],
                bounds=list(zip(lower, upper)),
                method="highs",
            )

        root = relax(base_lower, base_upper)
        if not root.success:
            if incumbent_x is not None:
                # The warm start proves feasibility, so the relaxation's
                # failure is numerical; with no dual bound available the
                # incumbent is returned as-is with a zero gap estimate.
                return MilpSolution(
                    "feasible", incumbent_x, problem.objective_value(incumbent_x), 0, gap=0.0
                )
            return MilpSolution("infeasible", None, None)

        counter = itertools.count()
        heap: list[tuple[float, int, _Node]] = []
        heapq.heappush(
            heap, (root.fun, next(counter), _Node(root.fun, base_lower, base_upper))
        )
        nodes = 0
        deadline = time.monotonic() + self.time_limit_s
        status = "optimal"

        while heap:
            if nodes >= self.node_limit:
                status = "node_limit"
                break
            if time.monotonic() > deadline:
                status = "time_limit"
                break
            bound, _, node = heapq.heappop(heap)
            if bound >= incumbent_obj - self.gap_tol:
                continue  # cannot improve on the incumbent
            result = relax(node.lower, node.upper)
            nodes += 1
            if not result.success or result.fun >= incumbent_obj - self.gap_tol:
                continue
            x = result.x
            frac = np.where(
                integer_mask,
                np.abs(x - np.round(x)),
                0.0,
            )
            worst = int(np.argmax(frac))
            if frac[worst] <= self.integrality_tol:
                # Integral solution: new incumbent.
                snapped = x.copy()
                snapped[integer_mask] = np.round(snapped[integer_mask])
                incumbent_x = snapped
                incumbent_obj = float(c @ snapped)
                continue
            # Branch on the most fractional variable.
            floor_val = np.floor(x[worst])
            down_upper = node.upper.copy()
            down_upper[worst] = floor_val
            up_lower = node.lower.copy()
            up_lower[worst] = floor_val + 1.0
            if down_upper[worst] >= node.lower[worst]:
                heapq.heappush(
                    heap,
                    (result.fun, next(counter), _Node(result.fun, node.lower, down_upper, node.depth + 1)),
                )
            if up_lower[worst] <= node.upper[worst]:
                heapq.heappush(
                    heap,
                    (result.fun, next(counter), _Node(result.fun, up_lower, node.upper, node.depth + 1)),
                )

        if incumbent_x is None and status in ("node_limit", "time_limit"):
            # Limits hit before any integral node: try snapping the root
            # relaxation to integers as a last-resort feasible point.
            snapped = root.x.copy()
            snapped[integer_mask] = np.floor(snapped[integer_mask] + self.integrality_tol)
            if problem.is_feasible(snapped):
                incumbent_x = snapped
                incumbent_obj = float(c @ snapped)
        if incumbent_x is None:
            return MilpSolution("infeasible" if status == "optimal" else status, None, None, nodes)
        if status == "optimal":
            # Natural exit: the heap drained, so the incumbent is proven.
            return MilpSolution(
                "optimal", incumbent_x, problem.objective_value(incumbent_x), nodes, gap=0.0
            )
        # A limit stopped the search with an incumbent in hand (possibly the
        # untouched warm start at zero nodes explored): report "feasible"
        # with a finite optimality gap against the best open relaxation
        # bound. The heap is never empty here -- limits break out of the
        # loop before popping -- so a real dual bound always exists.
        best_bound = heap[0][0] if heap else incumbent_obj
        gap = max(0.0, incumbent_obj - best_bound)
        return MilpSolution(
            "feasible",
            incumbent_x,
            problem.objective_value(incumbent_x),
            nodes,
            gap=gap,
        )
