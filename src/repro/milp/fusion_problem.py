"""The paper's horizontal-fusion MILP (§6.2) and its solution strategies.

An instance is a set of preprocessing operations with types and dependency
edges; the decision is which *time step* each operation executes in. All
same-type operations sharing a time step are horizontally fused into one
kernel. Constraints are the paper's Eq. 1 (each op runs exactly once) and
Eq. 2 (an op runs strictly after everything it depends on); the objective
Eq. 3-4 maximizes the summed squared fusion degrees, which after
linearization (see :mod:`repro.milp.linearize`) is exactly "maximize the
number of co-scheduled same-type pairs".

Two solution paths:

- **Exact**: the MILP via our branch-and-bound solver, warm-started from
  the greedy assignment. Used for small instances and in tests, where
  optimality can be asserted.
- **Heuristic**: ASAP level assignment plus a pair-improving local search.
  Used for plan-scale instances (Plan 3 has 1548 ops), the same way the
  paper would bound Gurobi's solve time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .branch_and_bound import BranchAndBoundSolver, MilpSolution
from .linearize import add_binary_product
from .model import MilpProblem, Variable

__all__ = ["FusionInstance", "FusionAssignment", "solve_fusion", "build_fusion_milp"]


@dataclass
class FusionInstance:
    """A horizontal-fusion problem: op types plus dependency edges."""

    op_types: list[str]
    deps: list[tuple[int, int]] = field(default_factory=list)  # (producer, consumer)

    def __post_init__(self) -> None:
        n = len(self.op_types)
        for i, j in self.deps:
            if not (0 <= i < n and 0 <= j < n):
                raise IndexError(f"dependency ({i}, {j}) out of range for {n} ops")
            if i == j:
                raise ValueError(f"op {i} cannot depend on itself")

    @property
    def num_ops(self) -> int:
        return len(self.op_types)

    def successors(self) -> list[list[int]]:
        succ: list[list[int]] = [[] for _ in range(self.num_ops)]
        for i, j in self.deps:
            succ[i].append(j)
        return succ

    def predecessors(self) -> list[list[int]]:
        pred: list[list[int]] = [[] for _ in range(self.num_ops)]
        for i, j in self.deps:
            pred[j].append(i)
        return pred

    def asap_levels(self) -> list[int]:
        """Longest-path depth of each op (0 for roots). Raises on cycles."""
        n = self.num_ops
        indeg = [0] * n
        succ = self.successors()
        for _, j in self.deps:
            indeg[j] += 1
        level = [0] * n
        frontier = [i for i in range(n) if indeg[i] == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for nxt in succ[node]:
                level[nxt] = max(level[nxt], level[node] + 1)
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    frontier.append(nxt)
        if seen != n:
            raise ValueError("dependency graph contains a cycle")
        return level

    def reachable_pairs(self) -> set[tuple[int, int]]:
        """All (ancestor, descendant) pairs under the transitive closure."""
        succ = self.successors()
        closed: set[tuple[int, int]] = set()
        for start in range(self.num_ops):
            stack = list(succ[start])
            seen: set[int] = set()
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                closed.add((start, node))
                stack.extend(succ[node])
        return closed


@dataclass
class FusionAssignment:
    """A solved fusion plan: each op's time step."""

    instance: FusionInstance
    steps: list[int]
    method: str = "heuristic"
    milp_status: str | None = None

    def __post_init__(self) -> None:
        if len(self.steps) != self.instance.num_ops:
            raise ValueError("steps length does not match op count")
        self.validate()

    def validate(self) -> None:
        for i, j in self.instance.deps:
            if self.steps[j] <= self.steps[i]:
                raise ValueError(
                    f"dependency violated: op {j} at step {self.steps[j]} "
                    f"must follow op {i} at step {self.steps[i]}"
                )

    @property
    def num_steps(self) -> int:
        return max(self.steps) + 1 if self.steps else 0

    def groups(self) -> dict[tuple[str, int], list[int]]:
        """Fusion groups: (op type, time step) -> member op indices."""
        out: dict[tuple[str, int], list[int]] = {}
        for idx, step in enumerate(self.steps):
            key = (self.instance.op_types[idx], step)
            out.setdefault(key, []).append(idx)
        return out

    def ordered_groups(self) -> list[tuple[str, int, list[int]]]:
        """Groups sorted by time step (the execution order of fused kernels)."""
        return sorted(
            ((t, s, members) for (t, s), members in self.groups().items()),
            key=lambda item: (item[1], item[0]),
        )

    def fused_pair_count(self) -> int:
        """Number of co-scheduled same-type pairs (the linearized objective)."""
        return sum(len(m) * (len(m) - 1) // 2 for m in self.groups().values())

    def quadratic_objective(self) -> int:
        """The paper's Eq. 3-4 objective: sum of squared group sizes."""
        return sum(len(m) ** 2 for m in self.groups().values())

    def max_fusion_degree(self) -> int:
        return max((len(m) for m in self.groups().values()), default=0)


# ----------------------------------------------------------------------
# Greedy / local-search path
# ----------------------------------------------------------------------


def _greedy_assignment(instance: FusionInstance) -> list[int]:
    """ASAP levels: fuse everything that becomes ready at the same depth."""
    return instance.asap_levels()


def _pair_gain(groups: dict[tuple[str, int], list[int]], op_type: str, step: int, delta: int) -> int:
    size = len(groups.get((op_type, step), []))
    return size + delta


def _local_improve(instance: FusionInstance, steps: list[int], max_rounds: int = 6) -> list[int]:
    """Move single ops between steps when it grows the co-scheduled pair count.

    Movement is bounded by each op's dependency window: strictly after all
    predecessors, strictly before all successors. This captures the paper's
    conflict cases (e.g. ``FirstX -> SigridHash`` vs ``SigridHash ->
    FirstX`` chains) where ASAP is suboptimal.
    """
    steps = list(steps)
    pred = instance.predecessors()
    succ = instance.successors()
    n = instance.num_ops
    max_step = max(steps) + 1 if steps else 0

    for _ in range(max_rounds):
        improved = False
        groups: dict[tuple[str, int], list[int]] = {}
        for idx, step in enumerate(steps):
            groups.setdefault((instance.op_types[idx], step), []).append(idx)
        for op in range(n):
            op_type = instance.op_types[op]
            lo = max((steps[p] + 1 for p in pred[op]), default=0)
            hi = min((steps[s] - 1 for s in succ[op]), default=max_step)
            if lo > hi:
                continue
            current = steps[op]
            current_size = len(groups[(op_type, current)])
            best_step = current
            best_gain = 0
            for cand in range(lo, hi + 1):
                if cand == current:
                    continue
                cand_size = len(groups.get((op_type, cand), []))
                # Pairs gained at destination minus pairs lost at source.
                gain = cand_size - (current_size - 1)
                if gain > best_gain:
                    best_gain = gain
                    best_step = cand
            if best_step != current:
                groups[(op_type, current)].remove(op)
                if not groups[(op_type, current)]:
                    del groups[(op_type, current)]
                groups.setdefault((op_type, best_step), []).append(op)
                steps[op] = best_step
                improved = True
        if not improved:
            break
    # Compact step indices.
    used = sorted(set(steps))
    remap = {s: i for i, s in enumerate(used)}
    return [remap[s] for s in steps]


# ----------------------------------------------------------------------
# Exact MILP path
# ----------------------------------------------------------------------


def build_fusion_milp(
    instance: FusionInstance,
    num_steps: int | None = None,
) -> tuple[MilpProblem, list[list[Variable]]]:
    """Build the paper's fusion MILP with the linearized quadratic objective.

    Returns the problem and the ``x[i][t]`` assignment variable matrix.
    ``num_steps`` defaults to the dependency-depth bound plus one slack
    step -- the slack is what lets the solver delay one chain to align
    fusable ops across chains (the §6.1 conflict case needs it) -- while
    keeping the variable count far below the paper's N x N formulation.
    """
    n = instance.num_ops
    levels = instance.asap_levels()
    t_max = (max(levels) + 2 if levels else 1) if num_steps is None else num_steps
    t_max = max(t_max, 1)

    problem = MilpProblem(name="horizontal_fusion", maximize=True)
    x = [[problem.add_binary(f"x_{i}_{t}") for t in range(t_max)] for i in range(n)]

    # Eq. 1: each operation executes exactly once.
    for i in range(n):
        problem.add_constraint({x[i][t]: 1.0 for t in range(t_max)}, "==", 1.0, name=f"once_{i}")

    # Eq. 2: strict ordering along dependencies.
    for i, j in instance.deps:
        coeffs: dict[Variable, float] = {}
        for t in range(t_max):
            coeffs[x[j][t]] = float(t + 1)
        for t in range(t_max):
            coeffs[x[i][t]] = coeffs.get(x[i][t], 0.0) - float(t + 1)
        problem.add_constraint(coeffs, ">=", 1.0, name=f"dep_{i}_{j}")

    # Eq. 3-4 linearized: maximize co-scheduled same-type pairs.
    unreachable = instance.reachable_pairs()
    by_type: dict[str, list[int]] = {}
    for idx, op_type in enumerate(instance.op_types):
        by_type.setdefault(op_type, []).append(idx)
    for op_type, members in by_type.items():
        for a_pos in range(len(members)):
            for b_pos in range(a_pos + 1, len(members)):
                a, b = members[a_pos], members[b_pos]
                if (a, b) in unreachable or (b, a) in unreachable:
                    continue  # dependent pair can never share a step
                for t in range(t_max):
                    y = add_binary_product(problem, x[a][t], x[b][t], f"y_{a}_{b}_{t}")
                    problem.add_objective_term(y, 1.0)
    return problem, x


def _assignment_from_milp(
    instance: FusionInstance,
    x: list[list[Variable]],
    solution: MilpSolution,
) -> list[int]:
    steps = []
    for i in range(instance.num_ops):
        row = [solution.x[var.index] for var in x[i]]
        steps.append(int(np.argmax(row)))
    return steps


def _warm_start_vector(instance: FusionInstance, problem: MilpProblem, x, steps: list[int]) -> np.ndarray:
    vec = np.zeros(problem.num_vars)
    for i, step in enumerate(steps):
        vec[x[i][step].index] = 1.0
    # Set product variables consistently (y = x1 * x2).
    for var in problem.variables:
        if var.integer or not var.name.startswith("y_"):
            continue
        _, a, b, t = var.name.split("_")
        a, b, t = int(a), int(b), int(t)
        vec[var.index] = 1.0 if steps[a] == t and steps[b] == t else 0.0
    return vec


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def solve_fusion(
    instance: FusionInstance,
    exact: bool | None = None,
    exact_op_limit: int = 20,
    solver: BranchAndBoundSolver | None = None,
) -> FusionAssignment:
    """Solve a fusion instance, choosing the exact or heuristic path.

    ``exact=None`` auto-selects: instances up to ``exact_op_limit`` ops run
    the MILP (warm-started from the heuristic, so the result is never worse
    than greedy); larger instances use ASAP + local search directly.
    """
    if instance.num_ops == 0:
        return FusionAssignment(instance, [], method="empty")
    greedy = _local_improve(instance, _greedy_assignment(instance))
    use_exact = exact if exact is not None else instance.num_ops <= exact_op_limit
    if not use_exact:
        return FusionAssignment(instance, greedy, method="heuristic")

    problem, x = build_fusion_milp(instance)
    warm = _warm_start_vector(instance, problem, x, greedy)
    bb = solver or BranchAndBoundSolver()
    solution = bb.solve(problem, warm_start=warm)
    if not solution.ok:
        return FusionAssignment(instance, greedy, method="heuristic_fallback")
    steps = _assignment_from_milp(instance, x, solution)
    assignment = FusionAssignment(instance, steps, method="milp", milp_status=solution.status)
    # The MILP can only match or beat the warm start, but guard anyway.
    if assignment.fused_pair_count() < FusionAssignment(instance, greedy).fused_pair_count():
        return FusionAssignment(instance, greedy, method="heuristic_fallback")
    return assignment
