"""Linearization of products of binary variables (McCormick envelopes).

The paper's horizontal-fusion objective (Eq. 3-4) maximizes the sum of
*squared* per-time-step fusion degrees -- a quadratic function of the
binary assignment matrix. Expanding the square,

    (sum_i F[i][j])**2 = sum_i F[i][j] + 2 * sum_{i<k} F[i][j] * F[k][j],

and since each operation executes exactly once (Eq. 1), the linear part is
a constant; maximizing the quadratic objective is equivalent to maximizing
the number of *co-scheduled same-type pairs*. Each pairwise product is
linearized exactly with the standard McCormick constraints for binaries:

    y <= x1,   y <= x2,   y >= x1 + x2 - 1,   0 <= y <= 1.

With a maximization objective putting positive weight on ``y``, the upper
constraints make ``y = min(x1, x2)`` at optimality, so ``y`` may safely be
continuous -- keeping the integer variable count at |F|.
"""

from __future__ import annotations

from .model import MilpProblem, Variable

__all__ = ["add_binary_product", "add_pairwise_products"]


def add_binary_product(
    problem: MilpProblem,
    x1: Variable,
    x2: Variable,
    name: str,
) -> Variable:
    """Add ``y = x1 * x2`` for binary ``x1, x2``; returns the product var."""
    y = problem.add_var(name, lb=0.0, ub=1.0, integer=False)
    problem.add_constraint({y: 1.0, x1: -1.0}, "<=", 0.0, name=f"{name}_le_x1")
    problem.add_constraint({y: 1.0, x2: -1.0}, "<=", 0.0, name=f"{name}_le_x2")
    problem.add_constraint({y: 1.0, x1: -1.0, x2: -1.0}, ">=", -1.0, name=f"{name}_ge_sum")
    return y


def add_pairwise_products(
    problem: MilpProblem,
    variables: list[Variable],
    prefix: str,
) -> list[Variable]:
    """Add product variables for every unordered pair in ``variables``."""
    products: list[Variable] = []
    for a in range(len(variables)):
        for b in range(a + 1, len(variables)):
            products.append(
                add_binary_product(problem, variables[a], variables[b], f"{prefix}_{a}_{b}")
            )
    return products
