"""A small mixed-integer linear programming modeling layer.

The paper formulates horizontal-fusion planning as a MILP (§6.2) and
solves it with Gurobi. Gurobi is unavailable here, so ``repro.milp``
provides a from-scratch replacement: this module is the modeling surface
(variables, linear constraints, linear objective) and
:mod:`repro.milp.branch_and_bound` is the solver, using scipy's HiGHS
``linprog`` for LP relaxations. Quadratic binary objectives are lowered to
linear form by :mod:`repro.milp.linearize`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["Variable", "Constraint", "MilpProblem"]


@dataclass(frozen=True)
class Variable:
    """One decision variable (identified by its column index)."""

    index: int
    name: str
    lb: float = 0.0
    ub: float = 1.0
    integer: bool = True

    def __post_init__(self) -> None:
        if self.lb > self.ub:
            raise ValueError(f"variable {self.name!r}: lb {self.lb} > ub {self.ub}")


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum(coef * var) <sense> rhs``."""

    coeffs: tuple[tuple[int, float], ...]
    sense: str  # "<=", ">=", "=="
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"constraint sense must be <=, >= or ==, got {self.sense!r}")


class MilpProblem:
    """A MILP under construction: maximize/minimize a linear objective."""

    def __init__(self, name: str = "milp", maximize: bool = True) -> None:
        self.name = name
        self.maximize = maximize
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective: dict[int, float] = {}
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = 1.0,
        integer: bool = True,
    ) -> Variable:
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(index=len(self.variables), name=name, lb=lb, ub=ub, integer=integer)
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(
        self,
        coeffs: Mapping[Variable, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        packed = tuple((v.index, float(c)) for v, c in coeffs.items() if c != 0.0)
        con = Constraint(coeffs=packed, sense=sense, rhs=float(rhs), name=name)
        self.constraints.append(con)
        return con

    def set_objective(self, coeffs: Mapping[Variable, float]) -> None:
        self._objective = {v.index: float(c) for v, c in coeffs.items()}

    def add_objective_term(self, var: Variable, coef: float) -> None:
        self._objective[var.index] = self._objective.get(var.index, 0.0) + float(coef)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # ------------------------------------------------------------------
    # Matrix form (consumed by the solver)
    # ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray | list]:
        """Lower to the arrays scipy ``linprog`` consumes (minimization form)."""
        n = self.num_vars
        c = np.zeros(n)
        for idx, coef in self._objective.items():
            c[idx] = coef
        if self.maximize:
            c = -c

        a_ub_rows: list[np.ndarray] = []
        b_ub: list[float] = []
        a_eq_rows: list[np.ndarray] = []
        b_eq: list[float] = []
        for con in self.constraints:
            row = np.zeros(n)
            for idx, coef in con.coeffs:
                row[idx] += coef
            if con.sense == "<=":
                a_ub_rows.append(row)
                b_ub.append(con.rhs)
            elif con.sense == ">=":
                a_ub_rows.append(-row)
                b_ub.append(-con.rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(con.rhs)

        bounds = [(v.lb, v.ub) for v in self.variables]
        integer_mask = np.array([v.integer for v in self.variables], dtype=bool)
        return {
            "c": c,
            "A_ub": np.array(a_ub_rows) if a_ub_rows else None,
            "b_ub": np.array(b_ub) if b_ub else None,
            "A_eq": np.array(a_eq_rows) if a_eq_rows else None,
            "b_eq": np.array(b_eq) if b_eq else None,
            "bounds": bounds,
            "integer_mask": integer_mask,
        }

    def objective_value(self, x: np.ndarray) -> float:
        """Evaluate the (original, un-negated) objective at ``x``."""
        total = 0.0
        for idx, coef in self._objective.items():
            total += coef * x[idx]
        return total

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check all constraints and bounds at the point ``x``."""
        for v in self.variables:
            if x[v.index] < v.lb - tol or x[v.index] > v.ub + tol:
                return False
            if v.integer and abs(x[v.index] - round(x[v.index])) > tol:
                return False
        for con in self.constraints:
            lhs = sum(coef * x[idx] for idx, coef in con.coeffs)
            if con.sense == "<=" and lhs > con.rhs + tol:
                return False
            if con.sense == ">=" and lhs < con.rhs - tol:
                return False
            if con.sense == "==" and abs(lhs - con.rhs) > tol:
                return False
        return True
