"""Content-addressed caching of MILP solves.

The planner re-solves structurally identical fusion MILPs constantly: a
watchdog-triggered replan rebuilds the same per-GPU instances, a drifted
graph set changes kernel latencies but not the dependency structure the
MILP encodes, and the mapping hill-climb re-prices the same GPU groupings
many times per search. Solving is the expensive part; the problem itself
is cheap to fingerprint.

A solve is cached under a SHA-256 of the *canonical array form* of the
problem (objective, constraint matrices, bounds, integrality mask), the
solver's limits and tolerances, and the warm-start vector. Anything that
could change the returned solution changes the key, so a cache hit is
bit-identical to re-solving. Entries can persist to a directory next to
plan artifacts so a fresh process replanning the same workload starts
warm.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ioutil import advisory_lock, atomic_write_text
from .model import MilpProblem

__all__ = ["SolveCacheStats", "SolveCache", "problem_fingerprint"]

#: Bump when the solver's search behaviour changes in a way that can alter
#: returned solutions; persisted entries from older code are then ignored.
SOLVER_CACHE_VERSION = 1


def _update_array(h, label: str, arr) -> None:
    h.update(label.encode())
    if arr is None:
        h.update(b"<none>")
        return
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    h.update(repr(a.shape).encode())
    h.update(a.tobytes())


def problem_fingerprint(
    problem: MilpProblem,
    node_limit: int,
    time_limit_s: float,
    integrality_tol: float,
    gap_tol: float,
    warm_start: np.ndarray | None = None,
) -> str:
    """Canonical content hash of a problem plus everything solve() consults.

    Two calls with equal fingerprints run the identical deterministic
    search, so their solutions are interchangeable.
    """
    arrays = problem.to_arrays()
    h = hashlib.sha256()
    h.update(f"milp-v{SOLVER_CACHE_VERSION}".encode())
    _update_array(h, "c", arrays["c"])
    _update_array(h, "A_ub", arrays["A_ub"])
    _update_array(h, "b_ub", arrays["b_ub"])
    _update_array(h, "A_eq", arrays["A_eq"])
    _update_array(h, "b_eq", arrays["b_eq"])
    _update_array(h, "bounds", np.asarray(arrays["bounds"], dtype=np.float64))
    h.update(b"int")
    h.update(np.ascontiguousarray(arrays["integer_mask"]).tobytes())
    h.update(repr((node_limit, time_limit_s, integrality_tol, gap_tol)).encode())
    _update_array(h, "warm", warm_start)
    return h.hexdigest()


@dataclass
class SolveCacheStats:
    """Hit/miss accounting for one cache instance.

    ``disk_hits`` counts the subset of ``hits`` served by the persistent
    tier rather than process memory. ``lock_contention`` counts stores
    that skipped the disk tier because another process held the advisory
    lock -- distinct from a miss; the memory tier still serves.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    lock_contention: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "lock_contention": self.lock_contention,
        }


class SolveCache:
    """In-memory (and optionally on-disk) store of finished MILP solves.

    Values are stored as plain JSON payloads rather than live
    :class:`~repro.milp.branch_and_bound.MilpSolution` objects so memory and
    disk entries round-trip through the same representation -- a warm hit
    from either tier rebuilds the identical solution.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict] = {}
        self.stats = SolveCacheStats()
        self._metrics = None
        # Reentrant for symmetry with PlanCache: concurrent admission
        # threads share one solver cache across per-tenant planners.
        self._tier_lock = threading.RLock()

    def bind_metrics(self, registry, cache: str = "milp") -> None:
        """Mirror hit/miss/store accounting into a telemetry registry."""
        self._metrics = registry
        self._metric_label = cache

    def _count(self, outcome: str, tier: str | None = None) -> None:
        if self._metrics is None:
            return
        labels = {"cache": self._metric_label}
        if tier is not None:
            labels["tier"] = tier
        self._metrics.counter(
            f"rap_cache_{outcome}_total",
            help=f"Cache {outcome} by cache and tier",
            labels=labels,
        ).inc()

    # ------------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.milp.json"

    def get(self, key: str):
        """Return the cached :class:`MilpSolution` for ``key``, or ``None``."""
        with self._tier_lock:
            tier = "memory"
            payload = self._memory.get(key)
            if payload is None and self.directory is not None:
                path = self._path(key)
                if path.exists():
                    try:
                        payload = json.loads(path.read_text())
                    except (OSError, json.JSONDecodeError):
                        payload = None  # treat a torn write as a miss
                    else:
                        self._memory[key] = payload
                        tier = "disk"
            if payload is None:
                self.stats.misses += 1
                self._count("misses")
                return None
            self.stats.hits += 1
            if tier == "disk":
                self.stats.disk_hits += 1
            self._count("hits", tier)
            return _solution_from_payload(payload)

    def put(self, key: str, solution) -> None:
        payload = _solution_to_payload(solution)
        with self._tier_lock:
            self._memory[key] = payload
            self.stats.stores += 1
            self._count("stores")
            if self.directory is not None:
                # Same crash-safety contract as the plan cache: atomic replace
                # under a non-blocking advisory lock, contention downgrades to
                # a skipped store rather than an error or a torn file.
                try:
                    with advisory_lock(self.directory / ".lock") as acquired:
                        if acquired:
                            atomic_write_text(self._path(key), json.dumps(payload))
                        else:
                            self.stats.lock_contention += 1
                            self._count("lock_contention", "disk")
                except OSError:
                    pass  # persistence is best-effort; memory tier still serves

    def __len__(self) -> int:
        with self._tier_lock:
            return len(self._memory)


def _solution_to_payload(solution) -> dict:
    return {
        "status": solution.status,
        "x": None if solution.x is None else [float(v) for v in solution.x],
        "objective": solution.objective,
        "nodes_explored": solution.nodes_explored,
        "gap": solution.gap,
    }


def _solution_from_payload(payload: dict):
    from .branch_and_bound import MilpSolution

    x = payload["x"]
    return MilpSolution(
        status=payload["status"],
        x=None if x is None else np.asarray(x, dtype=float),
        objective=payload["objective"],
        nodes_explored=payload["nodes_explored"],
        gap=payload["gap"],
    )
