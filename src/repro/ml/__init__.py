"""``repro.ml`` -- from-scratch gradient-boosted trees (XGBoost stand-in)."""

from .tree import RegressionTree
from .gbdt import GradientBoostingRegressor
from .metrics import mae, mape, mse, r2_score, within_tolerance_accuracy

__all__ = [
    "RegressionTree",
    "GradientBoostingRegressor",
    "mae",
    "mape",
    "mse",
    "r2_score",
    "within_tolerance_accuracy",
]
