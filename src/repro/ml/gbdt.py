"""Gradient-boosted regression trees: the XGBoost stand-in (§5.2).

Squared-error gradient boosting with shrinkage, optional row subsampling,
and optional early stopping against a held-out fraction. This is all the
paper's latency predictor needs: Table 5's bar is >=92% of predictions
within +/-10% of the measured kernel latency, which a few dozen shallow
trees reach on the simulator's ground truth.
"""

from __future__ import annotations

import numpy as np

from .tree import RegressionTree

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting over histogram regression trees."""

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        n_bins: int = 64,
        early_stopping_rounds: int | None = None,
        validation_fraction: float = 0.1,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.n_bins = n_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self.trees_: list[RegressionTree] = []
        self.base_prediction_: float = 0.0
        self.train_scores_: list[float] = []
        self.validation_scores_: list[float] = []
        self._num_features: int | None = None

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be 2-D and aligned with y")
        if len(x) < 2:
            raise ValueError("need at least two samples")
        rng = np.random.default_rng(self.random_state)
        self._num_features = x.shape[1]

        if self.early_stopping_rounds is not None:
            n_val = max(1, int(len(x) * self.validation_fraction))
            perm = rng.permutation(len(x))
            val_idx, train_idx = perm[:n_val], perm[n_val:]
            if len(train_idx) < 2:
                raise ValueError("not enough samples for early stopping split")
            x_val, y_val = x[val_idx], y[val_idx]
            x, y = x[train_idx], y[train_idx]
        else:
            x_val = y_val = None

        self.trees_ = []
        self.train_scores_ = []
        self.validation_scores_ = []
        self.base_prediction_ = float(y.mean())
        pred = np.full(len(y), self.base_prediction_)
        val_pred = None if x_val is None else np.full(len(y_val), self.base_prediction_)
        best_val = np.inf
        rounds_since_best = 0

        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                k = max(2 * self.min_samples_leaf, int(len(x) * self.subsample))
                rows = rng.choice(len(x), size=min(k, len(x)), replace=False)
            else:
                rows = slice(None)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                n_bins=self.n_bins,
            )
            tree.fit(x[rows], residual[rows])
            update = tree.predict(x)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
            self.train_scores_.append(float(np.mean((y - pred) ** 2)))

            if x_val is not None:
                val_pred = val_pred + self.learning_rate * tree.predict(x_val)
                val_mse = float(np.mean((y_val - val_pred) ** 2))
                self.validation_scores_.append(val_mse)
                if val_mse < best_val - 1e-12:
                    best_val = val_mse
                    rounds_since_best = 0
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        break
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._num_features is None:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self._num_features:
            raise ValueError(f"x must be 2-D with {self._num_features} features")
        out = np.full(len(x), self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        return out

    @property
    def n_trees_(self) -> int:
        return len(self.trees_)

    def feature_importances(self) -> np.ndarray:
        """Split-count importances, normalized to sum to 1."""
        if self._num_features is None:
            raise RuntimeError("model is not fitted")
        counts = np.zeros(self._num_features, dtype=np.float64)
        for tree in self.trees_:
            counts += tree.feature_split_counts(self._num_features)
        total = counts.sum()
        return counts / total if total > 0 else counts
