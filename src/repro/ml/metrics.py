"""Regression metrics, including the paper's Table-5 accuracy criterion."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "mae", "mape", "r2_score", "within_tolerance_accuracy"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-12) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred) / np.maximum(np.abs(y_true), eps)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean()) ** 2)
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def within_tolerance_accuracy(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    tolerance: float = 0.10,
) -> float:
    """Fraction of predictions within ``tolerance`` relative error.

    This is the paper's Table-5 metric: "the percentage of samples where
    the predicted latency deviates by no more than a 10% absolute gap from
    the actual measured latency".
    """
    y_true, y_pred = _validate(y_true, y_pred)
    rel = np.abs(y_pred - y_true) / np.maximum(np.abs(y_true), 1e-12)
    return float(np.mean(rel <= tolerance + 1e-12))
