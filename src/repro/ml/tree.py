"""Histogram-based regression trees (the weak learner for our GBDT).

Implements the split-finding strategy modern boosting libraries use:
feature values are bucketed into quantile histograms once, and each node
scans bucket boundaries for the split minimizing the squared-error
impurity. Trees are stored in flat arrays for fast vectorized prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree"]


@dataclass
class _Split:
    feature: int
    threshold: float
    gain: float


class RegressionTree:
    """A CART-style regression tree with histogram split finding.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum samples in each child for a split to be admissible.
    n_bins:
        Number of quantile bins per feature for candidate thresholds.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 5, n_bins: int = 64) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        # Flat tree arrays, populated by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples x features)")
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        self._build(x, y, np.arange(len(x)), depth=0)
        self._fitted = True
        return self

    def _new_node(self) -> int:
        self._feature.append(-1)
        self._threshold.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._value.append(0.0)
        return len(self._feature) - 1

    def _build(self, x: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node = self._new_node()
        target = y[idx]
        self._value[node] = float(target.mean())
        if depth >= self.max_depth or len(idx) < 2 * self.min_samples_leaf or np.ptp(target) == 0:
            return node
        split = self._best_split(x[idx], target)
        if split is None:
            return node
        mask = x[idx, split.feature] <= split.threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return node
        self._feature[node] = split.feature
        self._threshold[node] = split.threshold
        self._left[node] = self._build(x, y, left_idx, depth + 1)
        self._right[node] = self._build(x, y, right_idx, depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> _Split | None:
        n, d = x.shape
        total_sum = y.sum()
        total_sq = (y * y).sum()
        base_impurity = total_sq - total_sum**2 / n
        best: _Split | None = None
        for f in range(d):
            col = x[:, f]
            lo, hi = col.min(), col.max()
            if lo == hi:
                continue
            # Quantile-ish candidate thresholds via histogram bin edges.
            qs = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
            thresholds = np.unique(np.quantile(col, qs))
            if thresholds.size == 0:
                continue
            order = np.argsort(col, kind="stable")
            sorted_col = col[order]
            sorted_y = y[order]
            csum = np.cumsum(sorted_y)
            csq = np.cumsum(sorted_y * sorted_y)
            # Position of each threshold in the sorted column.
            pos = np.searchsorted(sorted_col, thresholds, side="right")
            valid = (pos >= self.min_samples_leaf) & (pos <= n - self.min_samples_leaf)
            if not valid.any():
                continue
            pos = pos[valid]
            thr = thresholds[valid]
            left_n = pos.astype(np.float64)
            left_sum = csum[pos - 1]
            left_sq = csq[pos - 1]
            right_n = n - left_n
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            impurity = (left_sq - left_sum**2 / left_n) + (right_sq - right_sum**2 / right_n)
            gains = base_impurity - impurity
            k = int(np.argmax(gains))
            if gains[k] > 1e-12 and (best is None or gains[k] > best.gain):
                best = _Split(feature=f, threshold=float(thr[k]), gain=float(gains[k]))
        return best

    # ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples x features)")
        out = np.empty(len(x), dtype=np.float64)
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)
        nodes = np.zeros(len(x), dtype=np.int64)
        active = np.arange(len(x))
        while active.size:
            cur = nodes[active]
            is_leaf = feature[cur] < 0
            done = active[is_leaf]
            out[done] = value[cur[is_leaf]]
            active = active[~is_leaf]
            if active.size == 0:
                break
            cur = nodes[active]
            go_left = x[active, feature[cur]] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
        return out

    @property
    def num_nodes(self) -> int:
        return len(self._feature)

    @property
    def depth(self) -> int:
        if not self._fitted:
            return 0

        def walk(node: int) -> int:
            if self._feature[node] < 0:
                return 0
            return 1 + max(walk(self._left[node]), walk(self._right[node]))

        return walk(0)

    def feature_split_counts(self, num_features: int) -> np.ndarray:
        counts = np.zeros(num_features, dtype=np.int64)
        for f in self._feature:
            if f >= 0:
                counts[f] += 1
        return counts
