"""``repro.preprocessing`` -- DLRM input preprocessing substrate.

Implements the paper's Table-1 operator library (real numpy transforms plus
GPU/CPU cost descriptors), the per-feature preprocessing graphs RAP maps
across GPUs, the Table-3 workload plans, a synthetic Criteo-schema data
generator, and a functional executor.
"""

from .data import (
    Batch,
    CriteoSchema,
    DenseColumn,
    KAGGLE_SCHEMA,
    SparseColumn,
    SyntheticCriteoDataset,
    TERABYTE_SCHEMA,
    concat_csr_blocks,
    lengths_from_offsets,
    offsets_from_lengths,
    rowwise_concat_csr,
    segment_positions,
)
from .backends import BACKEND_NAMES, KernelBackend, available_backends, resolve_backend
from .engine import (
    BufferArena,
    CompileError,
    CompiledProgram,
    compile_graph_set,
    compile_op_groups,
    plan_slots,
)
from .parallel import (
    EngineMetrics,
    EngineWorkerError,
    ParallelEngine,
    partition_ops,
)
from .ops import (
    OP_REGISTRY,
    BoxCox,
    Bucketize,
    Cast,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    MapId,
    Ngram,
    Onehot,
    PreprocessingOp,
    SigridHash,
    concat_sparse_rows,
    make_op,
)
from .graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from .plans import PLAN_TABLE, PlanSpec, build_plan, build_skewed_plan, table_for_sparse_feature
from .executor import (
    DataPreparation,
    KernelExecutionError,
    KernelOOMError,
    MissingColumnsError,
    PreprocessingError,
    WorkerPoolError,
    estimate_data_preparation,
    execute_graph_set,
)
from .random_plans import RandomPlanConfig, generate_random_plan

# The feeder moved to repro.ingest (which imports this package for the
# column types); resolve the legacy names lazily to avoid the cycle.
_INGEST_NAMES = ("PipelinedFeeder", "SyntheticBatchSource")


def __getattr__(name: str):
    if name in _INGEST_NAMES:
        from repro import ingest

        return getattr(ingest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Batch",
    "CriteoSchema",
    "DenseColumn",
    "SparseColumn",
    "SyntheticCriteoDataset",
    "KAGGLE_SCHEMA",
    "TERABYTE_SCHEMA",
    "concat_csr_blocks",
    "lengths_from_offsets",
    "offsets_from_lengths",
    "rowwise_concat_csr",
    "segment_positions",
    "BACKEND_NAMES",
    "BufferArena",
    "CompileError",
    "CompiledProgram",
    "EngineMetrics",
    "EngineWorkerError",
    "KernelBackend",
    "ParallelEngine",
    "available_backends",
    "compile_graph_set",
    "compile_op_groups",
    "partition_ops",
    "plan_slots",
    "resolve_backend",
    "PipelinedFeeder",
    "SyntheticBatchSource",
    "OP_REGISTRY",
    "PreprocessingOp",
    "BoxCox",
    "Bucketize",
    "Cast",
    "Clamp",
    "FillNull",
    "FirstX",
    "Logit",
    "MapId",
    "Ngram",
    "Onehot",
    "SigridHash",
    "concat_sparse_rows",
    "make_op",
    "DENSE_CONSUMER",
    "FeatureGraph",
    "GraphSet",
    "PLAN_TABLE",
    "PlanSpec",
    "build_plan",
    "build_skewed_plan",
    "table_for_sparse_feature",
    "DataPreparation",
    "PreprocessingError",
    "MissingColumnsError",
    "KernelExecutionError",
    "KernelOOMError",
    "WorkerPoolError",
    "estimate_data_preparation",
    "execute_graph_set",
    "RandomPlanConfig",
    "generate_random_plan",
]
