"""Pluggable kernel backends for the compiled engine (ROADMAP item 3).

The compiled engine (:mod:`repro.preprocessing.engine`) dispatches every
fused step to a module-level kernel in :mod:`repro.preprocessing.ops`.
This module puts a *backend registry* in front of that dispatch: at
compile time each step asks the selected backend for its kernel, and the
backend answers either an accelerated implementation (numba / numexpr)
or the reference numpy kernel.

Design rules, in priority order:

1. **Bit-identity is non-negotiable.** A backend may only accelerate a
   kernel when its result is *structurally guaranteed* to equal the numpy
   reference for every input: integer arithmetic (sigridhash's splitmix64
   mix, mapid's affine remap, clamp, firstx, ngram's rolling hash),
   comparison-only float work (bucketize's binary search, onehot's
   clip+scale with a single rounding), and fillnull's NaN/inf replacement.
   Transcendental kernels (logit, boxcox) stay on numpy because SIMD and
   scalar libm may disagree in the last ulp. The property-based
   equivalence suite enforces the contract for every backend it can
   import.
2. **Graceful degradation.** When the requested library is not importable
   the backend silently resolves every kernel to numpy and records why;
   when a jit compile fails *at runtime* the call falls back to numpy for
   good and bumps ``fallbacks``. Nothing above this module needs a
   ``try: import numba``.
3. **Determinism.** Backend selection is a pure function of
   ``(backend name, kernel name, library availability)`` -- no timing
   heuristics -- so two compiles of the same program always pick the same
   kernels.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from . import ops as _ops
from .data import lengths_from_offsets, offsets_from_lengths

__all__ = [
    "KernelBackend",
    "BACKEND_NAMES",
    "available_backends",
    "resolve_backend",
]

#: Kernel entry points a backend may accelerate (names match ``ops.py``).
KERNEL_NAMES = (
    "fillnull_kernel",
    "cast_kernel",
    "logit_kernel",
    "boxcox_kernel",
    "onehot_kernel",
    "bucketize_kernel",
    "sigridhash_kernel",
    "clamp_kernel",
    "mapid_kernel",
    "firstx_kernel",
    "ngram_kernel",
)

#: Valid ``--kernel-backend`` values ("auto" picks the best importable).
BACKEND_NAMES = ("auto", "numpy", "numba", "numexpr")


class KernelBackend:
    """A named kernel table with per-kernel numpy fallback.

    ``kernel(name)`` always returns a callable with the reference
    signature; ``accelerates(name)`` says whether that callable is a
    non-numpy implementation. ``fallbacks`` counts runtime jit failures
    that were silently demoted to numpy.
    """

    def __init__(
        self,
        name: str,
        requested: str,
        table: dict[str, Callable] | None = None,
        unavailable_reason: str | None = None,
    ) -> None:
        self.name = name
        self.requested = requested
        self.unavailable_reason = unavailable_reason
        self._table = table or {}
        self.fallbacks = 0

    def kernel(self, kernel_name: str) -> Callable:
        accelerated = self._table.get(kernel_name)
        if accelerated is not None:
            return accelerated
        return getattr(_ops, kernel_name)

    def accelerates(self, kernel_name: str) -> bool:
        return kernel_name in self._table

    @property
    def accelerated_kernels(self) -> tuple[str, ...]:
        return tuple(sorted(self._table))

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "requested": self.requested,
            "accelerated_kernels": list(self.accelerated_kernels),
            "fallbacks": self.fallbacks,
            "unavailable_reason": self.unavailable_reason,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r}, accelerates={list(self._table)})"


def _guarded(backend: KernelBackend, compile_fn: Callable[[], Callable], reference: Callable) -> Callable:
    """Wrap a lazily-compiled kernel with a permanent numpy fallback.

    The accelerated implementation is built on first call (so importing
    this module never pays jit time); if building or the first call
    raises, every subsequent call uses the numpy reference and the
    backend's ``fallbacks`` counter is bumped once.
    """
    lock = threading.Lock()
    state: dict[str, Callable | None] = {"impl": None, "failed": None}

    def call(*args, **kwargs):
        impl = state["impl"]
        if impl is None:
            with lock:
                impl = state["impl"]
                if impl is None:
                    try:
                        impl = compile_fn()
                    except Exception:
                        impl = reference
                        backend.fallbacks += 1
                    state["impl"] = impl
        if state["failed"] is None:
            try:
                return impl(*args, **kwargs)
            except ValueError:
                raise  # argument validation, identical on every backend
            except Exception:
                if impl is reference:
                    raise
                state["failed"] = True
                backend.fallbacks += 1
        return reference(*args, **kwargs)

    return call


# ----------------------------------------------------------------------
# numba backend
#
# Element-loop re-implementations of the exactly-reproducible kernels.
# Every loop replicates the numpy reference's arithmetic order and
# rounding behaviour (documented inline where it is subtle).
# ----------------------------------------------------------------------


def _build_numba_table(backend: KernelBackend) -> dict[str, Callable]:
    import numba  # noqa: F401 -- availability probe; raises ImportError when absent

    def make_sigridhash():
        from numba import njit

        @njit(cache=True)
        def loop(vals, salt, max_value, out):
            mult = np.uint64(0x9E3779B97F4A7C15)
            m2 = np.uint64(0xBF58476D1CE4E5B9)
            s = np.uint64(salt)
            mod = np.uint64(max_value)
            for i in range(vals.shape[0]):
                h = vals[i] * mult + s
                h ^= h >> np.uint64(29)
                h *= m2
                h ^= h >> np.uint64(32)
                out[i] = h % mod

        def sigridhash(values, salt, max_value, out=None):
            if out is None:
                out = np.empty(values.shape[0], dtype=np.int64)
            loop(_ops._as_uint64(np.ascontiguousarray(values)), salt, max_value, _ops._as_uint64(out))
            return out

        return sigridhash

    def make_mapid():
        from numba import njit

        @njit(cache=True)
        def loop(vals, multiplier, offset, table_size, out):
            mult = np.uint64(multiplier)
            off = np.uint64(offset)
            mod = np.uint64(table_size)
            for i in range(vals.shape[0]):
                out[i] = (vals[i] * mult + off) % mod

        def mapid(values, multiplier, offset, table_size, out=None):
            if out is None:
                out = np.empty(values.shape[0], dtype=np.int64)
            loop(
                _ops._as_uint64(np.ascontiguousarray(values)),
                multiplier,
                offset,
                table_size,
                _ops._as_uint64(out),
            )
            return out

        return mapid

    def make_clamp():
        from numba import njit

        @njit(cache=True)
        def loop(vals, lower, upper, out):
            for i in range(vals.shape[0]):
                v = vals[i]
                if v < lower:
                    v = lower
                elif v > upper:
                    v = upper
                out[i] = v

        def clamp(values, lower, upper, out=None):
            if lower > upper:
                raise ValueError("Clamp lower bound exceeds upper bound")
            if out is None:
                out = np.empty(values.shape[0], dtype=values.dtype)
            loop(values, lower, upper, out)
            return out

        return clamp

    def make_bucketize():
        from numba import njit

        # bisect_right over sorted borders == searchsorted(side="right");
        # NaN maps to 0.0 and +/-inf to the float64 extremes exactly like
        # np.nan_to_num before the search.
        @njit(cache=True)
        def loop(vals, borders, out):
            fmax = np.finfo(np.float64).max
            n = borders.shape[0]
            for i in range(vals.shape[0]):
                x = vals[i]
                if np.isnan(x):
                    x = 0.0
                elif x == np.inf:
                    x = fmax
                elif x == -np.inf:
                    x = -fmax
                lo = 0
                hi = n
                while lo < hi:
                    mid = (lo + hi) // 2
                    if x < borders[mid]:
                        hi = mid
                    else:
                        lo = mid + 1
                out[i] = lo

        def bucketize(values, borders, out=None):
            if out is None:
                out = np.empty(values.shape[0], dtype=np.int64)
            loop(
                np.ascontiguousarray(values, dtype=np.float64),
                np.asarray(borders, dtype=np.float64),
                out,
            )
            return out

        return bucketize

    def make_onehot():
        from numba import njit

        # One float64 multiply then C-style truncation -- the identical
        # single-rounding sequence the numpy reference performs.
        @njit(cache=True)
        def loop(vals, num_classes, out):
            top = num_classes - 1
            for i in range(vals.shape[0]):
                x = vals[i]
                if np.isnan(x):
                    x = 0.0
                if x < 0.0:
                    x = 0.0
                elif x > 1.0:
                    x = 1.0
                idx = np.int64(x * num_classes)
                if idx > top:
                    idx = top
                out[i] = idx

        def onehot(values, num_classes, out=None):
            if out is None:
                out = np.empty(values.shape[0], dtype=np.int64)
            loop(np.ascontiguousarray(values, dtype=np.float64), num_classes, out)
            return out

        return onehot

    def make_fillnull():
        from numba import njit

        # float32 conversion first, then NaN -> fill and +/-inf -> float32
        # extremes: the exact np.nan_to_num(values.astype(float32)) map.
        @njit(cache=True)
        def loop(vals, fill, out):
            fmax = np.finfo(np.float32).max
            for i in range(vals.shape[0]):
                x = np.float32(vals[i])
                if np.isnan(x):
                    x = fill
                elif x == np.inf:
                    x = fmax
                elif x == -np.inf:
                    x = -fmax
                out[i] = x

        def fillnull(values, fill_value, out=None):
            if out is None:
                out = np.empty(values.shape[0], dtype=np.float32)
            loop(np.ascontiguousarray(values), np.float32(fill_value), out)
            return out

        return fillnull

    def make_firstx():
        from numba import njit

        @njit(cache=True)
        def loop(offsets, values, x, out_offsets, out_values):
            pos = 0
            for r in range(offsets.shape[0] - 1):
                start = offsets[r]
                end = min(offsets[r + 1], start + x)
                for j in range(start, end):
                    out_values[pos] = values[j]
                    pos += 1

        def firstx(offsets, values, x, out_offsets=None, out_values=None):
            if x <= 0:
                raise ValueError("FirstX needs x >= 1")
            lengths = lengths_from_offsets(offsets)
            out_offsets = offsets_from_lengths(np.minimum(lengths, x), out=out_offsets)
            nnz = int(out_offsets[-1])
            if out_values is None:
                out_values = np.empty(nnz, dtype=values.dtype)
            loop(offsets, values, x, out_offsets, out_values[:nnz])
            return out_offsets, out_values

        return firstx

    def make_ngram():
        from numba import njit

        # Per-window rolling hash h = ((v0*p + v1)*p + v2)... in uint64 --
        # the same left-fold the vectorized reference computes.
        @njit(cache=True)
        def loop(offsets, vals, n, mod, out_values):
            prime = np.uint64(1_000_003)
            m = np.uint64(mod)
            pos = 0
            for r in range(offsets.shape[0] - 1):
                start = offsets[r]
                end = offsets[r + 1]
                for w in range(start, end - n + 1):
                    h = np.uint64(0)
                    for t in range(n):
                        h = h * prime + vals[w + t]
                    out_values[pos] = h % m
                    pos += 1

        def ngram(offsets, values, n, out_hash_size, out_offsets=None, out_values=None):
            if n < 1:
                raise ValueError("Ngram needs n >= 1")
            lengths = lengths_from_offsets(offsets)
            out_offsets = offsets_from_lengths(np.maximum(lengths - n + 1, 0), out=out_offsets)
            nnz = int(out_offsets[-1])
            if nnz == 0:
                empty = values[:0] if out_values is None else out_values[:0]
                return out_offsets, empty
            if out_values is None:
                out_values = np.empty(nnz, dtype=np.int64)
            loop(
                offsets,
                _ops._as_uint64(np.ascontiguousarray(values)),
                n,
                out_hash_size,
                _ops._as_uint64(out_values[:nnz]),
            )
            return out_offsets, out_values

        return ngram

    builders = {
        "sigridhash_kernel": (make_sigridhash, _ops.sigridhash_kernel),
        "mapid_kernel": (make_mapid, _ops.mapid_kernel),
        "clamp_kernel": (make_clamp, _ops.clamp_kernel),
        "bucketize_kernel": (make_bucketize, _ops.bucketize_kernel),
        "onehot_kernel": (make_onehot, _ops.onehot_kernel),
        "fillnull_kernel": (make_fillnull, _ops.fillnull_kernel),
        "firstx_kernel": (make_firstx, _ops.firstx_kernel),
        "ngram_kernel": (make_ngram, _ops.ngram_kernel),
    }
    return {
        name: _guarded(backend, build, reference)
        for name, (build, reference) in builders.items()
    }


# ----------------------------------------------------------------------
# numexpr backend
#
# numexpr's VM only guarantees bit-identity for comparison/select work,
# so acceleration is restricted to clamp (int64 compares + copies).
# ----------------------------------------------------------------------


def _build_numexpr_table(backend: KernelBackend) -> dict[str, Callable]:
    import numexpr  # noqa: F401 -- availability probe

    def make_clamp():
        import numexpr as ne

        def clamp(values, lower, upper, out=None):
            if lower > upper:
                raise ValueError("Clamp lower bound exceeds upper bound")
            if out is None:
                out = np.empty(values.shape[0], dtype=values.dtype)
            ne.evaluate(
                "where(v < lo, lo, where(v > hi, hi, v))",
                local_dict={
                    "v": values,
                    "lo": values.dtype.type(lower),
                    "hi": values.dtype.type(upper),
                },
                out=out,
            )
            return out

        return clamp

    return {"clamp_kernel": _guarded(backend, make_clamp, _ops.clamp_kernel)}


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------

_LIBRARY_BUILDERS = {"numba": _build_numba_table, "numexpr": _build_numexpr_table}


def _import_error(library: str) -> str | None:
    try:
        __import__(library)
        return None
    except Exception as exc:  # ImportError, or a broken install
        return f"{type(exc).__name__}: {exc}"


def available_backends() -> dict[str, bool]:
    """Importability of every named backend (numpy/auto are always on)."""
    out = {"numpy": True, "auto": True}
    for library in _LIBRARY_BUILDERS:
        out[library] = _import_error(library) is None
    return out


def resolve_backend(backend: "str | KernelBackend | None") -> KernelBackend:
    """Resolve a backend name to a ready :class:`KernelBackend`.

    ``None``/"numpy" give the reference table; "numba"/"numexpr" give the
    accelerated table when the library imports and otherwise degrade to a
    numpy table whose ``unavailable_reason`` says why; "auto" prefers
    numba, then numexpr, then numpy.
    """
    if isinstance(backend, KernelBackend):
        return backend
    requested = backend or "numpy"
    if requested not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {requested!r}; expected one of {BACKEND_NAMES}"
        )
    if requested == "numpy":
        return KernelBackend("numpy", requested)
    candidates = ["numba", "numexpr"] if requested == "auto" else [requested]
    reasons = []
    for library in candidates:
        reason = _import_error(library)
        if reason is None:
            resolved = KernelBackend(library, requested)
            resolved._table = _LIBRARY_BUILDERS[library](resolved)
            return resolved
        reasons.append(f"{library} unavailable ({reason})")
    return KernelBackend("numpy", requested, unavailable_reason="; ".join(reasons))
