"""Synthetic Criteo-schema data: columns, batches, and the generator.

The paper evaluates on Criteo Kaggle and Criteo Terabyte -- click-log
datasets with 13 continuous ("dense") features and 26 categorical
("sparse") features per sample. Those datasets matter to RAP only through
their schema and volume, so this module provides a deterministic synthetic
generator with the same shape: dense columns in [0, 1] with configurable
NaN rates (so ``FillNull`` has real work to do) and ragged sparse columns
in CSR-style ``(offsets, values)`` layout (the KeyedJaggedTensor layout
TorchRec uses) with configurable hash sizes, list lengths, and skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

__all__ = [
    "DenseColumn",
    "SparseColumn",
    "Batch",
    "CriteoSchema",
    "SyntheticCriteoDataset",
    "KAGGLE_SCHEMA",
    "TERABYTE_SCHEMA",
    "lengths_from_offsets",
    "offsets_from_lengths",
    "segment_positions",
    "concat_csr_blocks",
    "rowwise_concat_csr",
]


# ----------------------------------------------------------------------
# CSR segment helpers
#
# The compiled engine (repro.preprocessing.engine) and the vectorized
# operator kernels work on bare ``(offsets, values)`` arrays rather than
# column objects; these helpers are the shared vocabulary for that layout.
# ----------------------------------------------------------------------


def lengths_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Per-row list lengths of a CSR offsets array."""
    return np.diff(offsets)


def offsets_from_lengths(lengths: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """CSR offsets (``len(lengths) + 1`` entries) from per-row lengths."""
    if out is None:
        out = np.zeros(len(lengths) + 1, dtype=np.int64)
    else:
        if len(out) != len(lengths) + 1:
            raise ValueError(
                f"out buffer has {len(out)} entries, need len(lengths) + 1 = "
                f"{len(lengths) + 1}"
            )
        if not np.issubdtype(out.dtype, np.integer):
            raise ValueError(f"out buffer must be an integer dtype, got {out.dtype}")
        out[0] = 0
    np.cumsum(lengths, out=out[1:])
    return out


def segment_positions(offsets: np.ndarray, lengths: np.ndarray | None = None) -> np.ndarray:
    """Within-row index of every element of a CSR column.

    ``segment_positions([0, 2, 5])`` is ``[0, 1, 0, 1, 2]``: element ``k``'s
    distance from the start of its own row. This is the primitive behind
    vectorized list truncation and row-wise concatenation.
    """
    if lengths is None:
        lengths = lengths_from_offsets(offsets)
    nnz = int(offsets[-1])
    if nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.arange(nnz, dtype=np.int64) - np.repeat(offsets[:-1], lengths)


def concat_csr_blocks(
    offsets_list: Sequence[np.ndarray],
    values_list: Sequence[np.ndarray],
    out_offsets: np.ndarray | None = None,
    out_values: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack several CSR columns row-block after row-block.

    The result has ``sum(rows_i)`` rows: block ``i`` holds column ``i``'s rows
    unchanged. Horizontally-fused segment kernels execute once over the
    stacked column and split their output back into per-member blocks.
    """
    total_rows = sum(len(o) - 1 for o in offsets_list)
    total_nnz = sum(int(o[-1]) for o in offsets_list)
    values_dtype = np.result_type(*values_list) if values_list else np.dtype(np.int64)
    if out_offsets is None:
        out_offsets = np.empty(total_rows + 1, dtype=np.int64)
    else:
        if len(out_offsets) != total_rows + 1:
            raise ValueError(
                f"out_offsets has {len(out_offsets)} entries, need total_rows + 1 = "
                f"{total_rows + 1}"
            )
        if not np.issubdtype(out_offsets.dtype, np.integer):
            raise ValueError(f"out_offsets must be an integer dtype, got {out_offsets.dtype}")
    if out_values is None:
        out_values = np.empty(total_nnz, dtype=values_dtype)
    else:
        if len(out_values) != total_nnz:
            raise ValueError(
                f"out_values has {len(out_values)} entries, need total_nnz = {total_nnz}"
            )
        if not np.can_cast(values_dtype, out_values.dtype, casting="safe"):
            raise ValueError(
                f"out_values dtype {out_values.dtype} cannot safely hold "
                f"input values of dtype {values_dtype}"
            )
    out_offsets[0] = 0
    row, base = 0, 0
    for offs, vals in zip(offsets_list, values_list):
        rows_i, nnz_i = len(offs) - 1, int(offs[-1])
        np.add(offs[1:], base, out=out_offsets[row + 1 : row + rows_i + 1])
        out_values[base : base + nnz_i] = vals
        row += rows_i
        base += nnz_i
    return out_offsets, out_values


def rowwise_concat_csr(
    offsets_list: Sequence[np.ndarray], values_list: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise concatenation of several CSR columns (vectorized).

    Row ``i`` of the result is row ``i`` of each input concatenated in
    order -- the layout ``Ngram`` consumes when it spans multiple sparse
    features. This is the array-level core of
    :func:`repro.preprocessing.ops.concat_sparse_rows`.
    """
    if not offsets_list:
        raise ValueError("need at least one column to concatenate")
    rows = len(offsets_list[0]) - 1
    for offs in offsets_list:
        if len(offs) - 1 != rows:
            raise ValueError("all columns must have the same row count")
    lengths = [lengths_from_offsets(o) for o in offsets_list]
    total_lengths = np.sum(lengths, axis=0)
    offsets = offsets_from_lengths(total_lengths)
    # Preserve the input values dtype (promoted across inputs), matching
    # concat_csr_blocks -- hardcoding int64 silently widened/narrowed.
    values = np.empty(int(offsets[-1]), dtype=np.result_type(*values_list))
    prefix = np.zeros(rows, dtype=np.int64)
    for offs, vals, lens in zip(offsets_list, values_list, lengths):
        starts = offsets[:-1] + prefix
        nnz = int(offs[-1])
        if nnz:
            within = np.arange(nnz, dtype=np.int64) - np.repeat(offs[:-1], lens)
            targets = np.repeat(starts, lens) + within
            values[targets] = vals
        prefix = prefix + lens
    return offsets, values


@dataclass
class DenseColumn:
    """A continuous feature column: one float32 value per sample."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if not (np.issubdtype(self.values.dtype, np.number) or self.values.dtype == np.bool_):
            raise ValueError(f"dense column {self.name!r} must be numeric, got {self.values.dtype}")
        if self.values.ndim != 1:
            raise ValueError(f"dense column {self.name!r} must be 1-D, got shape {self.values.shape}")

    def __len__(self) -> int:
        return len(self.values)

    def copy(self) -> "DenseColumn":
        return DenseColumn(self.name, self.values.copy())

    @classmethod
    def trusted(cls, name: str, values: np.ndarray) -> "DenseColumn":
        """Construct without validation (engine fast path: inputs are known-good)."""
        col = object.__new__(cls)
        col.name = name
        col.values = values
        return col


@dataclass
class SparseColumn:
    """A ragged categorical feature column in CSR layout.

    ``offsets`` has ``num_rows + 1`` entries; row ``i`` owns
    ``values[offsets[i]:offsets[i + 1]]``. ``hash_size`` is the cardinality
    of the id space (the embedding-table height the column feeds).
    """

    name: str
    offsets: np.ndarray
    values: np.ndarray
    hash_size: int

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.offsets.ndim != 1 or len(self.offsets) < 1:
            raise ValueError(f"sparse column {self.name!r} offsets malformed")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.values):
            raise ValueError(
                f"sparse column {self.name!r}: offsets must start at 0 and end at len(values)"
            )
        lengths = np.diff(self.offsets)
        if np.any(lengths < 0):
            raise ValueError(f"sparse column {self.name!r}: offsets must be non-decreasing")
        if self.hash_size <= 0:
            raise ValueError(f"sparse column {self.name!r}: hash_size must be positive")
        # The CSR layout is immutable after construction: planning loops call
        # lengths()/nbytes() constantly, so both are cached, and the offsets
        # are frozen so no call site can silently invalidate the cache.
        if self.offsets.flags.writeable:
            self.offsets.flags.writeable = False
        lengths.flags.writeable = False
        self._lengths = lengths

    @property
    def num_rows(self) -> int:
        return len(self.offsets) - 1

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def avg_list_length(self) -> float:
        return self.nnz / self.num_rows if self.num_rows else 0.0

    def row(self, i: int) -> np.ndarray:
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def lengths(self) -> np.ndarray:
        """Per-row list lengths (cached; the returned array is read-only)."""
        if self._lengths is None:
            lengths = np.diff(self.offsets)
            lengths.flags.writeable = False
            self._lengths = lengths
        return self._lengths

    def copy(self) -> "SparseColumn":
        return SparseColumn.trusted(
            self.name, self.offsets.copy(), self.values.copy(), self.hash_size
        )

    @classmethod
    def trusted(
        cls, name: str, offsets: np.ndarray, values: np.ndarray, hash_size: int
    ) -> "SparseColumn":
        """Construct without validation or freezing.

        The compiled engine builds output columns from arrays it already
        proved consistent (and whose buffers it may reuse next batch), so it
        skips the O(nnz) validation pass of the public constructor.
        """
        col = object.__new__(cls)
        col.name = name
        col.offsets = offsets
        col.values = values
        col.hash_size = hash_size
        col._lengths = None
        return col


@dataclass
class Batch:
    """One training batch: named dense and sparse columns of equal row count."""

    dense: dict[str, DenseColumn] = field(default_factory=dict)
    sparse: dict[str, SparseColumn] = field(default_factory=dict)

    def __post_init__(self) -> None:
        sizes = {len(c) for c in self.dense.values()} | {c.num_rows for c in self.sparse.values()}
        if len(sizes) > 1:
            raise ValueError(f"inconsistent batch row counts: {sorted(sizes)}")
        self._nbytes: int | None = None

    @property
    def size(self) -> int:
        for col in self.dense.values():
            return len(col)
        for col in self.sparse.values():
            return col.num_rows
        return 0

    def column(self, name: str) -> DenseColumn | SparseColumn:
        if name in self.dense:
            return self.dense[name]
        if name in self.sparse:
            return self.sparse[name]
        raise KeyError(f"batch has no column {name!r}")

    def put(self, column: DenseColumn | SparseColumn) -> None:
        if isinstance(column, DenseColumn):
            self.dense[column.name] = column
        else:
            self.sparse[column.name] = column
        self._nbytes = None

    def nbytes(self) -> int:
        """Total payload bytes (cached; ``put`` invalidates the cache)."""
        if self._nbytes is None:
            total = sum(c.values.nbytes for c in self.dense.values())
            total += sum(c.values.nbytes + c.offsets.nbytes for c in self.sparse.values())
            self._nbytes = total
        return self._nbytes

    def copy(self) -> "Batch":
        return Batch(
            dense={k: v.copy() for k, v in self.dense.items()},
            sparse={k: v.copy() for k, v in self.sparse.items()},
        )


@dataclass(frozen=True)
class CriteoSchema:
    """Shape of a Criteo-like dataset (Table 2 of the paper)."""

    name: str
    num_dense: int = 13
    num_sparse: int = 26
    total_hash_size: int = 33_700_000
    avg_list_length: float = 2.0
    nan_rate: float = 0.05
    id_skew: float = 1.05

    def dense_names(self) -> list[str]:
        return [f"dense_{i}" for i in range(self.num_dense)]

    def sparse_names(self) -> list[str]:
        return [f"sparse_{i}" for i in range(self.num_sparse)]

    def hash_sizes(self) -> list[int]:
        """Per-table cardinalities summing (approximately) to the total.

        Real Criteo tables are wildly skewed; we use a geometric-ish split
        where table ``i`` gets a share proportional to ``skew**-i``,
        normalized, with a floor of 1000 ids.
        """
        weights = np.power(self.id_skew, -np.arange(self.num_sparse, dtype=np.float64))
        weights /= weights.sum()
        sizes = np.maximum(1000, (weights * self.total_hash_size).astype(np.int64))
        return [int(s) for s in sizes]

    def scaled(self, dense_multiple: int, sparse_multiple: int, name: str | None = None) -> "CriteoSchema":
        """A wider variant of this schema (used by Plans 2 and 3, Table 3)."""
        return replace(
            self,
            name=name or f"{self.name}_x{sparse_multiple}",
            num_dense=self.num_dense * dense_multiple,
            num_sparse=self.num_sparse * sparse_multiple,
        )


KAGGLE_SCHEMA = CriteoSchema(name="criteo_kaggle", total_hash_size=33_700_000)
TERABYTE_SCHEMA = CriteoSchema(name="criteo_terabyte", total_hash_size=177_900_000)


class SyntheticCriteoDataset:
    """Deterministic generator of Criteo-schema batches.

    Dense values are uniform in [0, 1] with ``nan_rate`` of entries replaced
    by NaN (raw logs have missing fields). Sparse ids follow a truncated
    Zipf so hot ids dominate, matching the access skew that makes embedding
    lookup memory-bound. Batches are reproducible: batch ``i`` from two
    generators with the same seed is identical.
    """

    def __init__(self, schema: CriteoSchema, seed: int = 2024) -> None:
        self.schema = schema
        self.seed = seed
        self._hash_sizes = schema.hash_sizes()

    def batch(self, batch_size: int, index: int = 0) -> Batch:
        """Materialize batch ``index`` with ``batch_size`` rows."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = np.random.default_rng((self.seed, index))
        dense = {}
        for name in self.schema.dense_names():
            vals = rng.random(batch_size, dtype=np.float32)
            if self.schema.nan_rate > 0:
                mask = rng.random(batch_size) < self.schema.nan_rate
                vals[mask] = np.nan
            dense[name] = DenseColumn(name, vals)
        sparse = {}
        for name, hash_size in zip(self.schema.sparse_names(), self._hash_sizes):
            lengths = rng.poisson(self.schema.avg_list_length, size=batch_size)
            lengths = np.maximum(lengths, 1)
            offsets = np.zeros(batch_size + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            nnz = int(offsets[-1])
            # Truncated Zipf-ish draw: square a uniform to concentrate mass
            # on low ids, then scale into the table's id space.
            u = rng.random(nnz)
            values = np.minimum((u**2 * hash_size).astype(np.int64), hash_size - 1)
            sparse[name] = SparseColumn(name, offsets, values, hash_size)
        return Batch(dense=dense, sparse=sparse)

    def batches(self, batch_size: int, count: int, start: int = 0):
        """Yield ``count`` consecutive batches starting at ``start``."""
        for i in range(start, start + count):
            yield self.batch(batch_size, index=i)
