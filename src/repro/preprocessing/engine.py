"""Compiled batch-execution engine for preprocessing graph sets (§6, §8).

The naive path (:func:`repro.preprocessing.executor.execute_graph_set`)
walks every :class:`FeatureGraph` op-by-op: one Python dispatch, one fresh
numpy allocation, and one column-object validation per operator per batch.
This module lowers a planned :class:`GraphSet` **once** into a flat,
topologically-ordered program of *fused step* objects and then executes
batches through it:

- **Fusion-aware grouped execution** -- all same-type ops that the §6.2
  MILP assigned to one time step (and that share the same numeric
  parameters) execute as a *single* vectorized kernel call over their
  concatenated column segments, so the fusion decision is visible in
  wall-clock time, not just in the simulator.
- **Vectorized sparse kernels** -- steps call the module-level kernels in
  :mod:`repro.preprocessing.ops` (``sigridhash_kernel`` & co.) directly on
  CSR ``values``/``offsets`` arrays; the naive ``_transform``s call the very
  same functions, which is what makes the two paths bit-identical by
  construction.
- **Buffer arena** -- output arrays come from a size-classed pool that is
  recycled across batches instead of reallocated, so steady-state execution
  performs no large allocations for elementwise outputs.

The engine is output-equivalent to ``execute_graph_set``: for every column
the naive path produces, the compiled path produces the same name with
bit-identical contents (dense: exact float equality; sparse: exact
``values`` and ``offsets``). The naive executor remains the golden
reference; ``tests/preprocessing/test_engine_equivalence.py`` enforces the
contract property-based across all Table-1 operators.

Lease semantics: columns of the returned batch may reference arena-pooled
buffers that are recycled by the *next* ``execute`` call on the same
program. Pass ``copy_outputs=True`` (or copy downstream) when a batch must
outlive the next one.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..milp.fusion_problem import FusionAssignment
from .data import (
    Batch,
    DenseColumn,
    SparseColumn,
    concat_csr_blocks,
    rowwise_concat_csr,
)
from .executor import MissingColumnsError
from .graph import GraphSet
from .ops import (
    PreprocessingOp,
    boxcox_kernel,
    bucketize_kernel,
    cast_kernel,
    clamp_kernel,
    fillnull_kernel,
    firstx_kernel,
    logit_kernel,
    mapid_kernel,
    ngram_kernel,
    onehot_kernel,
    sigridhash_kernel,
)

__all__ = [
    "BufferArena",
    "CompileError",
    "CompiledProgram",
    "DEFAULT_RETAIN_PER_CLASS",
    "compile_graph_set",
    "compile_op_groups",
    "plan_slots",
]


class CompileError(ValueError):
    """The graph set / fusion assignment cannot be lowered to a program."""


# ----------------------------------------------------------------------
# Buffer arena
# ----------------------------------------------------------------------


#: Default per-(dtype, block-size) retention cap. A program's steady-state
#: lease count per class is what it actually needs; anything beyond that
#: (e.g. a one-off giant batch, or a program swapped out for another) is
#: dead weight, so surplus blocks are dropped at ``reset`` time.
DEFAULT_RETAIN_PER_CLASS = 64


class BufferArena:
    """Size-classed pool of output buffers recycled across batches.

    ``take(size, dtype)`` leases a buffer of exactly ``size`` elements
    backed by a power-of-two block; ``reset()`` returns every leased block
    to the free pool (called at the start of each ``execute``, so a batch's
    outputs stay valid until the *next* batch runs). After a warm-up batch,
    steady-state execution of the same program allocates no new blocks.

    Pool growth is bounded: each (dtype, block) size class retains at most
    ``retain_per_class`` free blocks; surplus blocks returned by ``reset``
    are released to the allocator and counted in ``evicted_blocks``.
    """

    __slots__ = (
        "_free",
        "_leased",
        "allocated_blocks",
        "reused_blocks",
        "evicted_blocks",
        "retain_per_class",
    )

    def __init__(self, retain_per_class: int = DEFAULT_RETAIN_PER_CLASS) -> None:
        if retain_per_class < 1:
            raise ValueError("retain_per_class must be >= 1")
        self._free: dict[tuple[np.dtype, int], list[np.ndarray]] = {}
        self._leased: list[tuple[tuple[np.dtype, int], np.ndarray]] = []
        self.allocated_blocks = 0
        self.reused_blocks = 0
        self.evicted_blocks = 0
        self.retain_per_class = retain_per_class

    def reset(self) -> None:
        """Return every leased block to the pool (invalidates prior leases)."""
        cap = self.retain_per_class
        for key, base in self._leased:
            pool = self._free.setdefault(key, [])
            if len(pool) < cap:
                pool.append(base)
            else:
                self.evicted_blocks += 1
        self._leased.clear()

    def take(self, size: int, dtype: np.dtype | type) -> np.ndarray:
        """Lease a 1-D buffer of ``size`` elements of ``dtype``."""
        dtype = np.dtype(dtype)
        size = int(size)
        block = 1 << max(size - 1, 0).bit_length() if size else 1
        key = (dtype, block)
        pool = self._free.get(key)
        if pool:
            base = pool.pop()
            self.reused_blocks += 1
        else:
            base = np.empty(block, dtype=dtype)
            self.allocated_blocks += 1
        self._leased.append((key, base))
        return base[:size]

    def pooled_bytes(self) -> int:
        """Bytes currently held by the arena (free pool + live leases)."""
        total = 0
        for (dtype, block), pool in self._free.items():
            total += dtype.itemsize * block * len(pool)
        for (dtype, block), _ in self._leased:
            total += dtype.itemsize * block
        return total

    def hit_rate(self) -> float:
        """Fraction of ``take`` calls served from the pool."""
        takes = self.allocated_blocks + self.reused_blocks
        return self.reused_blocks / takes if takes else 0.0

    def stats(self) -> dict[str, int | float]:
        free_blocks = sum(len(v) for v in self._free.values())
        return {
            "allocated_blocks": self.allocated_blocks,
            "reused_blocks": self.reused_blocks,
            "leased_blocks": len(self._leased),
            "free_blocks": free_blocks,
            "evicted_blocks": self.evicted_blocks,
            "pooled_bytes": self.pooled_bytes(),
            "hit_rate": round(self.hit_rate(), 4),
        }


# ----------------------------------------------------------------------
# Program steps
#
# One step = one fused group = (at runtime) one vectorized kernel call.
# Steps read and write *column objects* in the register file ``regs`` --
# a dict keyed by column name holding trusted (validation-free) columns.
# ----------------------------------------------------------------------


def _concat_values(arrays: list[np.ndarray], arena: BufferArena, dtype: np.dtype) -> np.ndarray:
    total = sum(a.shape[0] for a in arrays)
    staged = arena.take(total, dtype)
    if total:
        np.concatenate(arrays, out=staged)
    return staged


class _DenseEwStep:
    """Fused elementwise dense op (FillNull / Logit / BoxCox / Cast)."""

    __slots__ = ("members", "kernel", "params", "out_dtype")

    def __init__(
        self,
        members: list[PreprocessingOp],
        kernel: Callable,
        params: tuple,
        out_dtype: np.dtype,
    ) -> None:
        self.members = members
        self.kernel = kernel
        self.params = params
        self.out_dtype = out_dtype

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        arena = program.arena
        cols = [regs[op.inputs[0]] for op in self.members]
        # Members are fused per *parameter* key at compile time; inputs can
        # still disagree on dtype at runtime (e.g. a Cast upstream of one
        # member), and concatenating across dtypes would silently upcast.
        # Partition by input dtype so fused math stays bit-identical.
        by_dtype: dict[np.dtype, list[int]] = {}
        for i, col in enumerate(cols):
            by_dtype.setdefault(col.values.dtype, []).append(i)
        for dtype, idxs in by_dtype.items():
            if len(idxs) == 1:
                op, col = self.members[idxs[0]], cols[idxs[0]]
                out = arena.take(col.values.shape[0], self.out_dtype)
                self.kernel(col.values, *self.params, out=out)
                regs[op.output] = DenseColumn.trusted(op.output, out)
                continue
            arrays = [cols[i].values for i in idxs]
            staged = _concat_values(arrays, arena, dtype)
            out = arena.take(staged.shape[0], self.out_dtype)
            self.kernel(staged, *self.params, out=out)
            pos = 0
            for i in idxs:
                op = self.members[i]
                n = cols[i].values.shape[0]
                regs[op.output] = DenseColumn.trusted(op.output, out[pos : pos + n])
                pos += n


class _DenseToSparseStep:
    """Fused dense-to-sparse encoder (Onehot / Bucketize): one id per row."""

    __slots__ = ("members", "kernel", "params", "hash_size")

    def __init__(
        self,
        members: list[PreprocessingOp],
        kernel: Callable,
        params: tuple,
        hash_size: int,
    ) -> None:
        self.members = members
        self.kernel = kernel
        self.params = params
        self.hash_size = hash_size

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        arena = program.arena
        iota = program.row_iota
        cols = [regs[op.inputs[0]] for op in self.members]
        by_dtype: dict[np.dtype, list[int]] = {}
        for i, col in enumerate(cols):
            by_dtype.setdefault(col.values.dtype, []).append(i)
        for dtype, idxs in by_dtype.items():
            if len(idxs) == 1:
                op, col = self.members[idxs[0]], cols[idxs[0]]
                out = arena.take(col.values.shape[0], np.int64)
                self.kernel(col.values, *self.params, out=out)
                regs[op.output] = SparseColumn.trusted(op.output, iota, out, self.hash_size)
                continue
            staged = _concat_values([cols[i].values for i in idxs], arena, dtype)
            out = arena.take(staged.shape[0], np.int64)
            self.kernel(staged, *self.params, out=out)
            pos = 0
            for i in idxs:
                op = self.members[i]
                n = cols[i].values.shape[0]
                regs[op.output] = SparseColumn.trusted(
                    op.output, iota, out[pos : pos + n], self.hash_size
                )
                pos += n


class _SparseEwStep:
    """Fused elementwise sparse op (SigridHash / Clamp / MapId).

    Offsets pass through untouched; only the fused value segments run
    through the kernel.
    """

    __slots__ = ("members", "kernel", "params", "hash_size_fn")

    def __init__(
        self,
        members: list[PreprocessingOp],
        kernel: Callable,
        params: tuple,
        hash_size_fn: Callable[[SparseColumn], int],
    ) -> None:
        self.members = members
        self.kernel = kernel
        self.params = params
        self.hash_size_fn = hash_size_fn

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        arena = program.arena
        cols = [regs[op.inputs[0]] for op in self.members]
        if len(cols) == 1:
            op, col = self.members[0], cols[0]
            out = arena.take(col.values.shape[0], np.int64)
            self.kernel(col.values, *self.params, out=out)
            regs[op.output] = SparseColumn.trusted(
                op.output, col.offsets, out, self.hash_size_fn(col)
            )
            return
        staged = _concat_values([c.values for c in cols], arena, np.int64)
        out = arena.take(staged.shape[0], np.int64)
        self.kernel(staged, *self.params, out=out)
        pos = 0
        for op, col in zip(self.members, cols):
            n = col.values.shape[0]
            regs[op.output] = SparseColumn.trusted(
                op.output, col.offsets, out[pos : pos + n], self.hash_size_fn(col)
            )
            pos += n


class _FirstXStep:
    """Fused list truncation: members stack row-block-wise into one CSR."""

    __slots__ = ("members", "x", "kernel")

    def __init__(
        self, members: list[PreprocessingOp], x: int, kernel: Callable = firstx_kernel
    ) -> None:
        self.members = members
        self.x = x
        self.kernel = kernel

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        arena = program.arena
        firstx_kernel = self.kernel
        cols = [regs[op.inputs[0]] for op in self.members]
        if len(cols) == 1:
            op, col = self.members[0], cols[0]
            out_offsets = arena.take(col.offsets.shape[0], np.int64)
            offsets, values = firstx_kernel(col.offsets, col.values, self.x, out_offsets=out_offsets)
            regs[op.output] = SparseColumn.trusted(op.output, offsets, values, col.hash_size)
            return
        offsets_list = [c.offsets for c in cols]
        values_list = [c.values for c in cols]
        total_rows = sum(o.shape[0] - 1 for o in offsets_list)
        total_nnz = sum(v.shape[0] for v in values_list)
        big_offsets = arena.take(total_rows + 1, np.int64)
        big_values = arena.take(total_nnz, np.int64)
        concat_csr_blocks(offsets_list, values_list, out_offsets=big_offsets, out_values=big_values)
        out_offsets = arena.take(total_rows + 1, np.int64)
        out_offsets, out_values = firstx_kernel(
            big_offsets, big_values, self.x, out_offsets=out_offsets
        )
        row = 0
        for op, col in zip(self.members, cols):
            rows_i = col.offsets.shape[0] - 1
            seg = out_offsets[row : row + rows_i + 1]
            base = int(seg[0])
            member_offsets = arena.take(rows_i + 1, np.int64)
            np.subtract(seg, base, out=member_offsets)
            regs[op.output] = SparseColumn.trusted(
                op.output, member_offsets, out_values[base : int(seg[-1])], col.hash_size
            )
            row += rows_i


class _NgramStep:
    """Fused n-gram: per-member row-wise input concat, one window kernel."""

    __slots__ = ("members", "n", "out_hash_size", "kernel")

    def __init__(
        self,
        members: list[PreprocessingOp],
        n: int,
        out_hash_size: int,
        kernel: Callable = ngram_kernel,
    ) -> None:
        self.members = members
        self.n = n
        self.out_hash_size = out_hash_size
        self.kernel = kernel

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        arena = program.arena
        ngram_kernel = self.kernel
        combined: list[tuple[np.ndarray, np.ndarray]] = []
        for op in self.members:
            in_cols = [regs[name] for name in op.inputs]
            if len(in_cols) == 1:
                combined.append((in_cols[0].offsets, in_cols[0].values))
            else:
                combined.append(
                    rowwise_concat_csr(
                        [c.offsets for c in in_cols], [c.values for c in in_cols]
                    )
                )
        if len(self.members) == 1:
            op = self.members[0]
            offs, vals = combined[0]
            out_offsets = arena.take(offs.shape[0], np.int64)
            offsets, grams = ngram_kernel(
                offs, vals, self.n, self.out_hash_size, out_offsets=out_offsets
            )
            regs[op.output] = SparseColumn.trusted(op.output, offsets, grams, self.out_hash_size)
            return
        offsets_list = [c[0] for c in combined]
        values_list = [c[1] for c in combined]
        total_rows = sum(o.shape[0] - 1 for o in offsets_list)
        total_nnz = sum(v.shape[0] for v in values_list)
        big_offsets = arena.take(total_rows + 1, np.int64)
        big_values = arena.take(total_nnz, np.int64)
        concat_csr_blocks(offsets_list, values_list, out_offsets=big_offsets, out_values=big_values)
        out_offsets = arena.take(total_rows + 1, np.int64)
        out_offsets, out_values = ngram_kernel(
            big_offsets, big_values, self.n, self.out_hash_size, out_offsets=out_offsets
        )
        row = 0
        for op, offs in zip(self.members, offsets_list):
            rows_i = offs.shape[0] - 1
            seg = out_offsets[row : row + rows_i + 1]
            base = int(seg[0])
            member_offsets = arena.take(rows_i + 1, np.int64)
            np.subtract(seg, base, out=member_offsets)
            regs[op.output] = SparseColumn.trusted(
                op.output, member_offsets, out_values[base : int(seg[-1])], self.out_hash_size
            )
            row += rows_i


class _GenericStep:
    """Fallback for operator types the engine has no fused lowering for.

    Runs each member's own ``_transform`` against trusted register columns,
    so third-party :class:`PreprocessingOp` subclasses still execute
    correctly (just without fusion or pooling).
    """

    __slots__ = ("members",)

    def __init__(self, members: list[PreprocessingOp]) -> None:
        self.members = members

    def run(self, regs: dict, program: "CompiledProgram") -> None:
        for op in self.members:
            result = op._transform([regs[name] for name in op.inputs])
            regs[result.name] = result


_FUSED_LOWERINGS = {
    "FillNull",
    "Logit",
    "BoxCox",
    "Cast",
    "Onehot",
    "Bucketize",
    "SigridHash",
    "Clamp",
    "MapId",
    "FirstX",
    "Ngram",
}


#: Reference (numpy) kernel per fused-lowering op type.
_REFERENCE_KERNELS = {
    "FillNull": fillnull_kernel,
    "Logit": logit_kernel,
    "BoxCox": boxcox_kernel,
    "Cast": cast_kernel,
    "Onehot": onehot_kernel,
    "Bucketize": bucketize_kernel,
    "SigridHash": sigridhash_kernel,
    "Clamp": clamp_kernel,
    "MapId": mapid_kernel,
    "FirstX": firstx_kernel,
    "Ngram": ngram_kernel,
}

#: ``ops.py`` kernel entry-point name per fused-lowering op type (the key
#: a :class:`repro.preprocessing.backends.KernelBackend` is queried with).
_KERNEL_NAMES = {op: fn.__name__ for op, fn in _REFERENCE_KERNELS.items()}


def _build_step(op_name: str, members: list[PreprocessingOp], backend=None):
    first = members[0]
    if backend is None or op_name not in _KERNEL_NAMES:
        kernel = _REFERENCE_KERNELS.get(op_name)
    else:
        kernel = backend.kernel(_KERNEL_NAMES[op_name])
    if op_name == "FillNull":
        return _DenseEwStep(members, kernel, (first.fill_value,), np.dtype(np.float32))
    if op_name == "Logit":
        return _DenseEwStep(members, kernel, (first.eps,), np.dtype(np.float32))
    if op_name == "BoxCox":
        return _DenseEwStep(members, kernel, (first.lmbda,), np.dtype(np.float32))
    if op_name == "Cast":
        target = np.dtype(first.dtype)
        return _DenseEwStep(members, kernel, (target,), target)
    if op_name == "Onehot":
        return _DenseToSparseStep(members, kernel, (first.num_classes,), first.num_classes)
    if op_name == "Bucketize":
        return _DenseToSparseStep(members, kernel, (first.borders,), len(first.borders) + 1)
    if op_name == "SigridHash":
        return _SparseEwStep(
            members,
            kernel,
            (first.salt, first.max_value),
            lambda col, m=first.max_value: m,
        )
    if op_name == "Clamp":
        return _SparseEwStep(
            members,
            kernel,
            (first.lower, first.upper),
            lambda col, u=first.upper: max(col.hash_size, u + 1),
        )
    if op_name == "MapId":
        return _SparseEwStep(
            members,
            kernel,
            (first.multiplier, first.offset, first.table_size),
            lambda col, t=first.table_size: t,
        )
    if op_name == "FirstX":
        return _FirstXStep(members, first.x, kernel)
    if op_name == "Ngram":
        return _NgramStep(members, first.n, first.out_hash_size, kernel)
    return _GenericStep(members)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


class CompiledProgram:
    """A lowered graph set: an ordered list of fused steps plus its arena."""

    def __init__(
        self,
        steps: list,
        rows: int,
        required_inputs: frozenset[str],
        num_ops: int,
        arena: BufferArena | None = None,
        backend=None,
    ) -> None:
        self.steps = steps
        self.rows = rows
        self.required_inputs = required_inputs
        self.num_ops = num_ops
        self.arena = arena if arena is not None else BufferArena()
        self.backend = backend  # resolved KernelBackend, or None for numpy
        # Onehot/Bucketize emit one id per row: every such output shares this
        # constant offsets array instead of materializing its own arange.
        self.row_iota = np.arange(rows + 1, dtype=np.int64)
        self.row_iota.flags.writeable = False
        self.batches_executed = 0

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def max_fusion_degree(self) -> int:
        return max((len(s.members) for s in self.steps), default=0)

    @property
    def backend_name(self) -> str:
        return self.backend.name if self.backend is not None else "numpy"

    def backend_step_counts(self) -> dict[str, int]:
        """Steps per effective kernel backend (accelerated vs numpy)."""
        counts: dict[str, int] = {}
        for step in self.steps:
            name = "numpy"
            if self.backend is not None:
                kernel_name = _KERNEL_NAMES.get(step.members[0].op_name)
                if kernel_name is not None and self.backend.accelerates(kernel_name):
                    name = self.backend.name
            counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> dict:
        return {
            "ops": self.num_ops,
            "steps": self.num_steps,
            "max_fusion_degree": self.max_fusion_degree,
            "batches_executed": self.batches_executed,
            "backend": self.backend_name,
            "backend_steps": self.backend_step_counts(),
        }

    def execute(self, batch: Batch, copy_outputs: bool = False) -> Batch:
        """Run the compiled program against ``batch``.

        Returns a new batch carrying the input columns (referenced, never
        mutated) plus every produced column, exactly like the naive
        executor's output. Produced columns lease arena buffers valid until
        the next ``execute`` on this program unless ``copy_outputs=True``.
        """
        if batch.size != self.rows:
            raise ValueError(
                f"batch has {batch.size} rows but the graph set was built for {self.rows}"
            )
        available = set(batch.dense) | set(batch.sparse)
        missing = sorted(self.required_inputs - available)
        if missing:
            raise MissingColumnsError(missing)
        self.arena.reset()
        regs: dict[str, DenseColumn | SparseColumn] = {}
        for name, col in batch.dense.items():
            regs[name] = col
        for name, col in batch.sparse.items():
            regs[name] = col
        for step in self.steps:
            step.run(regs, self)
        dense = dict(batch.dense)
        sparse = dict(batch.sparse)
        for name, col in regs.items():
            if name in batch.dense or name in batch.sparse:
                continue
            if copy_outputs:
                col = col.copy()
            if isinstance(col, DenseColumn):
                dense[name] = col
            else:
                sparse[name] = col
        out = Batch.__new__(Batch)
        out.dense = dense
        out.sparse = sparse
        out._nbytes = None
        self.batches_executed += 1
        return out


def _global_deps(ops: list[PreprocessingOp]) -> tuple[dict[str, int], list[tuple[int, int]]]:
    """Dependencies over the whole op list, inferred from output names.

    Unlike :class:`FeatureGraph`'s intra-graph edges, this also catches an
    op reading a column produced by *another* graph, so program ordering is
    safe for arbitrary graph sets.
    """
    produced: dict[str, int] = {}
    for idx, op in enumerate(ops):
        if op.output in produced:
            raise CompileError(f"column {op.output!r} produced by more than one op")
        produced[op.output] = idx
    deps: list[tuple[int, int]] = []
    for j, op in enumerate(ops):
        for name in op.inputs:
            i = produced.get(name)
            if i is not None and i != j:
                deps.append((i, j))
            elif i == j:
                raise CompileError(f"op producing {op.output!r} reads its own output")
    return produced, deps


def _asap_levels(num_ops: int, deps: list[tuple[int, int]]) -> list[int]:
    indeg = [0] * num_ops
    succ: list[list[int]] = [[] for _ in range(num_ops)]
    for i, j in deps:
        succ[i].append(j)
        indeg[j] += 1
    level = [0] * num_ops
    frontier = [i for i in range(num_ops) if indeg[i] == 0]
    seen = 0
    while frontier:
        node = frontier.pop()
        seen += 1
        for nxt in succ[node]:
            level[nxt] = max(level[nxt], level[node] + 1)
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                frontier.append(nxt)
    if seen != num_ops:
        raise CompileError("dependency graph contains a cycle")
    return level


def _numeric_key(op: PreprocessingOp):
    try:
        return op.numeric_key()
    except Exception:  # custom op with a broken key: never fuse it
        return ("__unfusable__", id(op))


def _group_and_lower(
    ops: list[PreprocessingOp], slots: list[int], backend=None
) -> list:
    """Turn per-op slot indices into ordered fused steps.

    Ops sharing (slot, op type, numeric key) fuse into one step; steps are
    emitted slot by slot. Ops whose type has no fused lowering stay
    singleton generic steps. ``backend`` (a resolved
    :class:`repro.preprocessing.backends.KernelBackend`) swaps in
    accelerated kernels where available; ``None`` keeps the reference
    numpy kernels.
    """
    grouped: dict[tuple[int, str], list[int]] = {}
    for idx, op in enumerate(ops):
        grouped.setdefault((slots[idx], op.op_name), []).append(idx)
    steps = []
    for (slot, op_name), members in sorted(grouped.items(), key=lambda kv: (kv[0][0], kv[1][0])):
        if op_name not in _FUSED_LOWERINGS:
            steps.append(_GenericStep([ops[i] for i in members]))
            continue
        by_key: dict = {}
        for i in members:
            by_key.setdefault(_numeric_key(ops[i]), []).append(i)
        for sub in by_key.values():
            steps.append(_build_step(op_name, [ops[i] for i in sub], backend))
    return steps


def _required_inputs(ops: list[PreprocessingOp], produced: dict[str, int]) -> frozenset[str]:
    needed: set[str] = set()
    for op in ops:
        needed.update(name for name in op.inputs if name not in produced)
    return frozenset(needed)


def _resolve_backend(backend):
    """Accept a backend name / KernelBackend / None (= reference numpy)."""
    if backend is None:
        return None
    from .backends import resolve_backend

    return resolve_backend(backend)


def plan_slots(
    graph_set: GraphSet,
    assignment: FusionAssignment | None = None,
    fusion: bool = True,
) -> tuple[list[PreprocessingOp], list[int], dict[str, int]]:
    """Flatten a graph set into ``(ops, slots, produced)``.

    The per-op slot indices are exactly what :func:`compile_graph_set`
    lowers from, exposed separately so the multi-core engine
    (:mod:`repro.preprocessing.parallel`) can shard the very same op/slot
    plan and stay bit-identical to the single-core program.
    """
    ops = [op for graph in graph_set for op in graph.ops]
    produced, deps = _global_deps(ops)
    if assignment is not None:
        if len(assignment.steps) != len(ops):
            raise CompileError(
                f"fusion assignment covers {len(assignment.steps)} ops "
                f"but the graph set has {len(ops)}"
            )
        slots = list(assignment.steps)
        for i, j in deps:
            if slots[j] <= slots[i]:
                raise CompileError(
                    f"fusion assignment violates dependency: {ops[j].output!r} at step "
                    f"{slots[j]} must execute after {ops[i].output!r} at step {slots[i]}"
                )
    else:
        levels = _asap_levels(len(ops), deps)
        if fusion:
            slots = levels
        else:
            order = sorted(range(len(ops)), key=lambda i: (levels[i], i))
            slots = [0] * len(ops)
            for pos, idx in enumerate(order):
                slots[idx] = pos
    return ops, slots, produced


def compile_graph_set(
    graph_set: GraphSet,
    assignment: FusionAssignment | None = None,
    fusion: bool = True,
    arena: BufferArena | None = None,
    backend=None,
) -> CompiledProgram:
    """Lower a graph set (optionally with a solved fusion assignment).

    - With ``assignment`` (ops indexed in graph-major order, as produced by
      :func:`repro.core.fusion.build_fusion_instance` over the same
      graphs): fused groups follow the assignment's time steps, further
      split by numeric parameter key so fused members compute identical
      math. The assignment is validated against the *global* dependency
      graph (including cross-graph column reads its instance cannot see).
    - Without one, with ``fusion=True``: groups form at equal ASAP depth --
      the same greedy baseline the MILP warm-starts from.
    - With ``fusion=False``: one op per step in topological order (the
      ``RAP w/o fusion`` ablation).

    ``backend`` selects the kernel table per step ("numpy", "numba",
    "numexpr", "auto", or a resolved
    :class:`repro.preprocessing.backends.KernelBackend`); every backend is
    bit-identical to the reference and missing libraries degrade to numpy.
    """
    ops, slots, produced = plan_slots(graph_set, assignment, fusion)
    resolved = _resolve_backend(backend)
    steps = _group_and_lower(ops, slots, resolved)
    return CompiledProgram(
        steps,
        rows=graph_set.rows,
        required_inputs=_required_inputs(ops, produced),
        num_ops=len(ops),
        arena=arena,
        backend=resolved,
    )


def compile_op_groups(
    groups: Sequence[Sequence[PreprocessingOp]],
    rows: int,
    arena: BufferArena | None = None,
    backend=None,
) -> CompiledProgram:
    """Lower pre-ordered fused op groups (the plan/codegen entry point).

    ``groups`` is an already-scheduled kernel queue: each inner sequence is
    one fused kernel's member ops, in execution order. Groups are split by
    numeric key like :func:`compile_graph_set` and the ordering is checked
    against the ops' column dependencies.
    """
    flat: list[PreprocessingOp] = []
    slots: list[int] = []
    for slot, group in enumerate(groups):
        if not group:
            continue
        names = {op.op_name for op in group}
        if len(names) > 1:
            raise CompileError(f"fused group {slot} mixes op types: {sorted(names)}")
        for op in group:
            flat.append(op)
            slots.append(slot)
    produced, deps = _global_deps(flat)
    for i, j in deps:
        if slots[j] <= slots[i]:
            raise CompileError(
                f"group order violates dependency: {flat[j].output!r} (group {slots[j]}) "
                f"must execute after {flat[i].output!r} (group {slots[i]})"
            )
    resolved = _resolve_backend(backend)
    steps = _group_and_lower(flat, slots, resolved)
    return CompiledProgram(
        steps,
        rows=rows,
        required_inputs=_required_inputs(flat, produced),
        num_ops=len(flat),
        arena=arena,
        backend=resolved,
    )
