"""Functional execution of preprocessing graphs plus data-preparation costs.

Two concerns live here:

1. **Correctness path** -- actually running a :class:`GraphSet` against a
   :class:`Batch` of synthetic Criteo data (numpy transforms standing in
   for the paper's CUDA kernels), so examples and tests can observe real
   outputs.
2. **Data preparation cost** -- before a preprocessing kernel can run, the
   host must allocate device buffers and copy the raw batch to the GPU.
   §6.3 of the paper separates this CPU-side work from kernel execution
   and interleaves it across batches; this module quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.resources import GpuSpec, A100_SPEC
from .data import Batch
from .graph import FeatureGraph, GraphSet

__all__ = [
    "DataPreparation",
    "PreprocessingError",
    "MissingColumnsError",
    "KernelExecutionError",
    "KernelOOMError",
    "WorkerPoolError",
    "DeviceLostError",
    "execute_graph_set",
    "estimate_data_preparation",
]

_ALLOC_US_PER_TENSOR = 2.0
_HOST_DISPATCH_US_PER_OP = 5.0


class PreprocessingError(RuntimeError):
    """Base class for failures raised by the input-preprocessing pipeline.

    The taxonomy below is shared with the fault-tolerant runtime
    (:mod:`repro.runtime`), which injects and recovers from exactly these
    failure classes; catching :class:`PreprocessingError` covers them all.
    """


class MissingColumnsError(PreprocessingError):
    """The input batch lacks raw columns the graph set reads."""

    def __init__(self, columns: list[str]) -> None:
        self.columns = list(columns)
        super().__init__(
            "batch is missing raw input column(s) required by the graph set: "
            + ", ".join(self.columns)
        )


class KernelExecutionError(PreprocessingError):
    """A preprocessing kernel failed mid-execution (launch error, bad state)."""

    def __init__(self, kernel: str, detail: str = "execution fault") -> None:
        self.kernel = kernel
        super().__init__(f"kernel {kernel!r} failed: {detail}")


class KernelOOMError(KernelExecutionError):
    """A (typically fused) kernel exceeded device memory."""

    def __init__(self, kernel: str) -> None:
        super().__init__(kernel, "out of device memory")


class WorkerPoolError(PreprocessingError):
    """The CPU preprocessing worker pool crashed or lost workers."""


class DeviceLostError(PreprocessingError):
    """A GPU dropped off the bus permanently (XID-style terminal fault).

    Unlike the per-kernel failures above, no retry or re-shard on the same
    device can succeed: recovery requires a cluster membership change.
    """

    def __init__(self, gpu: int) -> None:
        self.gpu = gpu
        super().__init__(f"GPU {gpu} lost (terminal device fault)")


@dataclass(frozen=True)
class DataPreparation:
    """CPU-side work that must precede a batch's preprocessing kernels."""

    alloc_us: float
    h2d_copy_us: float
    dispatch_us: float

    @property
    def total_us(self) -> float:
        return self.alloc_us + self.h2d_copy_us + self.dispatch_us


def execute_graph_set(graph_set: GraphSet, batch: Batch) -> Batch:
    """Run every feature graph against a copy of ``batch``.

    The input batch is left untouched; the returned batch additionally
    carries every intermediate and output column the graphs produced.
    """
    work = batch.copy()
    if work.size != graph_set.rows:
        raise ValueError(
            f"batch has {work.size} rows but the graph set was built for {graph_set.rows}"
        )
    available = set(work.dense) | set(work.sparse)
    required: set[str] = set()
    for graph in graph_set:
        required.update(graph.raw_inputs())
    missing = sorted(required - available)
    if missing:
        raise MissingColumnsError(missing)
    graph_set.execute(work)
    return work


def _graph_raw_bytes(graph: FeatureGraph, rows: int) -> float:
    """Bytes of raw input the graph pulls onto the GPU."""
    raw = graph.raw_inputs()
    dense_cols = sum(1 for c in raw if c.startswith("dense"))
    sparse_cols = len(raw) - dense_cols
    dense_bytes = dense_cols * rows * 4
    sparse_bytes = sparse_cols * rows * (graph.avg_list_length * 8 + 8)
    return dense_bytes + sparse_bytes


def estimate_data_preparation(
    graphs: list[FeatureGraph] | GraphSet,
    rows: int | None = None,
    spec: GpuSpec = A100_SPEC,
) -> DataPreparation:
    """Estimate the CPU-side preparation cost for a set of feature graphs.

    Allocation is charged per produced tensor, host dispatch per operator,
    and the host-to-device copy by raw input volume over PCIe. These are
    the quantities inter-batch workload interleaving (§6.3) hides under the
    previous batch's kernels.
    """
    if isinstance(graphs, GraphSet):
        rows = graphs.rows
        graph_list = list(graphs)
    else:
        graph_list = list(graphs)
        if rows is None:
            raise ValueError("rows is required when passing a plain graph list")
    total_ops = sum(g.num_ops for g in graph_list)
    raw_bytes = sum(_graph_raw_bytes(g, rows) for g in graph_list)
    return DataPreparation(
        alloc_us=_ALLOC_US_PER_TENSOR * total_ops,
        h2d_copy_us=spec.h2d_time_us(raw_bytes),
        dispatch_us=_HOST_DISPATCH_US_PER_OP * total_ops,
    )
