"""Preprocessing graphs: per-feature operator DAGs and their collections.

The paper maps *input preprocessing graphs* -- one small DAG per produced
feature -- onto trainer GPUs (§3, Design Space 1). A :class:`FeatureGraph`
holds the operator chain/DAG producing one output feature along with its
*consumer* (which embedding table, or the replicated dense stack, reads the
output). A :class:`GraphSet` is the full preprocessing workload of one
input batch: the unit the mapping and scheduling machinery operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import networkx as nx

from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import GpuSpec, A100_SPEC
from .data import Batch
from .ops import PreprocessingOp

__all__ = ["DENSE_CONSUMER", "FeatureGraph", "GraphSet"]

DENSE_CONSUMER = "dense"


@dataclass
class FeatureGraph:
    """The operator DAG producing one output feature.

    Parameters
    ----------
    name:
        Identifier of the produced feature (unique within a GraphSet).
    ops:
        Operators in topological order. Dependencies are inferred from
        column names: an op depends on every earlier op whose output it
        reads. Raw batch columns are free inputs.
    consumer:
        ``DENSE_CONSUMER`` when the output feeds the replicated MLP stack
        (needed by every GPU), otherwise the name of the embedding table
        that consumes the output (needed only where that table's shard
        lives).
    avg_list_length:
        Expected ids per row flowing through the graph's sparse columns;
        used when lowering operators to cost-model kernels.
    """

    name: str
    ops: list[PreprocessingOp]
    consumer: str
    avg_list_length: float = 2.0

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError(f"feature graph {self.name!r} has no operators")
        produced: dict[str, int] = {}
        for idx, op in enumerate(self.ops):
            if op.output in produced:
                raise ValueError(
                    f"feature graph {self.name!r}: column {op.output!r} produced twice"
                )
            produced[op.output] = idx
        self._edges: list[tuple[int, int]] = []
        for idx, op in enumerate(self.ops):
            for col in op.inputs:
                if col in produced:
                    self._edges.append((produced[col], idx))
        self._validate_topological()

    def _validate_topological(self) -> None:
        for src, dst in self._edges:
            if src >= dst:
                raise ValueError(
                    f"feature graph {self.name!r} ops are not in topological order"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Intra-graph dependency edges as (producer_idx, consumer_idx)."""
        return tuple(self._edges)

    @property
    def output_op(self) -> PreprocessingOp:
        return self.ops[-1]

    def raw_inputs(self) -> set[str]:
        """Raw batch columns the graph reads (not produced by any of its ops)."""
        produced = {op.output for op in self.ops}
        needed: set[str] = set()
        for op in self.ops:
            needed.update(col for col in op.inputs if col not in produced)
        return needed

    def op_type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.op_name] = counts.get(op.op_name, 0) + 1
        return counts

    def to_networkx(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for idx, op in enumerate(self.ops):
            g.add_node(idx, op=op, label=op.describe())
        g.add_edges_from(self._edges)
        return g

    # ------------------------------------------------------------------
    # Execution and cost
    # ------------------------------------------------------------------

    def execute(self, batch: Batch) -> None:
        """Run every operator against ``batch`` in order (functional path)."""
        for op in self.ops:
            op.apply(batch)

    def kernels(self, rows: int, spec: GpuSpec = A100_SPEC) -> list[KernelDesc]:
        """Lower every operator to its cost-model kernel."""
        return [
            op.gpu_kernel(rows, spec, avg_list_length=self.avg_list_length)
            for op in self.ops
        ]

    def standalone_latency_us(self, rows: int, spec: GpuSpec = A100_SPEC) -> float:
        """Total standalone GPU latency of the unfused graph."""
        return sum(k.duration_us for k in self.kernels(rows, spec))

    def cpu_latency_us(self, rows: int) -> float:
        """Total single-worker CPU latency (TorchArrow substrate currency)."""
        return sum(op.cpu_latency_us(rows, self.avg_list_length) for op in self.ops)

    def output_nbytes(self, rows: int) -> float:
        """Estimated size of the graph's final output tensor."""
        return self.output_op.output_bytes(rows, self.avg_list_length)


class GraphSet:
    """All feature graphs preprocessing one input batch.

    This is the workload unit that RAP maps across GPUs and schedules
    against training stages. Graph names must be unique; operator output
    columns must be unique across the whole set (each op writes its own
    column of the shared batch).
    """

    def __init__(self, graphs: Iterable[FeatureGraph], rows: int = 4096) -> None:
        self.graphs: list[FeatureGraph] = list(graphs)
        if rows <= 0:
            raise ValueError("rows must be positive")
        self.rows = rows
        names = [g.name for g in self.graphs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate feature graph names in GraphSet")
        outputs = [op.output for g in self.graphs for op in g.ops]
        if len(set(outputs)) != len(outputs):
            raise ValueError("operator output columns must be unique across the GraphSet")

    def __iter__(self) -> Iterator[FeatureGraph]:
        return iter(self.graphs)

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, name: str) -> FeatureGraph:
        for g in self.graphs:
            if g.name == name:
                return g
        raise KeyError(f"no feature graph named {name!r}")

    @property
    def total_ops(self) -> int:
        return sum(g.num_ops for g in self.graphs)

    @property
    def num_features(self) -> int:
        return len(self.graphs)

    @property
    def ops_per_feature(self) -> float:
        return self.total_ops / self.num_features if self.graphs else 0.0

    def op_type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for g in self.graphs:
            for name, c in g.op_type_counts().items():
                counts[name] = counts.get(name, 0) + c
        return counts

    def consumers(self) -> set[str]:
        return {g.consumer for g in self.graphs}

    def graphs_for_consumer(self, consumer: str) -> list[FeatureGraph]:
        return [g for g in self.graphs if g.consumer == consumer]

    def subset(self, names: Sequence[str]) -> "GraphSet":
        wanted = set(names)
        return GraphSet([g for g in self.graphs if g.name in wanted], rows=self.rows)

    def execute(self, batch: Batch) -> None:
        """Execute every graph against a batch (functional path)."""
        for g in self.graphs:
            g.execute(batch)

    def kernels(self, spec: GpuSpec = A100_SPEC) -> list[KernelDesc]:
        out: list[KernelDesc] = []
        for g in self.graphs:
            out.extend(g.kernels(self.rows, spec))
        return out

    def standalone_latency_us(self, spec: GpuSpec = A100_SPEC) -> float:
        return sum(g.standalone_latency_us(self.rows, spec) for g in self.graphs)

    def cpu_latency_us(self) -> float:
        return sum(g.cpu_latency_us(self.rows) for g in self.graphs)

    def summary(self) -> dict[str, float]:
        return {
            "num_features": self.num_features,
            "total_ops": self.total_ops,
            "ops_per_feature": round(self.ops_per_feature, 2),
            "rows": self.rows,
        }
