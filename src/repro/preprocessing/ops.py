"""The DLRM input-preprocessing operator library (Table 1 of the paper).

Every operator has two faces:

1. **A real data transform** (``apply``) over the numpy column containers
   in :mod:`repro.preprocessing.data` -- the functional behaviour a
   downstream user gets when executing a preprocessing graph.
2. **A cost descriptor** (``gpu_kernel`` / ``cpu_latency_us``) -- the
   resource-annotated kernel the GPU simulator executes, standing in for
   the paper's handwritten CUDA kernels.

The ground-truth GPU latency model is analytic (launch overhead plus a
compute term that saturates with warp occupancy plus an output-write term)
with a deterministic per-configuration perturbation, so the ML latency
predictor of §5.2 has real, non-trivially-learnable structure. Operator
families differ sharply in cost -- feature generation (Ngram) is an order
of magnitude heavier than normalization -- matching Fig. 5c's observation
that per-warp cost varies across operators.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Any, ClassVar, Sequence

import numpy as np

from ..gpusim.kernel import KernelDesc
from ..gpusim.resources import GpuSpec, ResourceVector, A100_SPEC, warps_to_sm_fraction
from .data import (
    Batch,
    DenseColumn,
    SparseColumn,
    lengths_from_offsets,
    offsets_from_lengths,
    rowwise_concat_csr,
)

__all__ = [
    "PreprocessingOp",
    "FillNull",
    "Cast",
    "Logit",
    "BoxCox",
    "Onehot",
    "SigridHash",
    "FirstX",
    "Clamp",
    "Bucketize",
    "Ngram",
    "MapId",
    "OP_REGISTRY",
    "make_op",
    "concat_sparse_rows",
    "fillnull_kernel",
    "cast_kernel",
    "logit_kernel",
    "boxcox_kernel",
    "onehot_kernel",
    "bucketize_kernel",
    "sigridhash_kernel",
    "clamp_kernel",
    "mapid_kernel",
    "firstx_kernel",
    "ngram_kernel",
]

_ELEMS_PER_WARP = 128  # 32 lanes x 4 elements per lane
_MEM_SATURATION_FRACTION = 0.25  # fraction of warp slots needed to saturate DRAM


@functools.lru_cache(maxsize=65536)
def _config_noise(key: tuple) -> float:
    """Deterministic +/-8% perturbation keyed on the kernel configuration.

    Real kernel latency depends on cache behaviour, clock residency, and
    other micro-effects our analytic model omits; this stands in for them
    so that the latency predictor's +/-10% accuracy target (Table 5) is a
    real bar rather than a tautology.

    Planning loops lower the same (op, rows, list-length, params) tuple to a
    kernel thousands of times per search, so the digest is memoized behind a
    bounded LRU cache; the key space of one planning session is tiny.
    """
    digest = hashlib.md5(repr(key).encode()).digest()
    unit = int.from_bytes(digest[:4], "little") / 0xFFFFFFFF
    return 0.92 + 0.16 * unit


def concat_sparse_rows(columns: Sequence[SparseColumn], name: str, hash_size: int) -> SparseColumn:
    """Row-wise concatenation of several ragged columns (vectorized).

    Row ``i`` of the result is the concatenation of row ``i`` of each input
    in order -- the layout Ngram consumes when it spans multiple sparse
    features.
    """
    if not columns:
        raise ValueError("need at least one column to concatenate")
    rows = columns[0].num_rows
    for col in columns:
        if col.num_rows != rows:
            raise ValueError("all columns must have the same row count")
    offsets, values = rowwise_concat_csr(
        [col.offsets for col in columns], [col.values for col in columns]
    )
    return SparseColumn(name, offsets, values, hash_size)


# ----------------------------------------------------------------------
# Vectorized operator kernels
#
# Each function is the numeric core of one Table-1 operator, written over
# bare numpy arrays. The naive ``_transform``s and the compiled engine
# (:mod:`repro.preprocessing.engine`) both call these functions, so the two
# execution paths are bit-identical by construction -- the engine merely
# applies them to concatenated column segments with pooled output buffers.
#
# Contract: ``values`` (and ``offsets``) arguments are never mutated; when
# ``out`` is given the result is written there (same elementwise math as the
# allocate-and-return path) and ``out`` is returned.
# ----------------------------------------------------------------------


def _finish(result: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    if out is None:
        return result
    np.copyto(out, result, casting="unsafe")
    return out


def fillnull_kernel(values: np.ndarray, fill_value: float, out: np.ndarray | None = None) -> np.ndarray:
    """Replace NaNs with ``fill_value``; output is float32."""
    if out is None:
        return np.nan_to_num(values.astype(np.float32), nan=fill_value)
    np.copyto(out, values, casting="unsafe")
    return np.nan_to_num(out, copy=False, nan=fill_value)


def cast_kernel(values: np.ndarray, dtype: np.dtype, out: np.ndarray | None = None) -> np.ndarray:
    """Cast to ``dtype``; NaNs are zeroed first for integer targets."""
    target = np.dtype(dtype)
    if np.issubdtype(target, np.integer):
        values = np.nan_to_num(values, nan=0.0)
    return _finish(values.astype(target) if out is None else values, out)


def logit_kernel(values: np.ndarray, eps: float, out: np.ndarray | None = None) -> np.ndarray:
    """``log(p / (1 - p))`` with inputs clipped into ``(eps, 1 - eps)``; float32 out."""
    p = np.clip(values.astype(np.float64), eps, 1.0 - eps)
    y = np.log(p / (1.0 - p))
    return _finish(y.astype(np.float32) if out is None else y, out)


def boxcox_kernel(values: np.ndarray, lmbda: float, out: np.ndarray | None = None) -> np.ndarray:
    """Box-Cox power transform; float32 out."""
    x = np.maximum(values.astype(np.float64), 1e-6)
    if abs(lmbda) < 1e-12:
        y = np.log(x)
    else:
        y = (np.power(x, lmbda) - 1.0) / lmbda
    return _finish(y.astype(np.float32) if out is None else y, out)


def onehot_kernel(values: np.ndarray, num_classes: int, out: np.ndarray | None = None) -> np.ndarray:
    """Hot-bucket index per row (the compacted one-hot encoding); int64 out."""
    x = np.nan_to_num(values.astype(np.float64), nan=0.0)
    x = np.clip(x, 0.0, 1.0)
    idx = np.minimum((x * num_classes).astype(np.int64), num_classes - 1)
    return _finish(idx, out)


def bucketize_kernel(
    values: np.ndarray, borders: tuple[float, ...], out: np.ndarray | None = None
) -> np.ndarray:
    """Bucket index per element given sorted borders; int64 out."""
    x = np.nan_to_num(values.astype(np.float64), nan=0.0)
    idx = np.searchsorted(np.asarray(borders), x, side="right").astype(np.int64)
    return _finish(idx, out)


def _as_uint64(values: np.ndarray) -> np.ndarray:
    """Zero-copy uint64 aliasing of an int64 array (wraps exactly like astype)."""
    if values.dtype == np.uint64:
        return values
    try:
        return values.view(np.uint64)
    except ValueError:  # non-contiguous exotic layout: fall back to a copy
        return values.astype(np.uint64)


def sigridhash_kernel(
    values: np.ndarray, salt: int, max_value: int, out: np.ndarray | None = None
) -> np.ndarray:
    """SigridHash sparse ids into ``[0, max_value)``; int64 out.

    The mix is a splitmix64 finalizer; every pass writes the (caller-owned
    or freshly allocated) output buffer in place, so the kernel performs no
    per-pass allocations beyond the two shift temporaries.
    """
    if out is None:
        out = np.empty(values.shape[0], dtype=np.int64)
    h = _as_uint64(out)
    np.multiply(_as_uint64(values), np.uint64(0x9E3779B97F4A7C15), out=h)
    h += np.uint64(salt)
    h ^= h >> np.uint64(29)
    h *= np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(32)
    np.remainder(h, np.uint64(max_value), out=h)
    return out


def clamp_kernel(
    values: np.ndarray, lower: int, upper: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Clamp sparse ids into ``[lower, upper]``; int64 out."""
    if lower > upper:
        raise ValueError("Clamp lower bound exceeds upper bound")
    return np.clip(values, lower, upper, out=out)


def mapid_kernel(
    values: np.ndarray,
    multiplier: int,
    offset: int,
    table_size: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Affine id remap ``(v * multiplier + offset) % table_size``; int64 out."""
    if out is None:
        out = np.empty(values.shape[0], dtype=np.int64)
    h = _as_uint64(out)
    np.multiply(_as_uint64(values), np.uint64(multiplier), out=h)
    h += np.uint64(offset)
    np.remainder(h, np.uint64(table_size), out=h)
    return out


def firstx_kernel(
    offsets: np.ndarray,
    values: np.ndarray,
    x: int,
    out_offsets: np.ndarray | None = None,
    out_values: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Truncate every row's list to its first ``x`` ids.

    Returns the truncated column's ``(offsets, values)``. When output
    buffers are given they must be large enough (``rows + 1`` and the
    truncated nnz respectively).
    """
    if x <= 0:
        raise ValueError("FirstX needs x >= 1")
    lengths = lengths_from_offsets(offsets)
    out_offsets = offsets_from_lengths(np.minimum(lengths, x), out=out_offsets)
    nnz = int(offsets[-1])
    long_rows = np.flatnonzero(lengths > x)
    if nnz == 0:
        kept = values[:0]
    elif long_rows.size == 0:
        kept = values.copy()
    else:
        # Drop-range marking: only rows longer than x contribute a cut, so
        # the mask costs O(truncated rows) scatters plus one boolean
        # XOR-scan instead of a repeat() over every element. Cut starts
        # (row start + x) and cut ends (row end) are strictly increasing,
        # never collide, and never nest, so the parity scan is exactly the
        # inside-a-cut indicator.
        flips = np.zeros(nnz + 1, dtype=bool)
        flips[offsets[:-1][long_rows] + x] = True
        flips[offsets[1:][long_rows]] = True
        drop = np.logical_xor.accumulate(flips[:-1])
        kept = values[np.logical_not(drop, out=drop)]
    if out_values is None:
        return out_offsets, kept
    out_values[...] = kept
    return out_offsets, out_values


def ngram_kernel(
    offsets: np.ndarray,
    values: np.ndarray,
    n: int,
    out_hash_size: int,
    out_offsets: np.ndarray | None = None,
    out_values: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Hash every window of ``n`` consecutive ids within a row to a new id.

    Operates on the already row-wise-concatenated column (see
    :func:`repro.preprocessing.data.rowwise_concat_csr`); windows never span
    row boundaries.
    """
    if n < 1:
        raise ValueError("Ngram needs n >= 1")
    lengths = lengths_from_offsets(offsets)
    out_lengths = np.maximum(lengths - n + 1, 0)
    out_offsets = offsets_from_lengths(out_lengths, out=out_offsets)
    nnz = int(offsets[-1])
    if nnz == 0 or int(out_offsets[-1]) == 0:
        empty = values[:0] if out_values is None else out_values[:0]
        return out_offsets, empty
    v = values.astype(np.uint64)
    prime = np.uint64(1_000_003)
    h = np.zeros(nnz, dtype=np.uint64)
    for t in range(n):
        shifted = np.zeros(nnz, dtype=np.uint64)
        shifted[: nnz - t] = v[t:]
        h = h * prime + shifted
    num_rows = len(offsets) - 1
    row_ids = np.repeat(np.arange(num_rows), lengths)
    tail_rows = np.full(nnz, -1, dtype=np.int64)
    tail_rows[: nnz - (n - 1)] = row_ids[n - 1 :] if n > 1 else row_ids
    valid = row_ids == tail_rows
    grams = (h[valid] % np.uint64(out_hash_size)).astype(np.int64)
    if out_values is None:
        return out_offsets, grams
    out_values[...] = grams
    return out_offsets, out_values


@dataclass
class PreprocessingOp:
    """Base class for all Table-1 operators.

    Subclasses define the transform (``apply``) plus class-level cost
    coefficients. Instances are immutable descriptors bound to their input
    column names; the same instance can be applied to any batch carrying
    those columns.
    """

    inputs: tuple[str, ...]
    output: str

    # -- classification (Table 1) --------------------------------------
    op_name: ClassVar[str] = "base"
    category: ClassVar[str] = "Other"  # DN / SN / FG / Other
    input_kind: ClassVar[str] = "dense"  # dense / sparse / multi_sparse
    output_kind: ClassVar[str] = "dense"
    predictor_family: ClassVar[str] = "1D Ops"  # Table 5 grouping

    # -- cost coefficients (per element, full-device rates) ------------
    gpu_elems_per_us: ClassVar[float] = 50_000.0
    cpu_elems_per_us: ClassVar[float] = 2.5
    bytes_per_elem: ClassVar[float] = 8.0
    dram_intensity: ClassVar[float] = 0.8

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if not self.inputs:
            raise ValueError(f"{self.op_name} needs at least one input column")
        if self.input_kind != "multi_sparse" and len(self.inputs) != 1:
            raise ValueError(f"{self.op_name} takes exactly one input column")

    # ------------------------------------------------------------------
    # Functional behaviour
    # ------------------------------------------------------------------

    def apply(self, batch: Batch) -> DenseColumn | SparseColumn:
        """Apply the transform to ``batch`` and return the output column.

        The output is also inserted into the batch so chained operators can
        consume it.
        """
        columns = [batch.column(name) for name in self.inputs]
        result = self._transform(columns)
        batch.put(result)
        return result

    def _transform(self, columns: list) -> DenseColumn | SparseColumn:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def work_elements(self, rows: int, avg_list_length: float = 2.0) -> float:
        """Number of processed elements for a batch of ``rows`` samples."""
        if self.input_kind == "dense":
            return float(rows)
        if self.input_kind == "sparse":
            return rows * avg_list_length
        return rows * avg_list_length * len(self.inputs)

    def output_bytes(self, rows: int, avg_list_length: float = 2.0) -> float:
        return self.work_elements(rows, avg_list_length) * self.bytes_per_elem

    def _params_key(self) -> tuple:
        """Operator parameters that influence latency (noise + predictor)."""
        return ()

    def numeric_key(self) -> tuple:
        """Parameters that influence the *numeric output* of the operator.

        Two same-type ops with equal ``numeric_key()`` can execute as one
        vectorized kernel call over their concatenated inputs (the engine's
        fused execution). This can differ from :meth:`_params_key`, which
        only has to capture what moves *latency* (e.g. Bucketize's cost
        depends on the border count, but its output depends on the actual
        border values).
        """
        return self._params_key()

    def num_warps(self, rows: int, avg_list_length: float = 2.0) -> int:
        work = self.work_elements(rows, avg_list_length)
        return max(1, int(np.ceil(work / _ELEMS_PER_WARP)))

    def gpu_kernel(
        self,
        rows: int,
        spec: GpuSpec = A100_SPEC,
        avg_list_length: float = 2.0,
        name: str | None = None,
    ) -> KernelDesc:
        """Lower this operator to a resource-annotated simulated kernel."""
        work = self.work_elements(rows, avg_list_length)
        warps = self.num_warps(rows, avg_list_length)
        sm_frac = warps_to_sm_fraction(warps, spec)
        occupancy = max(warps / spec.total_warp_slots, 1e-4)
        compute_us = work / (self.gpu_elems_per_us * min(1.0, occupancy))
        write_us = self.output_bytes(rows, avg_list_length) / spec.dram_bytes_per_us
        body_us = max(compute_us, write_us)
        noise = _config_noise((self.op_name, rows, round(avg_list_length, 3)) + self._params_key())
        duration = spec.kernel_launch_us + body_us * noise
        dram_frac = self.dram_intensity * min(1.0, warps / (spec.total_warp_slots * _MEM_SATURATION_FRACTION))
        return KernelDesc(
            name=name or f"{self.op_name}:{self.output}",
            duration_us=duration,
            demand=ResourceVector(sm=sm_frac, dram=dram_frac),
            num_warps=warps,
            tag=self.op_name,
            launch_us=spec.kernel_launch_us,
            warp_slots=spec.total_warp_slots,
            meta={
                "rows": rows,
                "avg_list_length": avg_list_length,
                "params": self._params_key(),
                "members": 1,
            },
        )

    def cpu_latency_us(self, rows: int, avg_list_length: float = 2.0) -> float:
        """Single-worker CPU latency (the TorchArrow substrate's currency)."""
        work = self.work_elements(rows, avg_list_length)
        return work / self.cpu_elems_per_us

    def cost_features(self, rows: int, avg_list_length: float = 2.0) -> dict[str, float]:
        """Feature vector for the ML latency predictor (§5.2)."""
        params = self._params_key()
        features = {
            "rows": float(rows),
            "avg_list_length": float(avg_list_length),
            "work": self.work_elements(rows, avg_list_length),
            "warps": float(self.num_warps(rows, avg_list_length)),
            "output_bytes": self.output_bytes(rows, avg_list_length),
            "num_inputs": float(len(self.inputs)),
        }
        for i, p in enumerate(params):
            features[f"param_{i}"] = float(p)
        return features

    def describe(self) -> str:
        return f"{self.op_name}({', '.join(self.inputs)}) -> {self.output}"


# ----------------------------------------------------------------------
# Dense normalization (DN)
# ----------------------------------------------------------------------


@dataclass
class Logit(PreprocessingOp):
    """Logit transform for dense normalization: ``log(p / (1 - p))``.

    Inputs are clipped into ``(eps, 1 - eps)`` first; the synthetic dense
    columns live in [0, 1] (plus NaNs that FillNull clears upstream).
    """

    eps: float = 1e-5

    op_name: ClassVar[str] = "Logit"
    category: ClassVar[str] = "DN"
    gpu_elems_per_us: ClassVar[float] = 13_000.0
    cpu_elems_per_us: ClassVar[float] = 1.2
    dram_intensity: ClassVar[float] = 0.5

    def _params_key(self) -> tuple:
        return (self.eps,)

    def _transform(self, columns: list) -> DenseColumn:
        (col,) = columns
        return DenseColumn(self.output, logit_kernel(col.values, self.eps))


@dataclass
class BoxCox(PreprocessingOp):
    """Box-Cox power transform for dense normalization."""

    lmbda: float = 0.5

    op_name: ClassVar[str] = "BoxCox"
    category: ClassVar[str] = "DN"
    gpu_elems_per_us: ClassVar[float] = 15_000.0
    cpu_elems_per_us: ClassVar[float] = 0.9
    dram_intensity: ClassVar[float] = 0.4

    def _params_key(self) -> tuple:
        return (self.lmbda,)

    def _transform(self, columns: list) -> DenseColumn:
        (col,) = columns
        return DenseColumn(self.output, boxcox_kernel(col.values, self.lmbda))


@dataclass
class Onehot(PreprocessingOp):
    """One-hot encode a dense feature into ``num_classes`` buckets.

    The hot index is what downstream embedding/MLP consumption actually
    reads, so the output is materialized as a single-id sparse column of
    cardinality ``num_classes`` rather than an explicit binary matrix.
    """

    num_classes: int = 16

    op_name: ClassVar[str] = "Onehot"
    category: ClassVar[str] = "DN"
    output_kind: ClassVar[str] = "sparse"
    predictor_family: ClassVar[str] = "Onehot"
    gpu_elems_per_us: ClassVar[float] = 18_000.0
    cpu_elems_per_us: ClassVar[float] = 2.0
    dram_intensity: ClassVar[float] = 0.9

    def _params_key(self) -> tuple:
        return (self.num_classes,)

    def output_bytes(self, rows: int, avg_list_length: float = 2.0) -> float:
        # The encoding writes one byte per class per row before compaction.
        return float(rows) * self.num_classes

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        idx = onehot_kernel(col.values, self.num_classes)
        offsets = np.arange(len(idx) + 1, dtype=np.int64)
        return SparseColumn(self.output, offsets, idx, self.num_classes)


# ----------------------------------------------------------------------
# Sparse normalization (SN)
# ----------------------------------------------------------------------


@dataclass
class SigridHash(PreprocessingOp):
    """Hash sparse ids into a bounded id space (Meta's SigridHash)."""

    salt: int = 0x9E3779B9
    max_value: int = 1_000_000

    op_name: ClassVar[str] = "SigridHash"
    category: ClassVar[str] = "SN"
    input_kind: ClassVar[str] = "sparse"
    output_kind: ClassVar[str] = "sparse"
    gpu_elems_per_us: ClassVar[float] = 28_000.0
    cpu_elems_per_us: ClassVar[float] = 1.1
    dram_intensity: ClassVar[float] = 0.45

    def _params_key(self) -> tuple:
        return (self.salt, self.max_value)

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        hashed = sigridhash_kernel(col.values, self.salt, self.max_value)
        return SparseColumn(self.output, col.offsets.copy(), hashed, self.max_value)


@dataclass
class FirstX(PreprocessingOp):
    """Keep only the first ``x`` ids of each row's list (list truncation)."""

    x: int = 3

    op_name: ClassVar[str] = "FirstX"
    category: ClassVar[str] = "SN"
    input_kind: ClassVar[str] = "sparse"
    output_kind: ClassVar[str] = "sparse"
    predictor_family: ClassVar[str] = "FirstX"
    gpu_elems_per_us: ClassVar[float] = 38_000.0
    cpu_elems_per_us: ClassVar[float] = 3.0
    dram_intensity: ClassVar[float] = 0.85

    def _params_key(self) -> tuple:
        return (self.x,)

    def work_elements(self, rows: int, avg_list_length: float = 2.0) -> float:
        return rows * min(float(self.x), avg_list_length)

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        offsets, values = firstx_kernel(col.offsets, col.values, self.x)
        return SparseColumn(self.output, offsets, values, col.hash_size)


@dataclass
class Clamp(PreprocessingOp):
    """Clamp sparse ids into ``[lower, upper]``."""

    lower: int = 0
    upper: int = 1_000_000

    op_name: ClassVar[str] = "Clamp"
    category: ClassVar[str] = "SN"
    input_kind: ClassVar[str] = "sparse"
    output_kind: ClassVar[str] = "sparse"
    gpu_elems_per_us: ClassVar[float] = 34_000.0
    cpu_elems_per_us: ClassVar[float] = 2.8
    dram_intensity: ClassVar[float] = 0.8

    def _params_key(self) -> tuple:
        return (self.lower, self.upper)

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        clipped = clamp_kernel(col.values, self.lower, self.upper)
        return SparseColumn(self.output, col.offsets.copy(), clipped, max(col.hash_size, self.upper + 1))


# ----------------------------------------------------------------------
# Feature generation (FG)
# ----------------------------------------------------------------------


@dataclass
class Bucketize(PreprocessingOp):
    """Shard a dense feature into buckets given sorted borders."""

    borders: tuple[float, ...] = (0.25, 0.5, 0.75)

    op_name: ClassVar[str] = "Bucketize"
    category: ClassVar[str] = "FG"
    output_kind: ClassVar[str] = "sparse"
    predictor_family: ClassVar[str] = "Bucketize"
    gpu_elems_per_us: ClassVar[float] = 20_000.0
    cpu_elems_per_us: ClassVar[float] = 1.0
    dram_intensity: ClassVar[float] = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        self.borders = tuple(self.borders)
        if list(self.borders) != sorted(self.borders):
            raise ValueError("Bucketize borders must be sorted ascending")

    def _params_key(self) -> tuple:
        return (len(self.borders),)

    def numeric_key(self) -> tuple:
        # Cost only cares how many borders there are; the output depends on
        # the actual border values.
        return self.borders

    def work_elements(self, rows: int, avg_list_length: float = 2.0) -> float:
        # Binary search over the borders per element.
        return rows * max(1.0, np.log2(len(self.borders) + 1))

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        idx = bucketize_kernel(col.values, self.borders)
        offsets = np.arange(len(idx) + 1, dtype=np.int64)
        return SparseColumn(self.output, offsets, idx, len(self.borders) + 1)


@dataclass
class Ngram(PreprocessingOp):
    """Compute an n-gram across one or more sparse features (heavyweight FG).

    The per-row lists of all input features are concatenated in order and
    every window of ``n`` consecutive ids is hashed into a new id. This is
    the paper's case-study operator: its cost grows with the number of
    input features until the kernel saturates the device (Fig. 1b).
    """

    n: int = 3
    out_hash_size: int = 1_000_000

    op_name: ClassVar[str] = "Ngram"
    category: ClassVar[str] = "FG"
    input_kind: ClassVar[str] = "multi_sparse"
    output_kind: ClassVar[str] = "sparse"
    predictor_family: ClassVar[str] = "Ngram"
    gpu_elems_per_us: ClassVar[float] = 9_000.0
    cpu_elems_per_us: ClassVar[float] = 1.5
    dram_intensity: ClassVar[float] = 0.6

    def _params_key(self) -> tuple:
        return (self.n, len(self.inputs))

    def numeric_key(self) -> tuple:
        # The input count moves latency but not the window math; fused
        # members only need matching window size and output hash space.
        return (self.n, self.out_hash_size)

    def work_elements(self, rows: int, avg_list_length: float = 2.0) -> float:
        # Every element participates in up to n windows.
        return rows * avg_list_length * len(self.inputs) * self.n

    def _transform(self, columns: list) -> SparseColumn:
        if self.n < 1:
            raise ValueError("Ngram needs n >= 1")
        combined = concat_sparse_rows(columns, self.output + "_cat", self.out_hash_size)
        offsets, grams = ngram_kernel(combined.offsets, combined.values, self.n, self.out_hash_size)
        return SparseColumn(self.output, offsets, grams, self.out_hash_size)


@dataclass
class MapId(PreprocessingOp):
    """Map sparse ids to fixed values via an affine remap table."""

    multiplier: int = 2_654_435_761
    offset: int = 1
    table_size: int = 1_000_000

    op_name: ClassVar[str] = "MapId"
    category: ClassVar[str] = "FG"
    input_kind: ClassVar[str] = "sparse"
    output_kind: ClassVar[str] = "sparse"
    gpu_elems_per_us: ClassVar[float] = 22_000.0
    cpu_elems_per_us: ClassVar[float] = 1.5
    dram_intensity: ClassVar[float] = 0.95

    def _params_key(self) -> tuple:
        return (self.table_size,)

    def numeric_key(self) -> tuple:
        return (self.multiplier, self.offset, self.table_size)

    def _transform(self, columns: list) -> SparseColumn:
        (col,) = columns
        mapped = mapid_kernel(col.values, self.multiplier, self.offset, self.table_size)
        return SparseColumn(self.output, col.offsets.copy(), mapped, self.table_size)


# ----------------------------------------------------------------------
# Others
# ----------------------------------------------------------------------


@dataclass
class FillNull(PreprocessingOp):
    """Replace NaN entries of a dense column with a fixed value."""

    fill_value: float = 0.0

    op_name: ClassVar[str] = "FillNull"
    category: ClassVar[str] = "Other"
    gpu_elems_per_us: ClassVar[float] = 40_000.0
    cpu_elems_per_us: ClassVar[float] = 3.5
    dram_intensity: ClassVar[float] = 0.9

    def _params_key(self) -> tuple:
        return (self.fill_value,)

    def _transform(self, columns: list) -> DenseColumn:
        (col,) = columns
        return DenseColumn(self.output, fillnull_kernel(col.values, self.fill_value))


@dataclass
class Cast(PreprocessingOp):
    """Cast a dense column to a different numeric dtype."""

    dtype: str = "float32"

    op_name: ClassVar[str] = "Cast"
    category: ClassVar[str] = "Other"
    gpu_elems_per_us: ClassVar[float] = 44_000.0
    cpu_elems_per_us: ClassVar[float] = 4.0
    dram_intensity: ClassVar[float] = 0.9

    def _params_key(self) -> tuple:
        return (self.dtype,)

    def _transform(self, columns: list) -> DenseColumn:
        (col,) = columns
        return DenseColumn(self.output, cast_kernel(col.values, np.dtype(self.dtype)))


OP_REGISTRY: dict[str, type[PreprocessingOp]] = {
    cls.op_name: cls
    for cls in (
        Logit,
        BoxCox,
        Onehot,
        SigridHash,
        FirstX,
        Clamp,
        Bucketize,
        Ngram,
        MapId,
        FillNull,
        Cast,
    )
}


def make_op(op_name: str, inputs: Sequence[str], output: str, **params: Any) -> PreprocessingOp:
    """Instantiate a registered operator by its Table-1 name."""
    try:
        cls = OP_REGISTRY[op_name]
    except KeyError:
        raise KeyError(f"unknown preprocessing op {op_name!r}; known: {sorted(OP_REGISTRY)}") from None
    return cls(inputs=tuple(inputs), output=output, **params)
