"""Multi-core compiled data path: sharded programs over shared memory.

The single-core engine (:mod:`repro.preprocessing.engine`) lowers a graph
set into one flat program. This module scales that program across cores:

- **Op-level sharding** (:func:`partition_ops`) -- the global dependency
  graph of a lowered op/slot plan decomposes into connected components
  (per-feature chains, usually), which are packed into ``num_shards``
  balanced shards by longest-processing-time over the ops' CPU cost
  model. Partitioning is a pure function of the plan, so the shard ->
  worker map is deterministic at any worker count.
- **Persistent, lazily-spawned workers** -- each shard compiles (in its
  own process, on first ``execute``) into a :class:`CompiledProgram`
  over the *same* slot plan and kernel backend as the single-core
  lowering. Fused kernels are elementwise over concatenated member
  segments, so executing a subset of a slot's members in another process
  produces byte-for-byte the column the single-core step would -- the
  determinism argument behind the bit-identity guarantee (enforced
  property-based by ``tests/preprocessing/test_engine_equivalence.py``).
- **Shared-memory arenas** -- workers lease output buffers from a
  :class:`ShardArena` that bump-allocates inside named
  ``multiprocessing.shared_memory`` segments, so the parent assembles the
  output batch from zero-copy views; only tiny descriptor tuples cross
  the pipe. Segment lifecycle is leak-proof: every name carries the
  engine's prefix, the parent unlinks all known names on ``close()``
  and then sweeps ``/dev/shm`` for the prefix, covering worker crashes
  at any point (tested under SIGKILL).

Lease semantics match the single-core engine: a batch's output views are
valid until the next ``execute`` (pass ``copy_outputs=True`` otherwise).
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import traceback
import weakref
from multiprocessing import get_context, shared_memory
from pathlib import Path
from time import perf_counter

import numpy as np

from ..milp.fusion_problem import FusionAssignment
from .data import Batch, DenseColumn, SparseColumn
from .engine import (
    CompiledProgram,
    _global_deps,
    _group_and_lower,
    _required_inputs,
    plan_slots,
)
from .executor import MissingColumnsError
from .graph import GraphSet
from .ops import PreprocessingOp

__all__ = [
    "EngineMetrics",
    "EngineWorkerError",
    "ParallelEngine",
    "ShardArena",
    "attach_segment",
    "leaked_segments",
    "partition_ops",
    "unlink_segment",
]

_ALIGN = 64  # cache-line align every allocation inside a segment
_PAGE = 4096
_MIN_SEGMENT_BYTES = 1 << 20
_SHM_DIR = Path("/dev/shm")

_engine_ids = itertools.count()


class EngineWorkerError(RuntimeError):
    """A shard worker crashed or reported a failure."""


def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _round_segment(nbytes: int) -> int:
    nbytes = max(nbytes, _MIN_SEGMENT_BYTES)
    return (nbytes + _PAGE - 1) & ~(_PAGE - 1)


def _noop() -> None:
    pass


def _defuse(shm: shared_memory.SharedMemory) -> shared_memory.SharedMemory:
    """Disarm ``shm.close`` so GC never raises on live numpy views.

    The engine hands out zero-copy views whose lifetime it does not
    control (lease semantics: valid until the next execute). If the
    ``SharedMemory`` object is collected while such a view is alive,
    ``__del__`` -> ``close`` raises ``BufferError: cannot close exported
    pointers exist``. Shadowing ``close`` keeps the mapping alive until
    the views (which hold the buffer via their ``base`` chain) die, at
    which point the mmap closes itself; the *unlink* side is unaffected.
    """
    shm.close = _noop
    return shm


def _release_fd(shm: shared_memory.SharedMemory) -> None:
    """Close a defused segment's file descriptor (the mmap outlives it)."""
    fd = getattr(shm, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover
            pass
        shm._fd = -1


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment for zero-copy reads.

    Attaching re-registers the name with the resource tracker, which is
    harmless: the tracker's cache is a set, so the single registration is
    cleared by whoever calls ``unlink`` -- exactly once per name.
    """
    return _defuse(shared_memory.SharedMemory(name=name))


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of a (possibly already gone) segment by name.

    ``SharedMemory.unlink`` also unregisters the name from the resource
    tracker, retiring the registration made at creation time.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with another unlink
        pass
    try:
        seg.close()
    except BufferError:  # pragma: no cover
        pass
    return True


def leaked_segments(prefix: str) -> list[str]:
    """Names under ``/dev/shm`` carrying ``prefix`` (for leak tests)."""
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(p.name for p in _SHM_DIR.glob(prefix + "*"))


def _sweep_prefix(prefix: str) -> int:
    """Unlink every segment whose name starts with ``prefix``."""
    removed = 0
    for name in leaked_segments(prefix):
        if unlink_segment(name):
            removed += 1
    return removed


def _addr_of(buf) -> int:
    return np.frombuffer(buf, dtype=np.uint8).__array_interface__["data"][0]


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------


def partition_ops(
    ops: list[PreprocessingOp], num_shards: int, rows: int
) -> list[list[int]]:
    """Partition ops into <= ``num_shards`` dependency-closed shards.

    Producer->consumer edges union ops into connected components, so every
    dependency of a shard op lives in the same shard and shards only read
    raw batch columns. Components are packed longest-processing-time
    first (by modeled CPU latency, first-op-index tiebreak) into the
    least-loaded shard -- deterministic for a given plan. Returns op-index
    lists, each ascending, ordered by shard id; empty shards are dropped.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = len(ops)
    produced = {op.output: i for i, op in enumerate(ops)}
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for j, op in enumerate(ops):
        for name in op.inputs:
            i = produced.get(name)
            if i is not None and i != j:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)

    components: dict[int, list[int]] = {}
    for i in range(n):
        components.setdefault(find(i), []).append(i)
    weighted = sorted(
        (
            (-sum(ops[i].cpu_latency_us(rows) for i in members), members[0], members)
            for members in components.values()
        ),
    )
    loads = [(0.0, shard_id) for shard_id in range(min(num_shards, len(weighted)))]
    heapq.heapify(loads)
    shards: list[list[int]] = [[] for _ in range(len(loads))]
    for neg_weight, _, members in weighted:
        load, shard_id = heapq.heappop(loads)
        shards[shard_id].extend(members)
        heapq.heappush(loads, (load - neg_weight, shard_id))
    return [sorted(s) for s in shards if s]


def _compile_shard(
    ops: list[PreprocessingOp],
    slots: list[int],
    rows: int,
    arena,
    backend,
) -> CompiledProgram:
    """Lower one shard's (ops, slots) slice with the engine's own grouper."""
    produced, _ = _global_deps(ops)
    steps = _group_and_lower(ops, slots, backend)
    return CompiledProgram(
        steps,
        rows=rows,
        required_inputs=_required_inputs(ops, produced),
        num_ops=len(ops),
        arena=arena,
        backend=backend,
    )


# ----------------------------------------------------------------------
# Shared-memory arena (worker side)
# ----------------------------------------------------------------------


class ShardArena:
    """Bump allocator over named shared-memory segments.

    Implements the :class:`BufferArena` protocol the compiled engine
    drives (``reset``/``take``): leases are views into the current
    segment, ``reset`` rewinds the cursor (invalidating the previous
    batch's leases, the engine's documented lease contract). Overflow
    mid-batch opens an additional segment; at the next ``reset`` the
    arena consolidates into one doubled segment and reports the old names
    through ``drain_retired`` so the parent can unlink them.
    """

    def __init__(self, prefix: str, start_bytes: int = _MIN_SEGMENT_BYTES) -> None:
        self.prefix = prefix
        self._seq = itertools.count()
        self._segments: list[shared_memory.SharedMemory] = []
        self._addrs: list[int] = []
        self._seg_idx = 0
        self._offset = 0
        self._retired: list[str] = []
        self._fresh: list[str] = []
        self.allocated_segments = 0
        self.allocated_bytes = 0
        self._grow(_round_segment(start_bytes))

    # -- segment management -------------------------------------------

    def _grow(self, nbytes: int) -> None:
        name = f"{self.prefix}-{next(self._seq)}"
        seg = _defuse(shared_memory.SharedMemory(name=name, create=True, size=nbytes))
        self._segments.append(seg)
        self._addrs.append(_addr_of(seg.buf))
        self.allocated_segments += 1
        self.allocated_bytes += seg.size
        self._fresh.append(name)

    def reset(self) -> None:
        if len(self._segments) > 1:
            # Consolidate: one segment sized for the whole previous batch
            # (doubled for headroom). Old segments are dropped without
            # close() -- the parent may still hold views -- and their
            # names surface in drain_retired() for the parent to unlink.
            total = sum(seg.size for seg in self._segments)
            old = self._segments
            self._retired.extend(seg.name for seg in old)
            self.allocated_bytes -= sum(seg.size for seg in old)
            for seg in old:
                _release_fd(seg)
            self._segments = []
            self._addrs = []
            self._grow(_round_segment(2 * total))
        self._seg_idx = 0
        self._offset = 0

    def drain_retired(self) -> list[str]:
        out, self._retired = self._retired, []
        return out

    def drain_fresh(self) -> list[str]:
        out, self._fresh = self._fresh, []
        return out

    # -- BufferArena protocol ------------------------------------------

    def take(self, size: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        size = int(size)
        nbytes = size * dtype.itemsize
        while True:
            seg = self._segments[self._seg_idx]
            if self._offset + nbytes <= seg.size:
                view = np.frombuffer(seg.buf, dtype=dtype, count=size, offset=self._offset)
                self._offset += _align(nbytes)
                return view
            if self._seg_idx + 1 < len(self._segments):
                self._seg_idx += 1
                self._offset = 0
                continue
            self._grow(_round_segment(max(2 * nbytes, seg.size)))
            self._seg_idx = len(self._segments) - 1
            self._offset = 0

    def locate(self, arr: np.ndarray) -> tuple[str, int] | None:
        """(segment name, byte offset) when ``arr`` lives in this arena."""
        if arr.size == 0:
            return None
        ptr = arr.__array_interface__["data"][0]
        end = ptr + arr.nbytes
        for seg, addr in zip(self._segments, self._addrs):
            if addr <= ptr and end <= addr + seg.size:
                return seg.name, ptr - addr
        return None

    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    def stats(self) -> dict:
        return {
            "segments": len(self._segments),
            "segment_bytes": sum(seg.size for seg in self._segments),
            "allocated_segments": self.allocated_segments,
        }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _describe_array(arr: np.ndarray, arena: ShardArena, extra_pools, iota: np.ndarray):
    """Descriptor for one output array, copying heap arrays into shm."""
    if arr is iota:
        return ("iota",)
    if arr.size == 0:
        return ("empty", arr.dtype.str)
    loc = arena.locate(arr)
    if loc is None:
        for pool_name, pool_addr, pool_size in extra_pools:
            ptr = arr.__array_interface__["data"][0]
            if pool_addr <= ptr and ptr + arr.nbytes <= pool_addr + pool_size:
                return ("shm", pool_name, ptr - pool_addr, arr.dtype.str, arr.shape[0])
        staged = arena.take(arr.shape[0], arr.dtype)
        np.copyto(staged, np.ascontiguousarray(arr))
        loc = arena.locate(staged)
    name, offset = loc
    return ("shm", name, offset, arr.dtype.str, arr.shape[0])


def _worker_main(conn, payload: bytes) -> None:
    """Shard worker loop: attach inputs, execute, reply with descriptors."""
    spec = pickle.loads(payload)
    try:
        backend = None
        if spec["backend"] not in (None, "numpy"):
            from .backends import resolve_backend

            backend = resolve_backend(spec["backend"])
        arena = ShardArena(spec["prefix"], spec["start_bytes"])
        program = _compile_shard(spec["ops"], spec["slots"], spec["rows"], arena, backend)
        produced = [op.output for op in spec["ops"]]
        conn.send(
            (
                "ready",
                {
                    "steps": program.num_steps,
                    "max_fusion_degree": program.max_fusion_degree,
                    "backend": program.backend_name,
                    "backend_steps": program.backend_step_counts(),
                    "segments": arena.drain_fresh(),
                },
            )
        )
    except Exception:
        conn.send(("err", -1, traceback.format_exc()))
        return

    input_shm = None
    input_views: tuple[str, int, int] | None = None  # (name, addr, size)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent died: exit, parent owns unlinks
            return
        if msg is None:
            conn.send(("bye", arena.segment_names()))
            return
        _, seq, seg_name, layout = msg
        try:
            if input_shm is None or input_shm.name != seg_name:
                input_shm = attach_segment(seg_name)
                input_views = (seg_name, _addr_of(input_shm.buf), input_shm.size)
            batch = _decode_input_batch(input_shm, layout)
            t0 = perf_counter()
            out = program.execute(batch)
            busy = perf_counter() - t0
            pools = [input_views]
            columns = []
            for name in produced:
                col = out.dense.get(name) or out.sparse.get(name)
                if isinstance(col, DenseColumn):
                    desc = (
                        name,
                        "dense",
                        _describe_array(col.values, arena, pools, program.row_iota),
                    )
                else:
                    desc = (
                        name,
                        "sparse",
                        _describe_array(col.offsets, arena, pools, program.row_iota),
                        _describe_array(col.values, arena, pools, program.row_iota),
                        col.hash_size,
                    )
                columns.append(desc)
            fallbacks = backend.fallbacks if backend is not None else 0
            conn.send(
                (
                    "ok",
                    seq,
                    columns,
                    busy,
                    {
                        "fresh": arena.drain_fresh(),
                        "retired": arena.drain_retired(),
                        "segment_bytes": arena.stats()["segment_bytes"],
                        "fallbacks": fallbacks,
                    },
                )
            )
        except Exception:
            conn.send(("err", seq, traceback.format_exc()))


def _decode_input_batch(shm, layout) -> Batch:
    dense = {}
    sparse = {}
    for name, entry in layout.items():
        kind = entry[0]
        if kind == "dense":
            _, dtype, offset, length = entry
            arr = np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=length, offset=offset)
            dense[name] = DenseColumn.trusted(name, arr)
        else:
            _, o_off, o_len, v_dtype, v_off, v_len, hash_size = entry
            offsets = np.frombuffer(shm.buf, dtype=np.int64, count=o_len, offset=o_off)
            if v_len:
                values = np.frombuffer(
                    shm.buf, dtype=np.dtype(v_dtype), count=v_len, offset=v_off
                )
            else:
                values = np.empty(0, dtype=np.dtype(v_dtype))
            sparse[name] = SparseColumn.trusted(name, offsets, values, hash_size)
    batch = Batch.__new__(Batch)
    batch.dense = dense
    batch.sparse = sparse
    batch._nbytes = None
    return batch


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------


class EngineMetrics:
    """``rap_engine_*`` metric families for the multi-core data path.

    Like :class:`repro.ingest.metrics.IngestMetrics`: with
    ``registry=None`` a private registry is created so the engine can
    always record; pass the run's registry to surface the families in its
    telemetry artifacts.
    """

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.telemetry.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self.batches_total = registry.counter(
            "rap_engine_batches_total", "Batches executed by the parallel engine."
        )
        self.exec_seconds_total = registry.counter(
            "rap_engine_exec_seconds_total",
            "Parent-side wall seconds inside ParallelEngine.execute.",
        )
        self.shm_bytes_in_flight = registry.gauge(
            "rap_engine_shm_bytes_in_flight",
            "Bytes currently mapped in engine shared-memory segments.",
        )
        self.shm_segments = registry.gauge(
            "rap_engine_shm_segments", "Live engine shared-memory segments."
        )
        self.kernel_fallbacks_total = registry.counter(
            "rap_engine_kernel_fallbacks_total",
            "Accelerated kernels demoted to numpy at runtime.",
        )

    def worker_busy(self, worker: int, seconds: float) -> None:
        self.registry.counter(
            "rap_engine_worker_busy_seconds_total",
            "Per-worker seconds spent inside shard program execution.",
            labels={"worker": str(worker)},
        ).inc(seconds)

    def worker_busy_fraction(self, worker: int, fraction: float) -> None:
        self.registry.gauge(
            "rap_engine_worker_busy_fraction",
            "Per-worker busy seconds / engine wall seconds (cumulative).",
            labels={"worker": str(worker)},
        ).set(fraction)

    def backend_steps(self, counts: dict[str, int]) -> None:
        for backend, steps in counts.items():
            self.registry.gauge(
                "rap_engine_backend_steps",
                "Compiled fused steps per effective kernel backend.",
                labels={"backend": backend},
            ).set(steps)


# ----------------------------------------------------------------------
# Parent-side engine
# ----------------------------------------------------------------------


class _WorkerHandle:
    __slots__ = ("process", "conn", "shard", "info", "busy_seconds")

    def __init__(self, process, conn, shard) -> None:
        self.process = process
        self.conn = conn
        self.shard = shard
        self.info: dict = {}
        self.busy_seconds = 0.0


class ParallelEngine:
    """Execute a graph set across a pool of shard workers, bit-identically.

    Drop-in peer of :func:`compile_graph_set`'s program: same constructor
    inputs, same ``execute(batch, copy_outputs=False)`` contract and lease
    semantics, same outputs to the bit. ``workers`` bounds the pool; the
    actual pool size is ``min(workers, number of dependency components)``.
    Workers spawn lazily on the first ``execute`` and persist until
    ``close()`` (also invoked by a finalizer and ``atexit``).
    """

    def __init__(
        self,
        graph_set: GraphSet,
        assignment: FusionAssignment | None = None,
        fusion: bool = True,
        workers: int = 2,
        backend: str | None = None,
        metrics: EngineMetrics | None = None,
        start_method: str | None = None,
        start_bytes: int = _MIN_SEGMENT_BYTES,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ops, slots, produced = plan_slots(graph_set, assignment, fusion)
        self.rows = graph_set.rows
        self.num_ops = len(ops)
        self.workers = workers
        self.backend_name = backend or "numpy"
        self.required_inputs = _required_inputs(ops, produced)
        self._ops = ops
        self._slots = slots
        self._shards = partition_ops(ops, workers, self.rows)
        self._produced_names = set(produced)
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._start_method = start_method or os.environ.get("RAP_ENGINE_START_METHOD")
        self._start_bytes = start_bytes
        self.prefix = f"rap-eng-{os.getpid()}-{next(_engine_ids)}"
        self.batches_executed = 0
        self._seq = 0
        self._wall_seconds = 0.0
        self._worker_handles: list[_WorkerHandle] = []
        self._started = False
        self._broken: str | None = None
        self._closed = False
        self._input_shm: shared_memory.SharedMemory | None = None
        self._input_gen = 0
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._known_segments: set[str] = set()
        self._row_iota = np.arange(self.rows + 1, dtype=np.int64)
        self._row_iota.flags.writeable = False
        # weakref.finalize self-registers for interpreter exit, so segments
        # are swept even when close() is never called.
        self._finalizer = weakref.finalize(self, _cleanup_engine, self.prefix)

    # -- introspection --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def num_workers(self) -> int:
        """Pool size actually used (lazily spawned on first execute)."""
        return len(self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self._shards]

    def summary(self) -> dict:
        backend_steps: dict[str, int] = {}
        steps = 0
        max_deg = 0
        for handle in self._worker_handles:
            steps += handle.info.get("steps", 0)
            max_deg = max(max_deg, handle.info.get("max_fusion_degree", 0))
            for name, count in handle.info.get("backend_steps", {}).items():
                backend_steps[name] = backend_steps.get(name, 0) + count
        return {
            "ops": self.num_ops,
            "steps": steps,
            "max_fusion_degree": max_deg,
            "batches_executed": self.batches_executed,
            "backend": self.backend_name,
            "backend_steps": backend_steps,
            "workers": self.num_workers,
            "shards": self.shard_sizes(),
            "shm_bytes": self.shm_bytes_in_flight(),
            "worker_busy_fraction": self.worker_busy_fractions(),
        }

    def shm_bytes_in_flight(self) -> int:
        total = self._input_shm.size if self._input_shm is not None else 0
        for handle in self._worker_handles:
            total += handle.info.get("segment_bytes", 0)
        return total

    def worker_busy_fractions(self) -> dict[int, float]:
        if not self._wall_seconds:
            return {}
        return {
            i: round(handle.busy_seconds / self._wall_seconds, 4)
            for i, handle in enumerate(self._worker_handles)
        }

    def segment_names(self) -> list[str]:
        return sorted(self._known_segments)

    # -- lifecycle ------------------------------------------------------

    def _start(self) -> None:
        # Start the parent's resource tracker *before* forking so every
        # worker inherits it; otherwise each worker lazily spawns its own
        # tracker, which then warns about segments the parent unlinked.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker impl detail
            pass
        ctx = get_context(self._start_method) if self._start_method else get_context()
        for i, shard in enumerate(self._shards):
            spec = {
                "ops": [self._ops[j] for j in shard],
                "slots": [self._slots[j] for j in shard],
                "rows": self.rows,
                "backend": self.backend_name,
                "prefix": f"{self.prefix}-w{i}",
                "start_bytes": self._start_bytes,
            }
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, pickle.dumps(spec)),
                name=f"rap-engine-{i}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._worker_handles.append(_WorkerHandle(process, parent_conn, shard))
        for i, handle in enumerate(self._worker_handles):
            reply = self._recv(i, handle)
            if reply[0] != "ready":
                raise EngineWorkerError(f"worker {i} failed to compile: {reply[2]}")
            handle.info = reply[1]
            self._known_segments.update(handle.info.pop("segments", []))
        self.metrics.backend_steps(self.summary()["backend_steps"])
        self._started = True

    def _recv(self, worker_id: int, handle: _WorkerHandle):
        try:
            return handle.conn.recv()
        except (EOFError, OSError) as exc:
            self._broken = f"worker {worker_id} died ({type(exc).__name__})"
            raise EngineWorkerError(
                f"worker {worker_id} (pid {handle.process.pid}) died mid-execution; "
                "the engine is closed to unlink its shared-memory segments"
            ) from exc

    def close(self) -> None:
        """Shut down workers and unlink every engine segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._worker_handles:
            try:
                handle.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for handle in self._worker_handles:
            try:
                # Drain until the "bye" (stale exec replies may precede it)
                # so the worker's final segment roster is captured.
                while handle.conn.poll(1.0):
                    reply = handle.conn.recv()
                    if reply and reply[0] == "bye":
                        self._known_segments.update(reply[1])
                        break
            except (EOFError, OSError):
                pass
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._input_shm is not None:
            self._known_segments.add(self._input_shm.name)
            _release_fd(self._input_shm)
            self._input_shm = None
        for shm in self._attached.values():
            _release_fd(shm)
        self._attached.clear()
        for name in sorted(self._known_segments):
            unlink_segment(name)
        self._known_segments.clear()
        _sweep_prefix(self.prefix)
        if self.metrics is not None:
            self.metrics.shm_bytes_in_flight.set(0)
            self.metrics.shm_segments.set(0)
        try:
            atexit.unregister(self._finalizer)
        except Exception:  # pragma: no cover
            pass
        self._finalizer.detach()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def _ensure_input_segment(self, nbytes: int) -> None:
        needed = _round_segment(nbytes)
        if self._input_shm is not None and self._input_shm.size >= needed:
            return
        old = self._input_shm
        name = f"{self.prefix}-in{self._input_gen}"
        self._input_gen += 1
        self._input_shm = _defuse(
            shared_memory.SharedMemory(name=name, create=True, size=needed)
        )
        self._known_segments.add(name)
        if old is not None:
            # Workers re-attach by name per exec message, and unlink does
            # not invalidate existing mappings, so the old generation can
            # go away immediately.
            self._known_segments.discard(old.name)
            unlink_segment(old.name)

    def _write_inputs(self, batch: Batch) -> dict:
        arrays: list[tuple[np.ndarray, int]] = []
        layout: dict[str, tuple] = {}
        cursor = 0

        def stage(arr: np.ndarray) -> int:
            nonlocal cursor
            offset = cursor
            arrays.append((arr, offset))
            cursor += _align(arr.nbytes)
            return offset

        for name in sorted(self.required_inputs):
            col = batch.dense.get(name)
            if col is not None:
                offset = stage(col.values)
                layout[name] = ("dense", col.values.dtype.str, offset, col.values.shape[0])
                continue
            col = batch.sparse[name]
            o_off = stage(col.offsets)
            v_off = stage(col.values) if col.values.shape[0] else 0
            layout[name] = (
                "sparse",
                o_off,
                col.offsets.shape[0],
                col.values.dtype.str,
                v_off,
                col.values.shape[0],
                col.hash_size,
            )
        self._ensure_input_segment(max(cursor, _ALIGN))
        buf = self._input_shm.buf
        for arr, offset in arrays:
            if arr.nbytes == 0:
                continue
            view = np.frombuffer(buf, dtype=arr.dtype, count=arr.shape[0], offset=offset)
            np.copyto(view, arr)
        return layout

    def _resolve_desc(self, desc) -> np.ndarray:
        kind = desc[0]
        if kind == "iota":
            return self._row_iota
        if kind == "empty":
            return np.empty(0, dtype=np.dtype(desc[1]))
        _, seg_name, offset, dtype, length = desc
        shm = self._attached.get(seg_name)
        if shm is None:
            if self._input_shm is not None and seg_name == self._input_shm.name:
                shm = self._input_shm
            else:
                shm = attach_segment(seg_name)
            self._attached[seg_name] = shm
        return np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=length, offset=offset)

    def execute(self, batch: Batch, copy_outputs: bool = False) -> Batch:
        """Run every shard against ``batch`` and assemble the output.

        Same contract as :meth:`CompiledProgram.execute`: the returned
        batch carries the input columns (referenced, never mutated) plus
        every produced column; produced columns are views into engine
        shared memory valid until the next ``execute`` unless
        ``copy_outputs=True``.
        """
        if self._closed:
            raise EngineWorkerError("engine is closed")
        if self._broken:
            raise EngineWorkerError(f"engine is broken: {self._broken}")
        if batch.size != self.rows:
            raise ValueError(
                f"batch has {batch.size} rows but the graph set was built for {self.rows}"
            )
        available = set(batch.dense) | set(batch.sparse)
        missing = sorted(self.required_inputs - available)
        if missing:
            raise MissingColumnsError(missing)
        t0 = perf_counter()
        try:
            if not self._started:
                self._start()
            layout = self._write_inputs(batch)
            seq = self._seq = self._seq + 1
            for i, handle in enumerate(self._worker_handles):
                try:
                    handle.conn.send(("exec", seq, self._input_shm.name, layout))
                except (BrokenPipeError, OSError) as exc:
                    self._broken = f"worker {i} died ({type(exc).__name__})"
                    raise EngineWorkerError(
                        f"worker {i} (pid {handle.process.pid}) died before "
                        "dispatch; the engine is closed to unlink its "
                        "shared-memory segments"
                    ) from exc
            replies = []
            for i, handle in enumerate(self._worker_handles):
                reply = self._recv(i, handle)
                if reply[0] == "err":
                    self._broken = f"worker {i} raised"
                    raise EngineWorkerError(f"worker {i} failed:\n{reply[2]}")
                replies.append(reply)
        except Exception:
            if self._broken:
                self.close()
            raise
        dense = dict(batch.dense)
        sparse = dict(batch.sparse)
        for i, (_, _, columns, busy, seg_info) in enumerate(replies):
            handle = self._worker_handles[i]
            handle.busy_seconds += busy
            self.metrics.worker_busy(i, busy)
            handle.info["segment_bytes"] = seg_info["segment_bytes"]
            self._known_segments.update(seg_info["fresh"])
            for name in seg_info["retired"]:
                stale = self._attached.pop(name, None)
                if stale is not None:
                    _release_fd(stale)
                self._known_segments.discard(name)
                unlink_segment(name)
            if seg_info["fallbacks"]:
                self.metrics.kernel_fallbacks_total.inc(
                    seg_info["fallbacks"] - handle.info.get("fallbacks_seen", 0)
                )
                handle.info["fallbacks_seen"] = seg_info["fallbacks"]
            for desc in columns:
                name, kind = desc[0], desc[1]
                if kind == "dense":
                    col = DenseColumn.trusted(name, self._resolve_desc(desc[2]))
                    if copy_outputs:
                        col = col.copy()
                    dense[name] = col
                else:
                    col = SparseColumn.trusted(
                        name,
                        self._resolve_desc(desc[2]),
                        self._resolve_desc(desc[3]),
                        desc[4],
                    )
                    if copy_outputs:
                        col = col.copy()
                    sparse[name] = col
        out = Batch.__new__(Batch)
        out.dense = dense
        out.sparse = sparse
        out._nbytes = None
        self.batches_executed += 1
        wall = perf_counter() - t0
        self._wall_seconds += wall
        self._record_metrics(wall)
        return out

    def _record_metrics(self, wall: float) -> None:
        m = self.metrics
        m.batches_total.inc()
        m.exec_seconds_total.inc(wall)
        fractions = self.worker_busy_fractions()
        for i in range(len(self._worker_handles)):
            m.worker_busy_fraction(i, fractions.get(i, 0.0))
        m.shm_bytes_in_flight.set(self.shm_bytes_in_flight())
        m.shm_segments.set(len(self._known_segments))


def _cleanup_engine(prefix: str) -> None:
    """Finalizer/atexit safety net: unlink anything the engine left behind."""
    _sweep_prefix(prefix)
