"""Compatibility shim: the pipelined feeder moved to :mod:`repro.ingest`.

The feeder outgrew this module when ingestion became pluggable (URL-style
sources, backpressure queues, telemetry — DESIGN.md §14) and its
single-use lifecycle bug was fixed: each ``__iter__`` now leases a fresh
worker pool, so re-iterating a feeder works and only the explicit
``close()`` ends its life. Import from :mod:`repro.ingest` directly in new
code; this module keeps the old import path working.
"""

from repro.ingest import PipelinedFeeder, SyntheticBatchSource

__all__ = ["PipelinedFeeder", "SyntheticBatchSource"]
