"""Inter-batch pipelined feeding (§6.3): prepare batch *i+1* under batch *i*.

The paper's inter-batch workload interleaving hides the CPU-side data
preparation of the *next* batch (storage fetch, decode, host staging)
under the current batch's GPU work. :class:`PipelinedFeeder` realizes that
on real data: a background worker pool runs the user's ``produce(index)``
callable up to ``depth`` batches ahead while the consumer iterates results
strictly in order.

Guarantees:

- **In-order delivery** -- batch ``i`` is always yielded before ``i+1``,
  regardless of worker completion order.
- **Bounded lookahead** -- at most ``depth`` batches are in flight, so
  memory stays proportional to the window, not the epoch.
- **Clean shutdown** -- exhausting the iterator, leaving the ``with``
  block, or calling :meth:`PipelinedFeeder.close` always shuts the pool
  down and cancels not-yet-started work; no workers are leaked.
- **Exception propagation** -- a producer failure re-raises in the
  consumer at the failed batch's position. In ``thread`` mode the original
  exception object (with its original traceback) propagates; in
  ``process`` mode the pickled exception carries the worker traceback in
  its ``__cause__`` chain.

``mode="thread"`` is the default and is the right choice whenever batch
production blocks on I/O (storage or network fetch), which the sleep-based
latency knob of :class:`SyntheticBatchSource` stands in for; numpy also
releases the GIL on large array operations. ``mode="process"`` sidesteps
the GIL for pure-Python/CPU-bound producers at the cost of pickling each
batch across the process boundary.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

from .data import Batch, CriteoSchema, SyntheticCriteoDataset

__all__ = ["PipelinedFeeder", "SyntheticBatchSource"]


@dataclass(frozen=True)
class SyntheticBatchSource:
    """Picklable batch producer over the synthetic Criteo generator.

    ``io_delay_s`` models the per-batch storage/network fetch latency of a
    real input pipeline (the component §6.3 interleaving exists to hide);
    it is spent as a plain sleep before synthesis so thread-mode feeders
    can genuinely overlap it with downstream execution.
    """

    schema: CriteoSchema
    batch_size: int
    seed: int = 2024
    start: int = 0
    io_delay_s: float = 0.0

    def __call__(self, index: int) -> Batch:
        if self.io_delay_s > 0:
            time.sleep(self.io_delay_s)
        dataset = SyntheticCriteoDataset(self.schema, seed=self.seed)
        return dataset.batch(self.batch_size, index=self.start + index)


class PipelinedFeeder:
    """Double-buffered (depth-``d``) background batch producer.

    Parameters
    ----------
    produce:
        Callable mapping a batch index (``0 .. num_batches-1``) to a batch.
        Must be picklable in ``process`` mode.
    num_batches:
        Total number of batches to produce.
    depth:
        Maximum batches in flight (2 = classic double buffering).
    mode:
        ``"thread"`` or ``"process"``.
    workers:
        Worker count of the underlying pool.
    """

    def __init__(
        self,
        produce: Callable[[int], Batch],
        num_batches: int,
        depth: int = 2,
        mode: str = "thread",
        workers: int = 1,
    ) -> None:
        if num_batches < 0:
            raise ValueError("num_batches must be non-negative")
        if depth < 1:
            raise ValueError("depth must be at least 1 (2 = double buffering)")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.produce = produce
        self.num_batches = num_batches
        self.depth = depth
        self.mode = mode
        self.workers = workers
        self._pool: Executor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "PipelinedFeeder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down; idempotent, never leaks workers.

        Waits for in-flight work and cancels batches that have not started.
        """
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self) -> Executor:
        if self._closed:
            raise RuntimeError("feeder is closed")
        if self._pool is None:
            if self.mode == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="rap-feeder"
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Batch]:
        pool = self._ensure_pool()
        pending: deque = deque()
        next_index = 0
        try:
            while pending or next_index < self.num_batches:
                while next_index < self.num_batches and len(pending) < self.depth:
                    pending.append(pool.submit(self.produce, next_index))
                    next_index += 1
                # .result() re-raises a producer exception: in thread mode
                # the original exception object (original traceback); in
                # process mode with the remote traceback as __cause__.
                yield pending.popleft().result()
        finally:
            # Reached on exhaustion, consumer break, or producer failure:
            # never leave workers running ahead of a consumer that is gone.
            for fut in pending:
                fut.cancel()
            self.close()
