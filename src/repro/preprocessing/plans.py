"""The paper's input preprocessing plans (Table 3) plus study variants.

Plans 0 and 1 follow TorchArrow's default Criteo recipe: light
normalization on every feature (~2.67 ops/feature, 104 ops total). Plans 2
and 3 are the paper's synthetically densified workloads: 2x / 4x the
features with deeper per-feature chains and extra feature-generation
(Ngram) graphs, totalling 384 and 1548 operators.

The exact per-feature chains are not published; we reconstruct them to hit
Table 3's op counts exactly while exercising the structural properties the
paper calls out: repeated same-type operators inside one chain (serializing
fusion), opposite-order pairs like ``FirstX -> SigridHash`` vs
``SigridHash -> FirstX`` across chains (fusion conflicts, §6.1), and
multi-input Ngram graphs (expensive feature generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .data import CriteoSchema, KAGGLE_SCHEMA, TERABYTE_SCHEMA
from .graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from .ops import (
    BoxCox,
    Bucketize,
    Cast,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    MapId,
    Ngram,
    SigridHash,
)

__all__ = ["PlanSpec", "PLAN_TABLE", "build_plan", "build_skewed_plan", "table_for_sparse_feature"]


@dataclass(frozen=True)
class PlanSpec:
    """One row of the paper's Table 3."""

    plan_id: int
    dataset: str
    num_dense: int
    num_sparse: int
    ops_per_feature: float
    total_ops: int


PLAN_TABLE: dict[int, PlanSpec] = {
    0: PlanSpec(0, "kaggle", 13, 26, 2.67, 104),
    1: PlanSpec(1, "terabyte", 13, 26, 2.67, 104),
    2: PlanSpec(2, "terabyte", 26, 52, 4.92, 384),
    3: PlanSpec(3, "terabyte", 52, 104, 9.80, 1548),
}


def table_for_sparse_feature(feature: str) -> str:
    """Embedding-table name consuming a raw sparse feature's graph."""
    return f"table:{feature}"


def _dense_graph_light(i: int) -> FeatureGraph:
    base = f"dense_{i}"
    p = f"p0d{i}"
    return FeatureGraph(
        name=f"g_dense_{i}",
        ops=[
            FillNull(inputs=(base,), output=f"{p}_fill"),
            Logit(inputs=(f"{p}_fill",), output=f"{p}_out"),
        ],
        consumer=DENSE_CONSUMER,
    )


def _sparse_graph_light(j: int) -> FeatureGraph:
    base = f"sparse_{j}"
    p = f"p0s{j}"
    return FeatureGraph(
        name=f"g_sparse_{j}",
        ops=[
            SigridHash(inputs=(base,), output=f"{p}_hash", max_value=500_000),
            FirstX(inputs=(f"{p}_hash",), output=f"{p}_first", x=3),
            Clamp(inputs=(f"{p}_first",), output=f"{p}_out", lower=0, upper=499_999),
        ],
        consumer=table_for_sparse_feature(base),
    )


def _build_light_plan(plan_id: int, schema: CriteoSchema, rows: int) -> GraphSet:
    """Plans 0 and 1: TorchArrow's default Criteo preprocessing recipe."""
    graphs = [_dense_graph_light(i) for i in range(schema.num_dense)]
    graphs += [_sparse_graph_light(j) for j in range(schema.num_sparse)]
    return GraphSet(graphs, rows=rows)


def _dense_graph_plan2(i: int) -> FeatureGraph:
    base = f"dense_{i}"
    p = f"p2d{i}"
    if i % 2 == 0:
        ops = [
            FillNull(inputs=(base,), output=f"{p}_fill"),
            Logit(inputs=(f"{p}_fill",), output=f"{p}_logit"),
            BoxCox(inputs=(f"{p}_logit",), output=f"{p}_bc", lmbda=0.5),
            Cast(inputs=(f"{p}_bc",), output=f"{p}_out", dtype="float32"),
        ]
        consumer = DENSE_CONSUMER
    else:
        ops = [
            FillNull(inputs=(base,), output=f"{p}_fill"),
            BoxCox(inputs=(f"{p}_fill",), output=f"{p}_bc", lmbda=0.25),
            Bucketize(inputs=(f"{p}_bc",), output=f"{p}_bkt", borders=(0.1, 0.3, 0.5, 0.7, 0.9)),
            MapId(inputs=(f"{p}_bkt",), output=f"{p}_out", table_size=64),
        ]
        consumer = f"table:plan2_bucket_{i}"
    return FeatureGraph(name=f"g_dense_{i}", ops=ops, consumer=consumer)


def _sparse_graph_plan2(j: int) -> FeatureGraph:
    base = f"sparse_{j}"
    p = f"p2s{j}"
    if j % 2 == 0:
        # SigridHash appears twice with a dependency between them, and the
        # chain orders SigridHash before FirstX ...
        ops = [
            SigridHash(inputs=(base,), output=f"{p}_h1", max_value=800_000),
            FirstX(inputs=(f"{p}_h1",), output=f"{p}_fx", x=4),
            Clamp(inputs=(f"{p}_fx",), output=f"{p}_cl", lower=0, upper=799_999),
            MapId(inputs=(f"{p}_cl",), output=f"{p}_map", table_size=800_000),
            SigridHash(inputs=(f"{p}_map",), output=f"{p}_out", max_value=400_000, salt=17),
        ]
    else:
        # ... while odd chains order FirstX before SigridHash, creating the
        # cross-chain fusion conflict the paper describes in §6.1.
        ops = [
            FirstX(inputs=(base,), output=f"{p}_fx", x=4),
            SigridHash(inputs=(f"{p}_fx",), output=f"{p}_h1", max_value=800_000),
            Clamp(inputs=(f"{p}_h1",), output=f"{p}_cl", lower=0, upper=799_999),
            SigridHash(inputs=(f"{p}_cl",), output=f"{p}_h2", max_value=400_000, salt=23),
            MapId(inputs=(f"{p}_h2",), output=f"{p}_out", table_size=400_000),
        ]
    return FeatureGraph(name=f"g_sparse_{j}", ops=ops, consumer=table_for_sparse_feature(base))


def _ngram_graph(tag: str, k: int, feature_ids: list[int], n: int, extra_ops: int) -> FeatureGraph:
    """A feature-generation graph: Ngram over several raw sparse features."""
    inputs = tuple(f"sparse_{j}" for j in feature_ids)
    p = f"{tag}ng{k}"
    ops = [Ngram(inputs=inputs, output=f"{p}_gram", n=n, out_hash_size=2_000_000)]
    chain = [
        SigridHash(inputs=(f"{p}_gram",), output=f"{p}_h", max_value=1_000_000),
        FirstX(inputs=(f"{p}_h",), output=f"{p}_fx", x=6),
        Clamp(inputs=(f"{p}_fx",), output=f"{p}_cl", lower=0, upper=999_999),
    ]
    ops.extend(chain[:extra_ops])
    return FeatureGraph(
        name=f"g_ngram_{tag}_{k}",
        ops=ops,
        consumer=f"table:{tag}_ngram_{k}",
        avg_list_length=2.0 * len(inputs),
    )


def _build_plan2(schema: CriteoSchema, rows: int) -> GraphSet:
    graphs = [_dense_graph_plan2(i) for i in range(schema.num_dense)]
    graphs += [_sparse_graph_plan2(j) for j in range(schema.num_sparse)]
    # 10 Ngram graphs x 2 ops: 104 + 260 + 20 = 384 total operators.
    for k in range(10):
        feats = [(3 * k + d) % schema.num_sparse for d in range(3)]
        graphs.append(_ngram_graph("p2", k, feats, n=3, extra_ops=1))
    return GraphSet(graphs, rows=rows)


def _dense_graph_plan3(i: int) -> FeatureGraph:
    base = f"dense_{i}"
    p = f"p3d{i}"
    ops = [
        FillNull(inputs=(base,), output=f"{p}_fill"),
        Logit(inputs=(f"{p}_fill",), output=f"{p}_l1"),
        BoxCox(inputs=(f"{p}_l1",), output=f"{p}_b1", lmbda=0.5),
        Cast(inputs=(f"{p}_b1",), output=f"{p}_c1", dtype="float64"),
        Logit(inputs=(f"{p}_c1",), output=f"{p}_l2", eps=1e-4),
        BoxCox(inputs=(f"{p}_l2",), output=f"{p}_b2", lmbda=0.25),
        Logit(inputs=(f"{p}_b2",), output=f"{p}_l3", eps=1e-3),
        Cast(inputs=(f"{p}_l3",), output=f"{p}_out", dtype="float32"),
    ]
    return FeatureGraph(name=f"g_dense_{i}", ops=ops, consumer=DENSE_CONSUMER)


def _sparse_graph_plan3(j: int) -> FeatureGraph:
    base = f"sparse_{j}"
    p = f"p3s{j}"
    if j % 2 == 0:
        ops = [
            SigridHash(inputs=(base,), output=f"{p}_h1", max_value=900_000),
            FirstX(inputs=(f"{p}_h1",), output=f"{p}_f1", x=5),
            Clamp(inputs=(f"{p}_f1",), output=f"{p}_c1", lower=0, upper=899_999),
            MapId(inputs=(f"{p}_c1",), output=f"{p}_m1", table_size=900_000),
            SigridHash(inputs=(f"{p}_m1",), output=f"{p}_h2", max_value=600_000, salt=7),
            FirstX(inputs=(f"{p}_h2",), output=f"{p}_f2", x=3),
            Clamp(inputs=(f"{p}_f2",), output=f"{p}_c2", lower=0, upper=599_999),
            MapId(inputs=(f"{p}_c2",), output=f"{p}_m2", table_size=600_000),
            SigridHash(inputs=(f"{p}_m2",), output=f"{p}_h3", max_value=300_000, salt=11),
            Clamp(inputs=(f"{p}_h3",), output=f"{p}_out", lower=0, upper=299_999),
        ]
    else:
        ops = [
            FirstX(inputs=(base,), output=f"{p}_f1", x=5),
            SigridHash(inputs=(f"{p}_f1",), output=f"{p}_h1", max_value=900_000),
            MapId(inputs=(f"{p}_h1",), output=f"{p}_m1", table_size=900_000),
            Clamp(inputs=(f"{p}_m1",), output=f"{p}_c1", lower=0, upper=899_999),
            FirstX(inputs=(f"{p}_c1",), output=f"{p}_f2", x=3),
            SigridHash(inputs=(f"{p}_f2",), output=f"{p}_h2", max_value=600_000, salt=13),
            MapId(inputs=(f"{p}_h2",), output=f"{p}_m2", table_size=600_000),
            Clamp(inputs=(f"{p}_m2",), output=f"{p}_c2", lower=0, upper=599_999),
            SigridHash(inputs=(f"{p}_c2",), output=f"{p}_h3", max_value=300_000, salt=19),
            Clamp(inputs=(f"{p}_h3",), output=f"{p}_out", lower=0, upper=299_999),
        ]
    return FeatureGraph(name=f"g_sparse_{j}", ops=ops, consumer=table_for_sparse_feature(base))


def _build_plan3(schema: CriteoSchema, rows: int) -> GraphSet:
    graphs = [_dense_graph_plan3(i) for i in range(schema.num_dense)]
    graphs += [_sparse_graph_plan3(j) for j in range(schema.num_sparse)]
    # 23 Ngram graphs x 4 ops: 416 + 1040 + 92 = 1548 total operators.
    for k in range(23):
        feats = [(4 * k + d) % schema.num_sparse for d in range(4)]
        graphs.append(_ngram_graph("p3", k, feats, n=3, extra_ops=3))
    return GraphSet(graphs, rows=rows)


def build_plan(plan_id: int, rows: int = 4096) -> tuple[GraphSet, CriteoSchema]:
    """Build Table 3's plan ``plan_id`` at batch size ``rows``.

    Returns the workload :class:`GraphSet` and the matching data schema.
    """
    spec = PLAN_TABLE.get(plan_id)
    if spec is None:
        raise KeyError(f"unknown plan {plan_id}; valid plans: {sorted(PLAN_TABLE)}")
    base = KAGGLE_SCHEMA if spec.dataset == "kaggle" else TERABYTE_SCHEMA
    if plan_id in (0, 1):
        schema = base
        graphs = _build_light_plan(plan_id, schema, rows)
    elif plan_id == 2:
        schema = base.scaled(2, 2, name=f"{base.name}_plan2")
        graphs = _build_plan2(schema, rows)
    else:
        schema = base.scaled(4, 4, name=f"{base.name}_plan3")
        graphs = _build_plan3(schema, rows)
    expected = spec.total_ops
    actual = graphs.total_ops
    if actual != expected:
        raise AssertionError(f"plan {plan_id} built {actual} ops, Table 3 says {expected}")
    return graphs, schema


def build_skewed_plan(
    rows: int = 4096,
    num_gpus: int = 4,
    heavy_every: int | None = None,
    heavy_features: Sequence[int] | None = None,
    graphs_per_heavy_feature: int = 1,
) -> tuple[GraphSet, CriteoSchema]:
    """A deliberately imbalanced workload for the Fig. 12 mapping study.

    A subset of sparse features -- ``heavy_features`` explicitly, or every
    ``heavy_every``-th feature -- receives ``graphs_per_heavy_feature``
    extra Ngram feature-generation graphs routed to its embedding table.
    Passing the features whose tables live on one GPU (see
    ``repro.dlrm.EmbeddingPlacement.tables_on_gpu``) piles work onto that
    GPU under data-locality mapping, while data-parallel mapping pays
    per-feature input communication: the Fig.-12 tension RAP resolves.
    """
    schema = TERABYTE_SCHEMA
    base, _ = build_plan(1, rows=rows)
    graphs = list(base.graphs)
    if heavy_features is not None:
        heavy_ids = list(heavy_features)
    else:
        stride = heavy_every or num_gpus
        heavy_ids = [j for j in range(schema.num_sparse) if j % stride == 0]
    for j in heavy_ids:
        if not 0 <= j < schema.num_sparse:
            raise IndexError(f"heavy feature {j} outside schema of {schema.num_sparse} sparse features")
    k = 0
    for j in heavy_ids:
        for _ in range(graphs_per_heavy_feature):
            feats = [j, (j + 1) % schema.num_sparse, (j + 2) % schema.num_sparse]
            g = _ngram_graph("skew", k, feats, n=3, extra_ops=3)
            # Route the generated feature to the heavy feature's table.
            graphs.append(
                FeatureGraph(
                    name=g.name,
                    ops=g.ops,
                    consumer=table_for_sparse_feature(f"sparse_{j}"),
                    avg_list_length=g.avg_list_length,
                )
            )
            k += 1
    return GraphSet(graphs, rows=rows), schema
