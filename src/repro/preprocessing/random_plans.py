"""Random preprocessing-plan generation.

The paper built Plans 2 and 3 by "randomly applying different input
preprocessing operations" to a widened Criteo schema. This module exposes
that generator as a first-class, seedable API so property tests, fuzzing,
and sensitivity studies can sample the space of plausible workloads rather
than exercising only the four fixed plans.

Generated graphs are always valid: chains respect operator input kinds
(dense ops feed dense ops until a bucketizing op flips the column sparse,
sparse ops feed sparse ops), every output column name is unique, and every
sparse-consumer graph ends in a sparse column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .data import CriteoSchema, TERABYTE_SCHEMA
from .graph import DENSE_CONSUMER, FeatureGraph, GraphSet
from .ops import (
    BoxCox,
    Bucketize,
    Cast,
    Clamp,
    FillNull,
    FirstX,
    Logit,
    MapId,
    Ngram,
    PreprocessingOp,
    SigridHash,
)
from .plans import table_for_sparse_feature

__all__ = ["RandomPlanConfig", "generate_random_plan"]


@dataclass(frozen=True)
class RandomPlanConfig:
    """Knobs of the random workload generator."""

    num_dense: int = 13
    num_sparse: int = 26
    min_chain: int = 2
    max_chain: int = 6
    num_ngram_graphs: int = 4
    ngram_width: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_dense < 0 or self.num_sparse < 1:
            raise ValueError("need at least one sparse feature")
        if not 1 <= self.min_chain <= self.max_chain:
            raise ValueError("need 1 <= min_chain <= max_chain")
        if self.num_ngram_graphs < 0 or self.ngram_width < 1:
            raise ValueError("ngram settings must be non-negative")


def _dense_step(rng: np.random.Generator, src: str, dst: str) -> tuple[PreprocessingOp, bool]:
    """One dense-input op; returns (op, output_is_sparse)."""
    roll = rng.integers(0, 5)
    if roll == 0:
        return FillNull(inputs=(src,), output=dst, fill_value=float(rng.random())), False
    if roll == 1:
        return Logit(inputs=(src,), output=dst, eps=10.0 ** -float(rng.integers(3, 7))), False
    if roll == 2:
        return BoxCox(inputs=(src,), output=dst, lmbda=float(rng.uniform(0.1, 1.0))), False
    if roll == 3:
        return Cast(inputs=(src,), output=dst, dtype=str(rng.choice(["float32", "float64"]))), False
    borders = tuple(np.sort(rng.uniform(0.0, 1.0, size=int(rng.integers(2, 9)))))
    return Bucketize(inputs=(src,), output=dst, borders=borders), True


def _sparse_step(rng: np.random.Generator, src: str, dst: str) -> PreprocessingOp:
    roll = rng.integers(0, 4)
    if roll == 0:
        return SigridHash(
            inputs=(src,), output=dst,
            max_value=int(rng.integers(10_000, 2_000_000)), salt=int(rng.integers(0, 1000)),
        )
    if roll == 1:
        return FirstX(inputs=(src,), output=dst, x=int(rng.integers(1, 8)))
    if roll == 2:
        upper = int(rng.integers(1_000, 2_000_000))
        return Clamp(inputs=(src,), output=dst, lower=0, upper=upper)
    return MapId(inputs=(src,), output=dst, table_size=int(rng.integers(10_000, 1_000_000)))


def _chain(
    rng: np.random.Generator,
    prefix: str,
    source: str,
    source_is_sparse: bool,
    length: int,
) -> tuple[list[PreprocessingOp], bool]:
    ops: list[PreprocessingOp] = []
    current = source
    is_sparse = source_is_sparse
    for step in range(length):
        dst = f"{prefix}_{step}"
        if is_sparse:
            ops.append(_sparse_step(rng, current, dst))
        elif step == 0:
            # Raw dense columns carry NaNs; every realistic recipe (and the
            # paper's default plan) imputes first, and downstream transforms
            # (Logit/BoxCox) are only NaN-safe after imputation.
            ops.append(FillNull(inputs=(current,), output=dst, fill_value=float(rng.random())))
        else:
            op, became_sparse = _dense_step(rng, current, dst)
            ops.append(op)
            is_sparse = became_sparse
        current = dst
    return ops, is_sparse


def generate_random_plan(
    config: RandomPlanConfig | None = None,
    rows: int = 4096,
    schema: CriteoSchema | None = None,
) -> tuple[GraphSet, CriteoSchema]:
    """Sample a random but structurally valid preprocessing workload."""
    config = config or RandomPlanConfig()
    rng = np.random.default_rng(config.seed)
    base = schema or TERABYTE_SCHEMA
    from dataclasses import replace as dc_replace

    schema = dc_replace(
        base,
        name=f"random_{config.seed}",
        num_dense=config.num_dense,
        num_sparse=config.num_sparse,
    )
    graphs: list[FeatureGraph] = []

    for i in range(config.num_dense):
        length = int(rng.integers(config.min_chain, config.max_chain + 1))
        ops, is_sparse = _chain(rng, f"r{config.seed}d{i}", f"dense_{i}", False, length)
        consumer = f"table:rand_bucket_{i}" if is_sparse else DENSE_CONSUMER
        graphs.append(FeatureGraph(name=f"g_dense_{i}", ops=ops, consumer=consumer))

    for j in range(config.num_sparse):
        length = int(rng.integers(config.min_chain, config.max_chain + 1))
        ops, _ = _chain(rng, f"r{config.seed}s{j}", f"sparse_{j}", True, length)
        graphs.append(
            FeatureGraph(
                name=f"g_sparse_{j}",
                ops=ops,
                consumer=table_for_sparse_feature(f"sparse_{j}"),
                avg_list_length=schema.avg_list_length,
            )
        )

    for k in range(config.num_ngram_graphs):
        width = min(config.ngram_width, config.num_sparse)
        feats = rng.choice(config.num_sparse, size=width, replace=False)
        prefix = f"r{config.seed}x{k}"
        gram = Ngram(
            inputs=tuple(f"sparse_{int(f)}" for f in feats),
            output=f"{prefix}_gram",
            n=int(rng.integers(2, 4)),
            out_hash_size=int(rng.integers(100_000, 3_000_000)),
        )
        tail, _ = _chain(rng, prefix, f"{prefix}_gram", True, int(rng.integers(0, 3)))
        graphs.append(
            FeatureGraph(
                name=f"g_cross_{k}",
                ops=[gram] + tail,
                consumer=f"table:rand_cross_{k}",
                avg_list_length=schema.avg_list_length * width,
            )
        )

    return GraphSet(graphs, rows=rows), schema
