"""Fault-tolerant execution layer over searched co-running plans.

The planner (:mod:`repro.core`) answers "what is the best placement"; this
package answers "what happens when that placement's assumptions break".
It provides deterministic fault injection, retry with backoff and
per-stage deadlines, the five-rung graceful-degradation ladder
(co-run -> shard-retry -> trailing -> sequential -> CPU fallback), a
latency watchdog that regenerates stale plans, and the structured
:class:`ResilienceReport` the CLI renders and serializes.

On top of the ladder sit the whole-run robustness mechanisms: elastic GPU
membership (``gpu_lost`` terminal faults shrink the fleet, re-shard the
embeddings, and warm-replan down to one GPU and finally CPU-only),
iteration-consistent checkpoints with manifest-sealed atomic artifacts,
and an append-only crash-safe run journal. The shadow planner
(:mod:`repro.runtime.shadow`) continuously searches candidate plans
against live calibrated costs and promotes one only when a guarded
replay-window comparison clears its margin, with probation monitoring
and automatic rollback to a pinned anchor checkpoint.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointManager,
    Snapshot,
)
from .elastic import (
    RESHARD_BASE_US,
    MembershipChange,
    clone_planner,
    reshard_cost_us,
    shrink_workload,
    surviving_mapping,
)
from .executor import (
    POOL_RESTART_BASE_US,
    DataPathVerifier,
    DataVerification,
    DataVerificationError,
    FaultTolerantRuntime,
    KernelRecovery,
    SimulatedKill,
)
from .faults import (
    CPU_POOL_CRASH,
    FAULT_KINDS,
    FUSED_OOM,
    GPU_LOST,
    KERNEL_FAILURE,
    KERNEL_FAULT_KINDS,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from .journal import JournalFlaw, RunJournal, validate_records
from .ladder import (
    CO_RUN,
    CPU_FALLBACK,
    LADDER,
    SEQUENTIAL,
    SHARD_RETRY,
    TRAILING,
    LadderTransition,
    next_rung,
)
from .report import IterationRecord, ResilienceReport
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .shadow import (
    PROBATION_ABORTED,
    PROBATION_COMMITTED,
    PROBATION_OUTCOMES,
    PROBATION_ROLLED_BACK,
    CandidateVerdict,
    ShadowConfig,
    ShadowObservation,
    ShadowPlanner,
)
from .watchdog import LatencyWatchdog, WatchdogDecision

__all__ = [
    "DataPathVerifier",
    "DataVerification",
    "DataVerificationError",
    "FaultTolerantRuntime",
    "KernelRecovery",
    "SimulatedKill",
    "POOL_RESTART_BASE_US",
    "RESHARD_BASE_US",
    "MembershipChange",
    "reshard_cost_us",
    "shrink_workload",
    "surviving_mapping",
    "clone_planner",
    "CheckpointManager",
    "CheckpointError",
    "Snapshot",
    "CHECKPOINT_FORMAT_VERSION",
    "RunJournal",
    "JournalFlaw",
    "validate_records",
    "ShadowConfig",
    "ShadowObservation",
    "ShadowPlanner",
    "CandidateVerdict",
    "PROBATION_COMMITTED",
    "PROBATION_ROLLED_BACK",
    "PROBATION_ABORTED",
    "PROBATION_OUTCOMES",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "FAULT_KINDS",
    "KERNEL_FAULT_KINDS",
    "KERNEL_FAILURE",
    "LATENCY_OVERRUN",
    "FUSED_OOM",
    "CPU_POOL_CRASH",
    "PLAN_DRIFT",
    "GPU_LOST",
    "LADDER",
    "CO_RUN",
    "SHARD_RETRY",
    "TRAILING",
    "SEQUENTIAL",
    "CPU_FALLBACK",
    "next_rung",
    "LadderTransition",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "LatencyWatchdog",
    "WatchdogDecision",
    "IterationRecord",
    "ResilienceReport",
]
