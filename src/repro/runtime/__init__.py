"""Fault-tolerant execution layer over searched co-running plans.

The planner (:mod:`repro.core`) answers "what is the best placement"; this
package answers "what happens when that placement's assumptions break".
It provides deterministic fault injection, retry with backoff and
per-stage deadlines, the five-rung graceful-degradation ladder
(co-run -> shard-retry -> trailing -> sequential -> CPU fallback), a
latency watchdog that regenerates stale plans, and the structured
:class:`ResilienceReport` the CLI renders and serializes.
"""

from .executor import POOL_RESTART_BASE_US, FaultTolerantRuntime, KernelRecovery
from .faults import (
    CPU_POOL_CRASH,
    FAULT_KINDS,
    FUSED_OOM,
    KERNEL_FAILURE,
    KERNEL_FAULT_KINDS,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
    FaultSpec,
)
from .ladder import (
    CO_RUN,
    CPU_FALLBACK,
    LADDER,
    SEQUENTIAL,
    SHARD_RETRY,
    TRAILING,
    LadderTransition,
    next_rung,
)
from .report import IterationRecord, ResilienceReport
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .watchdog import LatencyWatchdog, WatchdogDecision

__all__ = [
    "FaultTolerantRuntime",
    "KernelRecovery",
    "POOL_RESTART_BASE_US",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "FAULT_KINDS",
    "KERNEL_FAULT_KINDS",
    "KERNEL_FAILURE",
    "LATENCY_OVERRUN",
    "FUSED_OOM",
    "CPU_POOL_CRASH",
    "PLAN_DRIFT",
    "LADDER",
    "CO_RUN",
    "SHARD_RETRY",
    "TRAILING",
    "SEQUENTIAL",
    "CPU_FALLBACK",
    "next_rung",
    "LadderTransition",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "LatencyWatchdog",
    "WatchdogDecision",
    "IterationRecord",
    "ResilienceReport",
]
