"""Iteration-consistent checkpoints for the fault-tolerant runtime.

A checkpoint captures everything the runtime needs to resume as if the
process had never died: the next training iteration, the active plan (its
exact serialized bytes), the accumulated :class:`ResilienceReport`, and
the runtime's mutable control state (degradation scale, CPU-evicted
kernels, watchdog window, membership history, plan epoch). Because the
fault injector is a pure function of ``(seed, iteration, placement)`` and
plan serialization round-trips bit-identically, a resumed run replays the
exact trajectory of an uninterrupted one under the same seed.

Crash safety: every file is written atomically, and the per-checkpoint
``MANIFEST.json`` -- carrying a SHA-256 per member file -- is written
*last*. A directory without a valid manifest (the process died mid-save)
is simply not a checkpoint; :meth:`CheckpointManager.latest` skips it and
falls back to the newest complete one.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..ioutil import atomic_write_text

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointError", "Snapshot", "CheckpointManager"]

CHECKPOINT_FORMAT_VERSION = 1

_STATE_FILE = "state.json"
_PLAN_FILE = "plan.json"
_REPORT_FILE = "report.json"
_MANIFEST_FILE = "MANIFEST.json"

#: Untagged (cadence) checkpoint directory names; tagged checkpoints
#: (e.g. ``ckpt-00000007-anchor`` rollback anchors) carry a suffix and
#: are deliberately excluded from :meth:`CheckpointManager.latest`.
_PLAIN_CKPT_RE = re.compile(r"ckpt-\d+")
_TAG_RE = re.compile(r"[A-Za-z0-9_.-]+")


class CheckpointError(ValueError):
    """A checkpoint directory is missing, incomplete, or corrupt."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """One loaded, digest-verified checkpoint."""

    directory: Path
    iteration: int
    state: dict
    plan_text: str
    report: dict
    manifest: dict


class CheckpointManager:
    """Writes and restores manifest-sealed checkpoint directories.

    ``keep`` bounds how many complete checkpoints survive pruning; the
    run journal (which lives alongside, not inside, the ``ckpt-*``
    directories) is never pruned.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 3,
        namespace: str | None = None,
    ) -> None:
        """``namespace`` scopes checkpoints to a subdirectory of the root.

        The preprocessing service gives every tenant its own namespace
        under one shared service root, so per-tenant cadence, pruning, and
        resume never see another tenant's directories.
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if namespace is not None and not _TAG_RE.fullmatch(namespace):
            raise ValueError(f"bad checkpoint namespace {namespace!r}")
        self.namespace = namespace
        root = Path(directory)
        self.directory = root / namespace if namespace is not None else root
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        # Pinned directory names survive pruning unconditionally. Pins are
        # in-memory by design: the pinning feature (the shadow loop's
        # rollback anchor) re-pins on restore/run start, so a crashed
        # process cannot leak a pin that protects garbage forever.
        self._pinned: set[str] = set()

    # ------------------------------------------------------------------
    # Pinning

    @property
    def pinned(self) -> frozenset:
        return frozenset(self._pinned)

    def pin(self, directory: str | Path) -> None:
        """Protect one checkpoint directory from pruning until unpinned.

        The shadow promotion loop pins the rollback anchor of an open
        probation so cadence checkpoints can never prune the state a
        rollback would restore.
        """
        self._pinned.add(Path(directory).name)

    def unpin(self, directory: str | Path) -> None:
        self._pinned.discard(Path(directory).name)

    # ------------------------------------------------------------------
    # Saving

    def _ckpt_dir(self, iteration: int, tag: str | None = None) -> Path:
        name = f"ckpt-{iteration:08d}"
        if tag:
            name += f"-{tag}"
        return self.directory / name

    def save(
        self,
        next_iteration: int,
        state: dict,
        plan_text: str,
        report: dict,
        tag: str | None = None,
    ) -> Path:
        """Write one checkpoint for resumption at ``next_iteration``.

        Member files land atomically first; the manifest seals the
        directory last, so a crash at any point leaves either a complete
        checkpoint or an unsealed directory that loading ignores.

        ``tag`` suffixes the directory name (``ckpt-NNNNNNNN-TAG``);
        tagged checkpoints never collide with the same iteration's
        cadence checkpoint and are skipped by :meth:`latest` -- a
        rollback *anchor* records pre-swap state to roll back to, not a
        resume point (resuming from it would fork the timeline).
        """
        if tag is not None and not _TAG_RE.fullmatch(tag):
            raise ValueError(f"bad checkpoint tag {tag!r}")
        ckpt = self._ckpt_dir(next_iteration, tag)
        ckpt.mkdir(parents=True, exist_ok=True)
        state = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "next_iteration": next_iteration,
            **state,
        }
        members = {
            _STATE_FILE: json.dumps(state, sort_keys=True, indent=2),
            _PLAN_FILE: plan_text,
            _REPORT_FILE: json.dumps(report, sort_keys=True, indent=2),
        }
        for name, text in members.items():
            atomic_write_text(ckpt / name, text)
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "iteration": next_iteration,
            "files": {
                name: {"sha256": _digest(text), "bytes": len(text.encode("utf-8"))}
                for name, text in members.items()
            },
        }
        atomic_write_text(ckpt / _MANIFEST_FILE, json.dumps(manifest, sort_keys=True, indent=2))
        self._prune()
        return ckpt

    def _prune(self) -> None:
        complete = sorted(
            d for d in self.directory.glob("ckpt-*")
            if d.is_dir() and (d / _MANIFEST_FILE).exists()
        )
        deletable = [d for d in complete if d.name not in self._pinned]
        for stale in deletable[: -self.keep]:
            shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------
    # Loading

    def load(self, directory: str | Path) -> Snapshot:
        """Load and digest-verify one checkpoint directory."""
        ckpt = Path(directory)
        manifest_path = ckpt / _MANIFEST_FILE
        if not manifest_path.exists():
            raise CheckpointError(f"{ckpt}: no manifest (incomplete checkpoint)")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{ckpt}: unreadable manifest ({exc})") from exc
        if not isinstance(manifest, dict) or manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"{ckpt}: unsupported checkpoint format {manifest.get('format_version')!r}"
                if isinstance(manifest, dict)
                else f"{ckpt}: malformed manifest"
            )
        texts: dict[str, str] = {}
        for name, meta in manifest.get("files", {}).items():
            member = ckpt / name
            try:
                text = member.read_text(encoding="utf-8")
            except OSError as exc:
                raise CheckpointError(f"{ckpt}: missing member {name!r} ({exc})") from exc
            if _digest(text) != meta.get("sha256"):
                raise CheckpointError(f"{ckpt}: digest mismatch for member {name!r}")
            texts[name] = text
        for required in (_STATE_FILE, _PLAN_FILE, _REPORT_FILE):
            if required not in texts:
                raise CheckpointError(f"{ckpt}: manifest lists no {required!r}")
        try:
            state = json.loads(texts[_STATE_FILE])
            report = json.loads(texts[_REPORT_FILE])
        except json.JSONDecodeError as exc:  # digests matched, so this is a writer bug
            raise CheckpointError(f"{ckpt}: corrupt member payload ({exc})") from exc
        return Snapshot(
            directory=ckpt,
            iteration=int(manifest["iteration"]),
            state=state,
            plan_text=texts[_PLAN_FILE],
            report=report,
            manifest=manifest,
        )

    def latest(self) -> Snapshot | None:
        """The newest *valid* cadence checkpoint, or ``None``.

        Invalid directories (unsealed, tampered, torn) are skipped, so a
        crash during save falls back to the previous complete checkpoint.
        Tagged checkpoints (rollback anchors) are never resume targets:
        an anchor captures *pre-promotion* state whose only purpose is
        being rolled back to; resuming from it would silently diverge
        from the killed run's actual trajectory.
        """
        candidates = sorted(
            (
                d
                for d in self.directory.glob("ckpt-*")
                if d.is_dir() and _PLAIN_CKPT_RE.fullmatch(d.name)
            ),
            reverse=True,
        )
        for candidate in candidates:
            try:
                return self.load(candidate)
            except CheckpointError:
                continue
        return None
