"""Elastic GPU membership: shrinking the fleet after a terminal device loss.

A :data:`~repro.runtime.faults.GPU_LOST` fault cannot be retried or
re-sharded around -- the device is gone. Recovery is a *membership
change*: the cluster shrinks to the survivors, embedding shards owned by
the dead GPU are redistributed (priced in simulated wall time over PCIe,
like ``recovery_us_per_gpu``), and the planner produces an N-1 plan
warm-started from the surviving slice of the old mapping. The descent
repeats per loss down to a single GPU; losing that last device drops the
whole pipeline to CPU fallback.

This module holds the pure building blocks; the state machine that drives
them lives in :class:`repro.runtime.executor.FaultTolerantRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.mapping import GraphMapping, map_data_locality, rebuild_comm
from ..core.planner import RapPlan, RapPlanner
from ..dlrm.training import TrainingWorkload
from ..gpusim.resources import GpuSpec
from ..preprocessing.graph import DENSE_CONSUMER, GraphSet

__all__ = [
    "RESHARD_BASE_US",
    "MembershipChange",
    "reshard_cost_us",
    "shrink_workload",
    "surviving_mapping",
    "clone_planner",
]

#: Fixed control-plane cost of a membership change (NCCL communicator
#: teardown + rebuild, process-group re-rendezvous), independent of how
#: many embedding bytes move.
RESHARD_BASE_US = 5_000.0


@dataclass(frozen=True)
class MembershipChange:
    """One fleet-shrink event, recorded for reports and the run journal."""

    iteration: int
    #: Index of the lost GPU *in the fleet at the time of loss*.
    lost_gpu: int
    #: The same device's index in the original fleet (stable identity).
    lost_gpu_original: int
    survivors: int
    moved_tables: tuple[str, ...] = field(default_factory=tuple)
    moved_bytes: float = 0.0
    reshard_us: float = 0.0
    #: Epoch of the plan produced *after* this change.
    plan_epoch: int = 0

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "lost_gpu": self.lost_gpu,
            "lost_gpu_original": self.lost_gpu_original,
            "survivors": self.survivors,
            "moved_tables": list(self.moved_tables),
            "moved_bytes": self.moved_bytes,
            "reshard_us": self.reshard_us,
            "plan_epoch": self.plan_epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MembershipChange":
        return cls(
            iteration=int(data["iteration"]),
            lost_gpu=int(data["lost_gpu"]),
            lost_gpu_original=int(data["lost_gpu_original"]),
            survivors=int(data["survivors"]),
            moved_tables=tuple(data.get("moved_tables", ())),
            moved_bytes=float(data.get("moved_bytes", 0.0)),
            reshard_us=float(data.get("reshard_us", 0.0)),
            plan_epoch=int(data.get("plan_epoch", 0)),
        )


def reshard_cost_us(moved_bytes: float, spec: GpuSpec) -> float:
    """Simulated wall time to redistribute ``moved_bytes`` of embedding rows.

    The dead GPU's shards are restored from the survivors' optimizer-state
    replicas, so the traffic crosses host PCIe once. Mirrors the shape of
    the retry policy's ``recovery_us_per_gpu`` pricing: a fixed base plus a
    bandwidth term.
    """
    if moved_bytes < 0:
        raise ValueError("moved_bytes must be non-negative")
    return RESHARD_BASE_US + moved_bytes * 1e-3 / spec.pcie_bw_gbps


def shrink_workload(
    workload: TrainingWorkload, lost_gpu: int
) -> tuple[TrainingWorkload, tuple[str, ...], float]:
    """Survivor workload plus (moved table names, moved bytes)."""
    return workload.shrunk(lost_gpu)


def surviving_mapping(
    previous: RapPlan,
    lost_gpu: int,
    workload: TrainingWorkload,
    graph_set: GraphSet,
) -> GraphMapping:
    """Re-index the old plan's mapping onto the survivor fleet.

    Dense-consumer graphs are rebuilt per-slice on every survivor (each
    GPU's MLP replica preprocesses exactly its own slice, and the global
    batch contracted with the fleet). Sparse-consumer graphs keep their
    surviving placements, re-indexed into the survivor GPU space at the
    new global batch; a graph whose every placement died falls back to its
    data-locality position (the post-reshard table owner). Communication
    totals are rebuilt from scratch -- the old ones priced a different
    fleet.
    """
    old = previous.mapping
    n = old.num_gpus
    if workload.num_gpus != n - 1:
        raise ValueError(
            f"survivor workload has {workload.num_gpus} GPUs; expected {n - 1}"
        )
    if not 0 <= lost_gpu < n:
        raise ValueError(f"lost_gpu {lost_gpu} out of range for {n} GPUs")
    remap = {g: i for i, g in enumerate(g for g in range(n) if g != lost_gpu)}
    local = workload.local_batch
    global_batch = workload.global_batch
    fallback = map_data_locality(graph_set, workload)
    mapping = GraphMapping(strategy=old.strategy, num_gpus=workload.num_gpus)
    for graph in graph_set:
        if graph.consumer == DENSE_CONSUMER:
            mapping.placements[graph.name] = [(g, local) for g in range(workload.num_gpus)]
            continue
        kept = sorted(
            remap[g] for g, _ in old.placements.get(graph.name, ()) if g != lost_gpu
        )
        if kept:
            mapping.placements[graph.name] = [(g, global_batch) for g in kept]
        else:
            mapping.placements[graph.name] = list(
                fallback.placements.get(graph.name, [(0, global_batch)])
            )
    rebuild_comm(mapping, graph_set, workload)
    return mapping


def clone_planner(planner: RapPlanner, workload: TrainingWorkload) -> RapPlanner:
    """A planner with ``planner``'s knobs re-targeted at a new workload.

    Shares the plan cache and MILP solver (and through it the solve
    cache), so a membership change benefits from every artifact the larger
    fleet already paid for.
    """
    return RapPlanner(
        workload,
        predictor=planner.cost_model.predictor,
        mapping_strategy=planner.mapping_strategy,
        fusion_enabled=planner.fusion_enabled,
        interleaving_enabled=planner.interleaving_enabled,
        exact_fusion=planner.exact_fusion,
        max_mapping_moves=planner.max_mapping_moves,
        cache=planner.cache,
        parallel_search=planner.mapper.parallel,
        solver=planner.solver,
    )
