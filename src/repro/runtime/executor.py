"""The fault-tolerant co-running runtime.

:class:`FaultTolerantRuntime` wraps a searched :class:`repro.core.RapPlan`
with the machinery a production input pipeline needs when the plan's
assumptions break mid-iteration: deterministic fault injection
(:mod:`repro.runtime.faults`), in-place retry with exponential backoff and
per-stage deadlines (:mod:`repro.runtime.retry`), the graceful-degradation
ladder (:mod:`repro.runtime.ladder`), and a latency watchdog that triggers
plan regeneration when measured exposure drifts away from the prediction
(:mod:`repro.runtime.watchdog`).

Recovery is priced, never hand-waved: failed attempts waste their own wall
time, backoff pauses stall the bulk-synchronous cluster, demoted kernels
surface as exposed latency, and CPU-evicted kernels pace the iteration
through the hybrid worker pool. With injection disabled the runtime is a
transparent shim: its iteration numbers are bit-identical to
:meth:`repro.core.RapPlanner.evaluate` on the same plan.

Beyond the per-kernel ladder, two whole-run mechanisms live here:

- **Elastic membership** (:mod:`repro.runtime.elastic`): a ``gpu_lost``
  fault escalates past the ladder into a fleet shrink -- embedding
  re-shard, warm-started N-1 replan, priced redistribution -- repeating
  down to one GPU and finally a CPU-only regime.
- **Checkpoint/resume** (:mod:`repro.runtime.checkpoint`): the runtime's
  full mutable state serializes to a dict; a restored runtime replays the
  exact trajectory of an uninterrupted run because fault injection is a
  pure function of ``(seed, iteration, placement)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..baselines.torcharrow import CpuWorkerPool
from ..core.adaptation import drift_graph_set, scale_plan_kernels
from ..core.codegen import compile_plan
from ..core.fusion import fit_kernel_to_leftover, shard_by_latency
from ..core.hybrid import GPU_TO_CPU_SLOWDOWN, cpu_fallback_production_us, degraded_pool
from ..core.latency_predictor import kernel_features
from ..core.planner import RapPlan, RapPlanner
from ..core.serialization import kernel_from_dict, kernel_to_dict, plan_from_json, plan_to_json
from ..dlrm.training import TrainingWorkload
from ..gpusim.kernel import KernelDesc
from ..preprocessing.data import Batch, CriteoSchema, SyntheticCriteoDataset
from ..preprocessing.executor import DataPreparation, execute_graph_set
from ..preprocessing.graph import GraphSet
from ..telemetry import (
    CalibrationSample,
    DriftEvent,
    LatencyDrift,
    TelemetrySession,
    drift_factors_at,
)
from .elastic import MembershipChange, clone_planner, reshard_cost_us, surviving_mapping
from .faults import (
    CPU_POOL_CRASH,
    FUSED_OOM,
    GPU_LOST,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
)
from .journal import RunJournal
from .ladder import (
    CO_RUN,
    CPU_FALLBACK,
    SEQUENTIAL,
    SHARD_RETRY,
    TRAILING,
    LadderTransition,
)
from .report import IterationRecord, ResilienceReport
from .retry import RetryPolicy
from .shadow import (
    PROBATION_ABORTED,
    PROBATION_COMMITTED,
    PROBATION_ROLLED_BACK,
    ShadowObservation,
    ShadowPlanner,
)
from .watchdog import LatencyWatchdog

if TYPE_CHECKING:  # pragma: no cover
    from .checkpoint import CheckpointManager, Snapshot

__all__ = [
    "DataPathVerifier",
    "DataVerification",
    "DataVerificationError",
    "KernelRecovery",
    "FaultTolerantRuntime",
    "SimulatedKill",
    "POOL_RESTART_BASE_US",
]

#: Host-side worker-pool restart latency per unit of crash magnitude.
POOL_RESTART_BASE_US = 1_000.0

#: Fraction of a stage's leftover resources offered to re-sharded pieces;
#: recovering at reduced footprint is what sidesteps OOM-like faults.
_RESHARD_LEFTOVER_FRACTION = 0.5


class SimulatedKill(RuntimeError):
    """Raised by ``run(kill_after=...)`` to emulate a hard process death.

    The journal and any checkpoints written so far stay on disk exactly as
    a real ``SIGKILL`` would leave them; tests resume from them.
    """

    def __init__(self, iteration: int) -> None:
        self.iteration = iteration
        super().__init__(f"simulated kill after iteration {iteration}")


class DataVerificationError(RuntimeError):
    """Raised in strict mode when the compiled engine diverges from naive."""


@dataclass(frozen=True)
class DataVerification:
    """Outcome of one engine-vs-naive functional cross-check."""

    iteration: int
    plan_epoch: int
    columns_checked: int
    mismatched: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatched

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "plan_epoch": self.plan_epoch,
            "columns_checked": self.columns_checked,
            "mismatched": list(self.mismatched),
            "ok": self.ok,
        }


class DataPathVerifier:
    """Periodic engine-backed functional verification of the active plan.

    The runtime itself is a latency simulator; this hook grounds it in the
    *functional* data path. Every ``every``-th iteration the active plan's
    per-GPU kernel schedules are lowered through the compiled engine
    (:func:`repro.core.codegen.compile_plan`), executed against a fresh
    synthetic batch, and every produced column is compared bit-for-bit
    against the naive golden reference ``execute_graph_set`` on the same
    batch. Compiled programs are cached per plan epoch, so replans and
    membership changes re-lower automatically.

    With ``workers >= 1`` the check instead drives the multi-core engine
    (:class:`repro.preprocessing.parallel.ParallelEngine`) over the plan's
    whole graph set, cross-checking the sharded shared-memory path (and
    the selected kernel ``backend``) against naive. Call :meth:`close`
    (the runtime does) to release the engine's worker pool and segments.

    Strictly opt-in and read-only with respect to the simulation: iteration
    numbers are untouched whether or not a verifier is attached.
    """

    def __init__(
        self,
        schema: CriteoSchema,
        every: int = 10,
        seed: int = 2024,
        strict: bool = True,
        workers: int = 0,
        backend: str | None = None,
        engine_metrics=None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.schema = schema
        self.every = every
        self.seed = seed
        self.strict = strict
        self.workers = workers
        self.backend = backend
        self.engine_metrics = engine_metrics
        self.history: list[DataVerification] = []
        self._programs = None
        self._programs_epoch = -1
        self._engine = None
        self._engine_epoch = -1

    def should_run(self, iteration: int) -> bool:
        return iteration % self.every == 0

    def close(self) -> None:
        """Release the parallel engine's workers and shm segments."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._engine_epoch = -1

    def _parallel_engine(self, plan: RapPlan, plan_epoch: int):
        from ..preprocessing.parallel import ParallelEngine

        if self._engine is None or self._engine_epoch != plan_epoch:
            self.close()
            self._engine = ParallelEngine(
                plan.graph_set,
                workers=self.workers,
                backend=self.backend,
                metrics=self.engine_metrics,
            )
            self._engine_epoch = plan_epoch
        return self._engine

    def verify(
        self,
        plan: RapPlan,
        plan_epoch: int,
        iteration: int,
        batch: Batch | None = None,
    ) -> DataVerification:
        """Cross-check the plan on ``batch`` (default: a synthesized one).

        Passing a real ingested batch grounds the check in the actual
        stream instead of the generator; its row count must match the
        plan's, since the compiled programs are lowered for a fixed shape.
        """
        rows = plan.graph_set.rows
        if self.workers >= 1:
            engine = self._parallel_engine(plan, plan_epoch)
        elif self._programs is None or self._programs_epoch != plan_epoch:
            self._programs = compile_plan(plan, rows=rows, backend=self.backend)
            self._programs_epoch = plan_epoch
        if batch is None:
            batch = SyntheticCriteoDataset(self.schema, seed=self.seed).batch(
                rows, index=iteration
            )
        elif batch.size != rows:
            raise ValueError(
                f"ingested batch has {batch.size} rows but the plan was lowered "
                f"for {rows}; align --batch with the source's batch size"
            )
        golden = execute_graph_set(plan.graph_set, batch)
        checked = 0
        mismatched: list[str] = []
        if self.workers >= 1:
            out = engine.execute(batch)
            for graph in plan.graph_set:
                for op in graph.ops:
                    checked += 1
                    if not self._column_matches(op.output, out, golden):
                        mismatched.append(op.output)
        else:
            for program in self._programs.values():
                out = program.execute(batch)
                for step in program.steps:
                    for op in step.members:
                        checked += 1
                        if not self._column_matches(op.output, out, golden):
                            mismatched.append(op.output)
        result = DataVerification(
            iteration=iteration,
            plan_epoch=plan_epoch,
            columns_checked=checked,
            mismatched=tuple(sorted(mismatched)),
        )
        self.history.append(result)
        if self.strict and not result.ok:
            raise DataVerificationError(
                f"compiled engine diverged from execute_graph_set at iteration "
                f"{iteration} (plan epoch {plan_epoch}) on columns: "
                f"{', '.join(result.mismatched)}"
            )
        return result

    @staticmethod
    def _column_matches(name: str, out, golden) -> bool:
        if name in golden.dense:
            if name not in out.dense:
                return False
            a, b = out.dense[name].values, golden.dense[name].values
            return a.dtype == b.dtype and np.array_equal(a, b)
        if name in golden.sparse:
            if name not in out.sparse:
                return False
            a, b = out.sparse[name], golden.sparse[name]
            return (
                a.hash_size == b.hash_size
                and np.array_equal(a.offsets, b.offsets)
                and a.values.dtype == b.values.dtype
                and np.array_equal(a.values, b.values)
            )
        return False


@dataclass
class KernelRecovery:
    """The full recovery story of one injected kernel fault."""

    event: FaultEvent
    final_rung: str = CO_RUN
    retries: int = 0
    backoff_us: float = 0.0
    wasted_us: float = 0.0
    transitions: list[LadderTransition] = field(default_factory=list)
    cpu_kernels: list[KernelDesc] = field(default_factory=list)

    @property
    def recovery_us(self) -> float:
        return self.backoff_us + self.wasted_us


class FaultTolerantRuntime:
    """Executes plans under injected faults, degrading instead of crashing."""

    def __init__(
        self,
        planner: RapPlanner,
        graph_set: GraphSet,
        plan: RapPlan | None = None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        watchdog: LatencyWatchdog | None = None,
        pool: CpuWorkerPool | None = None,
        sequential_fault_threshold: int = 3,
        planner_factory: Callable[[RapPlanner, TrainingWorkload], RapPlanner] | None = None,
        journal: RunJournal | None = None,
        telemetry: TelemetrySession | None = None,
        drift_schedule: Sequence[LatencyDrift] = (),
        verifier: DataPathVerifier | None = None,
        feeder=None,
        shadow: ShadowPlanner | None = None,
        tenant: str | None = None,
    ) -> None:
        if sequential_fault_threshold < 1:
            raise ValueError("sequential_fault_threshold must be >= 1")
        # Multi-tenant service runs tag every journal record with the
        # owning tenant; ``None`` (every standalone run) leaves the
        # journal's bytes exactly as before.
        self.tenant = tenant
        self.planner = planner
        self.graph_set = graph_set
        self.plan = plan if plan is not None else planner.plan(graph_set)
        self.injector = injector or FaultInjector()
        self.retry_policy = retry_policy or RetryPolicy()
        self.watchdog = watchdog or LatencyWatchdog()
        self.pool = pool or CpuWorkerPool()
        self.sequential_fault_threshold = sequential_fault_threshold
        # Builds the survivor-fleet planner after a membership change; the
        # default clone shares the plan cache and MILP solver.
        self.planner_factory = planner_factory or clone_planner
        self.journal = journal
        # Telemetry is strictly opt-in: with ``telemetry=None`` no sample is
        # recorded, no span is emitted, and execution is bit-identical to a
        # build without the subsystem. ``drift_schedule`` injects per-op-type
        # latency drift -- the environment change the calibration loop
        # exists to absorb.
        self.telemetry = telemetry
        # Functional cross-check of the simulated plan against real data;
        # opt-in and read-only with respect to the iteration numbers.
        self.verifier = verifier
        # Optional streaming ingest: a multi-use PipelinedFeeder (or any
        # re-iterable of batches). One batch is pulled per iteration;
        # exhaustion wraps around into a fresh epoch, which leans directly
        # on the feeder's fixed multi-use lifecycle. The feeder is runtime
        # machinery, not run state: it is deliberately absent from
        # state_dict(), and resumed runs just reattach one.
        self.feeder = feeder
        self._feed_iter = None
        self.batches_ingested = 0
        self.ingest_epochs = 0
        # Shadow planning (DESIGN.md §15): with a ShadowPlanner attached,
        # drift/watchdog triggers route into the guarded promotion loop
        # instead of replanning blind; with ``shadow=None`` every code
        # path below is untouched and execution is bit-identical to a
        # build without the subsystem.
        self.shadow = shadow
        self._checkpoints: "CheckpointManager | None" = None
        self.drift_schedule = list(drift_schedule)
        self._calibrated = False
        # Drift of the live distribution relative to the *active* plan's
        # graph set, and cumulatively relative to the base graph set.
        self._scale = 1.0
        self._total_scale = 1.0
        # Kernels persistently evicted to the host pool.
        self._cpu_kernels: list[KernelDesc] = []
        # Elastic-membership state: monotone plan generation counter, the
        # not-yet-charged reshard cost of the latest fleet shrink, the
        # original-fleet identity of each current GPU index, the shrink
        # history, and the terminal everything-on-CPU regime flag.
        self.plan_epoch = 0
        self._pending_recovery_us = 0.0
        self._original_ids = list(range(self.workload.num_gpus))
        self._membership_log: list[MembershipChange] = []
        self._cpu_only = False
        self._cpu_train_us: float | None = None
        # Retry attempts charged against the current plan epoch (only
        # consulted when the policy sets a per-epoch budget).
        self._epoch_retry_used = 0
        # Service preemption: while True every placed kernel lives on the
        # host pool and watchdog/drift triggers may not replan (a replan
        # would hand back GPU capacity the service revoked). Cleared by
        # adopt_plan() when the service restores the tenant.
        self._preempted = False

    @property
    def workload(self):
        return self.planner.workload

    @property
    def cpu_evicted(self) -> list[KernelDesc]:
        return list(self._cpu_kernels)

    @property
    def cpu_only(self) -> bool:
        return self._cpu_only

    @property
    def membership_changes(self) -> list[MembershipChange]:
        return list(self._membership_log)

    def _journal(self, record_type: str, **fields) -> None:
        if self.journal is not None:
            if self.tenant is not None:
                fields.setdefault("tenant", self.tenant)
            self.journal.append(record_type, **fields)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(
        self,
        num_iterations: int,
        start_iteration: int = 0,
        *,
        report: ResilienceReport | None = None,
        checkpoints: "CheckpointManager | None" = None,
        checkpoint_every: int = 0,
        kill_after: int | None = None,
    ) -> ResilienceReport:
        """Execute ``num_iterations`` iterations, accumulating the report.

        ``report`` continues an existing (restored) report in place.
        With ``checkpoints`` and ``checkpoint_every > 0``, a manifest-sealed
        checkpoint lands after every N-th completed iteration (counted from
        iteration 0, so resumed runs keep the original cadence).
        ``kill_after=k`` raises :class:`SimulatedKill` once iteration
        ``k-1`` completes -- after journaling, before checkpointing -- to
        emulate a crash for resume tests.
        """
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        if report is None:
            report = ResilienceReport()
        run_fields: dict = {
            "start_iteration": start_iteration,
            "num_iterations": num_iterations,
        }
        schedule = getattr(self.injector, "schedule", None)
        if isinstance(schedule, (list, tuple)) and schedule:
            # The correlated pre-drawn events are part of the run's identity:
            # journaling them up front makes the journal alone sufficient to
            # replay the run (rate-drawn faults replay from the seed echo in
            # the checkpoint). Only emitted when a schedule is live, so
            # legacy journals keep their exact bytes. Duck-typed injectors
            # (tests script faults with a dict keyed by iteration) are left
            # out of the journal -- their schedule is not a FaultEvent list.
            run_fields["fault_schedule"] = [e.to_dict() for e in schedule]
        self._journal("run", **run_fields)
        self._checkpoints = checkpoints
        if self.shadow is not None and checkpoints is not None and self.shadow.in_probation:
            # Pins are in-memory; a process resumed mid-probation must
            # re-assert the anchor's pin before the first cadence
            # checkpoint can prune it.
            anchor = self.shadow.anchor
            if anchor and anchor.get("directory"):
                checkpoints.pin(anchor["directory"])
        for i in range(start_iteration, start_iteration + num_iterations):
            batch = self._next_batch() if self.feeder is not None else None
            before_membership = len(self._membership_log)
            record, faults, transitions = self.run_iteration(i)
            if self.verifier is not None and self.verifier.should_run(i):
                try:
                    self.verifier.verify(self.plan, self.plan_epoch, i, batch=batch)
                finally:
                    # verify() appends to history before a strict-mode raise,
                    # so the journal records the divergence either way.
                    if self.verifier.history:
                        self._journal(
                            "data_verify", **self.verifier.history[-1].to_dict()
                        )
            if self.shadow is not None and not self._cpu_only:
                record = self._shadow_step(i, record, report)
            report.iterations.append(record)
            report.faults.extend(faults)
            report.transitions.extend(transitions)
            report.retries += record.retries
            report.backoff_total_us += record.backoff_us
            report.replans += int(record.replanned)
            report.membership_changes.extend(self._membership_log[before_membership:])
            for t in transitions:
                self._journal("transition", **t.to_dict())
            if kill_after is not None and i + 1 >= kill_after:
                self._journal("kill", iteration=i)
                raise SimulatedKill(i)
            if checkpoints is not None and checkpoint_every > 0 and (i + 1) % checkpoint_every == 0:
                self.save_checkpoint(checkpoints, report, i + 1)
        if self.telemetry is not None:
            self.telemetry.flush(step=start_iteration + num_iterations)
            if self._calibrated:
                # The settled before/after view: by run end the residual
                # windows are dominated by the live regime, unlike the
                # mid-run snapshot in each "recalibrate" record.
                self._journal(
                    "calibration_summary",
                    mape_raw=round(self.telemetry.predictor_mape, 6),
                    mape_calibrated=round(self.telemetry.calibrated_mape, 6),
                    drift_events=len(self.telemetry.drift_events),
                )
        return report

    def _next_batch(self) -> Batch:
        """Pull one batch from the attached feeder, wrapping at epoch end.

        Exhaustion re-iterates the feeder (a fresh lease with a fresh
        pool); a feeder that yields nothing at all on a fresh iteration is
        a configuration error, not an infinite loop.
        """
        if self._feed_iter is None:
            self._feed_iter = iter(self.feeder)
            self.ingest_epochs += 1
        try:
            batch = next(self._feed_iter)
        except StopIteration:
            self._feed_iter = iter(self.feeder)
            self.ingest_epochs += 1
            try:
                batch = next(self._feed_iter)
            except StopIteration:
                raise RuntimeError(
                    "ingest feeder produced no batches on a fresh iteration; "
                    "the source is empty"
                ) from None
        self.batches_ingested += 1
        return batch

    def run_iteration(
        self, iteration: int
    ) -> tuple[IterationRecord, list[FaultEvent], list[LadderTransition]]:
        """Execute one iteration under whatever faults the injector draws."""
        epoch = self.plan_epoch
        if self._cpu_only:
            # Terminal regime: the fleet is gone and everything paces
            # through the host pool. The injector is skipped -- its GPU
            # fault classes have no target -- which is safe for resume
            # determinism because per-iteration streams are independent.
            return self._run_cpu_only(iteration, epoch), [], []

        faults = self.injector.faults_for_iteration(iteration, self.plan)
        lost = [e for e in faults if e.kind == GPU_LOST]
        rest = [e for e in faults if e.kind != GPU_LOST]

        if lost:
            membership_transitions: list[LadderTransition] = []
            for event in lost:
                membership_transitions.extend(self._lose_gpu(iteration, event))
            if self._cpu_only:
                record = self._run_cpu_only(iteration, epoch, num_faults=len(faults))
                return record, faults, membership_transitions
            record, _, transitions = self._run_degraded(
                iteration,
                rest,
                total_faults=len(faults),
                epoch=epoch,
                force_replanned=True,
            )
            return record, faults, membership_transitions + transitions

        if (
            not faults
            and self._scale == 1.0
            and not self._cpu_kernels
            and self._pending_recovery_us == 0.0
            and not drift_factors_at(self.drift_schedule, iteration)
        ):
            # Transparent path: nothing failed, nothing drifted, nothing
            # evicted -- defer to the planner's own evaluation so the
            # wrapped numbers are bit-identical to direct execution.
            report = self.planner.evaluate(self.plan)
            record = IterationRecord(
                iteration=iteration,
                iteration_us=report.iteration_us,
                exposed_us=report.exposed_preprocessing_us,
                plan_epoch=epoch,
            )
            drift_event: DriftEvent | None = None
            if self.telemetry is not None:
                # Recording is read-only: each placed kernel contributes its
                # (predicted, observed) pair, where the observation is the
                # plan's own modeled duration -- no number changes.
                self._record_plan_samples(iteration)
                self.telemetry.record_iteration(
                    iteration,
                    report.iteration_us,
                    report.exposed_preprocessing_us,
                    per_gpu_results=report.cluster_result.per_gpu,
                    plan_epoch=epoch,
                )
                drift_event = self.telemetry.check_drift(iteration)
            decision = self.watchdog.observe(
                self.plan.predicted_exposed_us, report.exposed_preprocessing_us, 0
            )
            if self.shadow is not None:
                # Guarded mode: both replan triggers feed the shadow loop,
                # which evaluates a candidate at this iteration's shadow
                # step instead of swapping plans blind.
                if drift_event is not None:
                    self.shadow.note_trigger(iteration, "drift")
                elif decision.replan:
                    self.shadow.note_trigger(iteration, "watchdog")
            elif drift_event is not None:
                self._recalibrate_and_replan(iteration, drift_event)
                record = IterationRecord(**{**record.to_dict(), "replanned": True})
            elif decision.replan:
                self._replan(iteration)
                record = IterationRecord(**{**record.to_dict(), "replanned": True})
            return record, [], []

        return self._run_degraded(iteration, faults, epoch=epoch)

    # ------------------------------------------------------------------
    # Degraded execution
    # ------------------------------------------------------------------

    def _run_degraded(
        self,
        iteration: int,
        faults: list[FaultEvent],
        *,
        total_faults: int | None = None,
        epoch: int | None = None,
        force_replanned: bool = False,
    ) -> tuple[IterationRecord, list[FaultEvent], list[LadderTransition]]:
        if epoch is None:
            epoch = self.plan_epoch
        # A membership change earlier in this iteration leaves its priced
        # redistribution here; under the bulk-synchronous barrier it extends
        # every survivor equally, so it adds to the iteration as a constant.
        reshard_us = self._pending_recovery_us
        self._pending_recovery_us = 0.0
        num_gpus = self.workload.num_gpus
        transitions: list[LadderTransition] = []
        pool_restart_us = 0.0
        pool_fraction = 1.0

        # Environment faults first: they shape the iteration every kernel
        # fault then lands in.
        for event in faults:
            if event.kind == PLAN_DRIFT:
                self._scale *= event.magnitude
                self._total_scale *= event.magnitude
            elif event.kind == CPU_POOL_CRASH:
                pool_restart_us += event.magnitude * POOL_RESTART_BASE_US
                pool_fraction = min(pool_fraction, 0.5)

        assignments, trailing = scale_plan_kernels(self.plan, self._scale)
        # Injected per-op-type drift and calibration sampling happen here,
        # after uniform drift scaling and before fault recovery mutates the
        # placement: the sample stream reflects what the kernels *would*
        # run at, undistorted by this iteration's fault handling.
        drift_factors = drift_factors_at(self.drift_schedule, iteration)
        if drift_factors or self.telemetry is not None:
            self._observe_kernels(iteration, assignments, trailing, drift_factors)
        recovery = [0.0] * num_gpus
        retries = 0
        backoff_us = 0.0
        faults_per_gpu = [0] * num_gpus

        for event in faults:
            if event.kind not in (KERNEL_FAILURE, LATENCY_OVERRUN, FUSED_OOM):
                continue
            if not 0 <= event.gpu < num_gpus:
                continue
            faults_per_gpu[event.gpu] += 1
            rec = self._recover_kernel(event, assignments[event.gpu], trailing[event.gpu])
            retries += rec.retries
            backoff_us += rec.backoff_us
            recovery[event.gpu] += rec.recovery_us
            transitions.extend(rec.transitions)
            self._cpu_kernels.extend(rec.cpu_kernels)

        # Sequential fallback: a GPU absorbing too many kernel faults in a
        # single iteration abandons co-running entirely for that iteration
        # -- every remaining placed kernel runs exposed, where it cannot
        # perturb training.
        for gpu in range(num_gpus):
            if faults_per_gpu[gpu] < self.sequential_fault_threshold:
                continue
            demoted = [k for stage in sorted(assignments[gpu]) for k in assignments[gpu][stage]]
            if not demoted:
                continue
            assignments[gpu] = {}
            trailing[gpu] = demoted + trailing[gpu]
            transitions.append(
                LadderTransition(
                    iteration=iteration,
                    gpu=gpu,
                    kernel="*",
                    from_rung=CO_RUN,
                    to_rung=SEQUENTIAL,
                    reason=f"{faults_per_gpu[gpu]} faults in one iteration; "
                    "co-running suspended for safety",
                )
            )

        result = self.workload.simulate(
            assignments_per_gpu=assignments,
            trailing_per_gpu=trailing,
            input_comm_bytes=self.plan.input_comm_bytes,
            input_comm_transfers=max(1, self.plan.input_comm_transfers),
            recovery_us_per_gpu=recovery,
        )
        prep = max(
            self.plan.data_prep_per_gpu,
            key=lambda p: p.total_us,
            default=DataPreparation(0.0, 0.0, 0.0),
        )
        timeline = self.planner.interleaver.steady_state(result.iteration_time_us, prep)

        pool = degraded_pool(self.pool, pool_fraction) if pool_fraction < 1.0 else self.pool
        cpu_us = cpu_fallback_production_us(pool, self._cpu_kernels, num_gpus) + pool_restart_us
        exposed_us = result.max_exposed_preprocessing_us + result.max_recovery_us

        # The watchdog judges the plan against what the plan could predict:
        # kernel-level exposure, not the one-shot reshard constant (the
        # membership change already replanned and reset the window).
        drift_event: DriftEvent | None = (
            self.telemetry.check_drift(iteration) if self.telemetry is not None else None
        )
        decision = self.watchdog.observe(
            self.plan.predicted_exposed_us, exposed_us, len(faults)
        )
        replanned = False
        if self._preempted:
            # An evicted tenant holds no carve; neither the watchdog nor
            # drift may replan it back onto the GPUs (the service restores
            # capacity explicitly through adopt_plan).
            pass
        elif self.shadow is not None:
            # Guarded mode: route triggers into the shadow loop (see the
            # transparent path above for rationale).
            if drift_event is not None:
                self.shadow.note_trigger(iteration, "drift")
            elif decision.replan:
                self.shadow.note_trigger(iteration, "watchdog")
        elif drift_event is not None:
            # Sustained model error beats the exposure watchdog: a plain
            # replan would reuse the stale predictions, so recalibrate
            # first and replan once with the corrected model.
            self._recalibrate_and_replan(iteration, drift_event)
            replanned = True
        elif decision.replan:
            self._replan(iteration)
            replanned = True

        iteration_us = max(timeline.iteration_us, cpu_us) + reshard_us
        exposed_us += reshard_us

        if self.telemetry is not None:
            self.telemetry.record_iteration(
                iteration,
                iteration_us,
                exposed_us,
                per_gpu_results=result.per_gpu,
                plan_epoch=epoch,
                num_faults=total_faults if total_faults is not None else len(faults),
            )

        record = IterationRecord(
            iteration=iteration,
            iteration_us=iteration_us,
            exposed_us=exposed_us,
            num_faults=total_faults if total_faults is not None else len(faults),
            retries=retries,
            backoff_us=backoff_us,
            recovery_us=sum(recovery) + reshard_us,
            cpu_fallback_us=cpu_us,
            replanned=replanned or force_replanned,
            plan_epoch=epoch,
        )
        return record, faults, transitions

    def _replan(self, iteration: int = -1, reason: str = "watchdog") -> None:
        """Regenerate the plan for the live (possibly drifted) distribution.

        Goes through the planner's fast path: an unchanged instance is a
        plan-cache hit, and uniform drift (which rescales latencies but not
        graph structure) re-plans incrementally from the active plan's
        mapping instead of re-running the full search.
        """
        drifted = drift_graph_set(self.graph_set, self._total_scale)
        self.plan = self.planner.replan(drifted, previous=self.plan)
        self._scale = 1.0
        self._cpu_kernels.clear()
        self.watchdog.reset()
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        if self.telemetry is not None:
            self.telemetry.note_replan(iteration, reason, self.plan_epoch)
        self._journal(
            "replan",
            iteration=iteration,
            reason=reason,
            plan_epoch=self.plan_epoch,
            num_gpus=self.workload.num_gpus,
        )

    # ------------------------------------------------------------------
    # Service control plane (multi-tenant carve changes)
    # ------------------------------------------------------------------

    def adopt_plan(
        self,
        planner: RapPlanner,
        plan: RapPlan,
        iteration: int = -1,
        reason: str = "carve",
    ) -> None:
        """Swap in an externally planned (planner, plan) pair.

        The preprocessing service re-prices a tenant whenever its capacity
        carve changes (another tenant arrived, finished, or was preempted)
        and hands the result here. Semantically a replan: the epoch
        advances, drift scale and evicted kernels reset, and the watchdog
        window restarts against the new plan's predictions. Also the
        restore path out of :meth:`evict_to_cpu`.
        """
        self.planner = planner
        self.plan = plan
        self._scale = 1.0
        self._cpu_kernels.clear()
        self._preempted = False
        self.watchdog.reset()
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        if self.telemetry is not None:
            self.telemetry.note_replan(iteration, reason, self.plan_epoch)
        self._journal(
            "replan",
            iteration=iteration,
            reason=reason,
            plan_epoch=self.plan_epoch,
            num_gpus=self.workload.num_gpus,
        )

    def evict_to_cpu(self, iteration: int = -1, reason: str = "preempted") -> None:
        """Demote every placed kernel to the host pool (service preemption).

        The tenant keeps making progress -- preprocessing paces through
        :func:`cpu_fallback_production_us` while training stays on its
        GPUs -- but holds zero carved GPU capacity until the service
        restores it through :meth:`adopt_plan`. Watchdog and drift replans
        are suppressed for the duration; they would otherwise claw back
        the revoked capacity.
        """
        import dataclasses

        demoted: list[KernelDesc] = []
        for per_gpu in self.plan.assignments_per_gpu:
            for stage_idx in sorted(per_gpu):
                demoted.extend(per_gpu[stage_idx])
        for trailing in self.plan.trailing_per_gpu:
            demoted.extend(trailing)
        self.plan = dataclasses.replace(
            self.plan,
            assignments_per_gpu=[{} for _ in range(self.workload.num_gpus)],
            trailing_per_gpu=[[] for _ in range(self.workload.num_gpus)],
        )
        self._cpu_kernels.extend(demoted)
        self._scale = 1.0
        self._preempted = True
        self.watchdog.reset()
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        if self.telemetry is not None:
            self.telemetry.note_replan(iteration, reason, self.plan_epoch)
        self._journal(
            "evict",
            iteration=iteration,
            reason=reason,
            plan_epoch=self.plan_epoch,
            kernels=len(demoted),
        )

    # ------------------------------------------------------------------
    # Online calibration
    # ------------------------------------------------------------------

    def _record_sample(
        self, iteration: int, kernel: KernelDesc, stage_idx: int, observed_us: float
    ) -> None:
        # The base (uncorrected) prediction feeds the residual model -- it
        # must stay a stable reference or the correction chases its own
        # output. The active prediction (with any injected correction) is
        # what the drift detector judges.
        from ..telemetry import CalibratedPredictor

        predictor = self.planner.cost_model.predictor
        active = self.planner.cost_model.kernel_latency(kernel)
        base = (
            predictor.base_prediction(kernel)
            if isinstance(predictor, CalibratedPredictor)
            else active
        )
        self.telemetry.record_kernel_sample(
            CalibrationSample(
                op_type=kernel.tag,
                predicted_us=base,
                observed_us=observed_us,
                iteration=iteration,
                stage=stage_idx,
                features=tuple(kernel_features(kernel)),
                active_predicted_us=active if active != base else None,
            )
        )

    def _record_plan_samples(self, iteration: int) -> None:
        """Sample every placed kernel on the transparent path (observed ==
        modeled duration; read-only, so the path stays bit-identical)."""
        for per_gpu in self.plan.assignments_per_gpu:
            for stage_idx in sorted(per_gpu):
                for kernel in per_gpu[stage_idx]:
                    self._record_sample(iteration, kernel, stage_idx, kernel.duration_us)
        for trailing in self.plan.trailing_per_gpu:
            for kernel in trailing:
                self._record_sample(iteration, kernel, -1, kernel.duration_us)

    def _observe_kernels(
        self,
        iteration: int,
        assignments: list[dict[int, list[KernelDesc]]],
        trailing: list[list[KernelDesc]],
        drift_factors: dict[str, float],
    ) -> None:
        """Apply injected per-op-type drift in place and record samples.

        The prediction is made against the *planned* kernel (what the cost
        model knew); the observation is the drifted duration the simulator
        will actually execute. Fused kernels keep their member op tag, so
        per-tag factors and corrections compose cleanly.
        """

        def observe(kernel: KernelDesc, stage_idx: int) -> KernelDesc:
            factor = drift_factors.get(kernel.tag, 1.0)
            executed = (
                kernel
                if factor == 1.0
                else kernel.with_duration(kernel.duration_us * factor)
            )
            if self.telemetry is not None:
                self._record_sample(iteration, kernel, stage_idx, executed.duration_us)
            return executed

        for gpu in range(len(assignments)):
            for stage_idx in sorted(assignments[gpu]):
                kernels = assignments[gpu][stage_idx]
                for i, kernel in enumerate(kernels):
                    kernels[i] = observe(kernel, stage_idx)
            trailing[gpu][:] = [observe(k, -1) for k in trailing[gpu]]

    def _recalibrate_and_replan(self, iteration: int, event: DriftEvent) -> None:
        """Answer a drift detection: inject the calibrated predictor, replan.

        The planner's mapper, scheduler, and watchdog all read latencies
        through the shared cost model, so swapping its predictor re-prices
        the entire search space in one move. The calibrated predictor also
        changes the planner's cache fingerprint, so the replan cannot hit
        the stale pre-drift cache entry.
        """
        calibrated = self.telemetry.calibrated_predictor(
            self.planner.cost_model.predictor
        )
        self.planner.set_predictor(calibrated)
        self._calibrated = True
        self.telemetry.publish_corrections()
        self._journal(
            "recalibrate",
            iteration=iteration,
            op_type=event.worst_op_type,
            mean_residual=round(event.mean_residual, 6),
            worst_residual=round(event.worst_residual, 6),
            mape_before=round(self.telemetry.predictor_mape, 6),
            mape_after=round(self.telemetry.calibrated_mape, 6),
            corrections={
                op: round(c, 6)
                for op, c in self.telemetry.residual.corrections().items()
            },
        )
        # Fresh detection window against the corrected model: if the
        # correction only partially absorbed the drift (early windows mix
        # pre- and post-drift samples), the detector re-fires after another
        # sustained breach and calibration converges iteratively.
        self.telemetry.drift_detector.reset()
        self._replan(iteration, reason="drift")

    # ------------------------------------------------------------------
    # Shadow planning: guarded promotion, probation, automatic rollback
    # ------------------------------------------------------------------

    def _shadow_step(
        self, iteration: int, record: IterationRecord, report: ResilienceReport
    ) -> IterationRecord:
        """One tick of the shadow control loop, after the live iteration.

        Feeds the iteration's conditions and outcome into the replay
        window, drives the probation monitor (rollback / commit), and --
        when the pacing asks for it -- searches and scores a candidate,
        promoting transactionally if the guardrail clears. Returns the
        iteration record, re-marked ``replanned`` when a swap happened.
        """
        obs = ShadowObservation(
            iteration=iteration,
            plan_epoch=self.plan_epoch,
            scale=self._scale,
            drift_factors=drift_factors_at(self.drift_schedule, iteration),
            exposed_us=float(record.exposed_us),
            iteration_us=float(record.iteration_us),
        )
        action = self.shadow.observe(obs)
        if action == PROBATION_ROLLED_BACK:
            self._shadow_rollback(iteration)
            return IterationRecord(**{**record.to_dict(), "replanned": True})
        if action == PROBATION_COMMITTED:
            self._shadow_commit(iteration)
            return record
        if self.shadow.wants_candidate(iteration, self.plan_epoch):
            if self._shadow_evaluate(iteration, report):
                return IterationRecord(**{**record.to_dict(), "replanned": True})
        return record

    def _shadow_evaluate(self, iteration: int, report: ResilienceReport) -> bool:
        """Search a candidate, score it over the window, maybe promote.

        The candidate is searched by a planner clone (shared plan/MILP
        caches) priced with the *current* calibrated costs -- continuous
        calibration, not waiting for the drift edge -- then both the live
        plan and the candidate are re-simulated under each recorded
        window entry's exact conditions (uniform scale + per-op drift).
        Returns True when a promotion happened.
        """
        entries = self.shadow.window_for_epoch(self.plan_epoch)
        reason = self.shadow.pending_trigger or "cadence"
        live = self._live_graph_set()
        shadow_planner = clone_planner(self.planner, self.workload)
        if self.telemetry is not None:
            shadow_planner.set_predictor(
                self.telemetry.calibrated_predictor(self.planner.cost_model.predictor)
            )
        candidate = shadow_planner.replan(live, previous=self.plan)
        base_exposed: list[float] = []
        cand_exposed: list[float] = []
        cand_iter: list[float] = []
        for entry in entries:
            base = self.planner.evaluate_scaled(
                self.plan, scale=entry.scale, drift_factors=entry.drift_factors
            )
            # The candidate was searched at today's total drift; an older
            # entry's conditions reach it as the *relative* scale between
            # that entry's distribution and the current one.
            relative = entry.scale / self._scale
            cand = shadow_planner.evaluate_scaled(
                candidate, scale=relative, drift_factors=entry.drift_factors
            )
            base_exposed.append(float(base.exposed_preprocessing_us))
            cand_exposed.append(float(cand.exposed_preprocessing_us))
            cand_iter.append(float(cand.iteration_us))
        baseline_us = sum(base_exposed) / len(base_exposed)
        candidate_us = sum(cand_exposed) / len(cand_exposed)
        verdict = self.shadow.judge(iteration, baseline_us, candidate_us, reason)
        self._journal("shadow_eval", **verdict.to_dict())
        if self.telemetry is not None:
            self.telemetry.note_shadow_candidate(verdict.predicted_win, verdict.promote)
        if not verdict.promote:
            return False

        # -- transactional promotion -----------------------------------
        # 1. Seal the rollback anchor (pre-swap state) and pin it so no
        #    cadence checkpoint can prune it while probation is open. The
        #    full anchor payload also rides in shadow state, so rollback
        #    works even without a checkpoint manager attached.
        plan_text = plan_to_json(self.plan)
        anchor = {
            "iteration": iteration,
            "plan_epoch": self.plan_epoch,
            "plan": plan_text,
            "scale": self._scale,
            "total_scale": self._total_scale,
            "cpu_kernels": [kernel_to_dict(k) for k in self._cpu_kernels],
            "directory": None,
        }
        if self._checkpoints is not None:
            path = self._checkpoints.save(
                iteration + 1, self.state_dict(), plan_text, report.to_dict(),
                tag="anchor",
            )
            self._checkpoints.pin(path)
            anchor["directory"] = path.name
        from_epoch = self.plan_epoch
        baseline_iter_us = sum(e.iteration_us for e in entries) / len(entries)
        predicted_exposed_us = candidate_us
        predicted_iter_us = sum(cand_iter) / len(cand_iter)
        # 2. Journal the promotion *before* the swap: a crash between the
        #    two leaves an open promotion the resumed run re-journals
        #    deterministically.
        self._journal(
            "promotion",
            iteration=iteration,
            reason=verdict.reason,
            plan_epoch=from_epoch + 1,
            from_epoch=from_epoch,
            predicted_win=round(verdict.predicted_win, 6),
            required_win=round(verdict.required_win, 6),
            baseline_exposed_us=round(baseline_us, 3),
            candidate_exposed_us=round(candidate_us, 3),
            anchor=anchor["directory"],
        )
        # 3. Swap, mirroring _replan's bookkeeping plus the calibrated
        #    predictor hand-off of _recalibrate_and_replan.
        self.plan = candidate
        self._scale = 1.0
        self._cpu_kernels.clear()
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        if self.telemetry is not None:
            self.planner.set_predictor(shadow_planner.cost_model.predictor)
            self._calibrated = True
            self.telemetry.publish_corrections()
            self.telemetry.drift_detector.reset()
            self.telemetry.note_replan(iteration, "promotion", self.plan_epoch)
        # 4. Enter probation with the watchdog suppressed: the probation
        #    monitor owns the only rollback trigger until it settles.
        self.watchdog.reset()
        self.watchdog.suppress()
        self.shadow.begin_probation(
            iteration,
            verdict,
            predicted_exposed_us=predicted_exposed_us,
            predicted_iteration_us=predicted_iter_us,
            baseline_iteration_us=baseline_iter_us,
            from_epoch=from_epoch,
            to_epoch=self.plan_epoch,
            anchor=anchor,
        )
        return True

    def _shadow_rollback(self, iteration: int) -> None:
        """Probation breached: restore the anchor state transactionally."""
        summary = self.shadow.finish_probation(PROBATION_ROLLED_BACK, iteration)
        anchor = summary["anchor"]
        plan_text = anchor["plan"]
        if anchor.get("directory") and self._checkpoints is not None:
            from .checkpoint import CheckpointError

            try:
                snapshot = self._checkpoints.load(
                    self._checkpoints.directory / anchor["directory"]
                )
                plan_text = snapshot.plan_text
            except CheckpointError:
                pass  # fall back to the in-memory copy (identical bytes)
        self.plan = plan_from_json(plan_text, self.workload, self.graph_set)
        anchor_total = float(anchor.get("total_scale", 1.0)) or 1.0
        # Drift that arrived *during* probation composes onto the anchor's
        # relative scale, so the restored plan sees today's distribution.
        self._scale = float(anchor.get("scale", 1.0)) * (self._total_scale / anchor_total)
        self._cpu_kernels = [kernel_from_dict(k) for k in anchor.get("cpu_kernels", [])]
        # The epoch stays monotone -- a rollback is a new plan generation,
        # never a rewind -- which keeps journal validation simple.
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        self.watchdog.reset()
        self.watchdog.unsuppress()
        if self.telemetry is not None:
            self.telemetry.note_replan(iteration, "rollback", self.plan_epoch)
            self.telemetry.note_shadow_probation(
                PROBATION_ROLLED_BACK,
                summary.get("realized_win"),
                summary.get("predicted_win"),
            )
        self._journal_promotion_result(summary)
        self._unpin_anchor(anchor)

    def _shadow_commit(self, iteration: int) -> None:
        """Probation survived: the promotion becomes the plan of record."""
        summary = self.shadow.finish_probation(PROBATION_COMMITTED, iteration)
        self.watchdog.reset()
        self.watchdog.unsuppress()
        if self.telemetry is not None:
            self.telemetry.note_shadow_probation(
                PROBATION_COMMITTED,
                summary.get("realized_win"),
                summary.get("predicted_win"),
            )
        self._journal_promotion_result(summary)
        self._unpin_anchor(summary["anchor"])

    def _shadow_abort(self, iteration: int, reason: str) -> None:
        """Void an open probation without restoring the anchor.

        Used when a membership change invalidates the comparison: the
        anchor plan was searched for a fleet that no longer exists, so
        neither keeping probation open nor rolling back is meaningful.
        """
        summary = self.shadow.finish_probation(PROBATION_ABORTED, iteration)
        summary["abort_reason"] = reason
        self.watchdog.unsuppress()
        if self.telemetry is not None:
            self.telemetry.note_shadow_probation(
                PROBATION_ABORTED,
                summary.get("realized_win"),
                summary.get("predicted_win"),
            )
        self._journal_promotion_result(summary)
        self._unpin_anchor(summary["anchor"])

    def _journal_promotion_result(self, summary: dict) -> None:
        fields = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in summary.items()
            if key != "anchor"
        }
        fields["anchor"] = summary["anchor"].get("directory")
        fields["plan_epoch"] = self.plan_epoch
        self._journal("promotion_result", **fields)

    def _unpin_anchor(self, anchor: dict) -> None:
        if anchor.get("directory") and self._checkpoints is not None:
            self._checkpoints.unpin(anchor["directory"])

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def _live_graph_set(self) -> GraphSet:
        if self._total_scale == 1.0:
            return self.graph_set
        return drift_graph_set(self.graph_set, self._total_scale)

    def _lose_gpu(self, iteration: int, event: FaultEvent) -> list[LadderTransition]:
        """Shrink the fleet after a terminal device loss.

        For ``N > 1`` survivors: re-shard the dead GPU's embedding tables,
        clone the planner onto the survivor workload, and replan warm from
        the surviving slice of the old mapping. For the last GPU: evict
        every placed kernel to the host pool and enter the CPU-only regime.
        Either way the redistribution is priced into this iteration via
        ``_pending_recovery_us``.
        """
        num_gpus = self.workload.num_gpus
        gpu = event.gpu
        if not 0 <= gpu < num_gpus:
            return []  # stale event against an already-shrunk fleet
        if self.shadow is not None and self.shadow.in_probation:
            # A membership change voids the probation baseline: the anchor
            # plan was searched for a fleet that no longer exists.
            self._shadow_abort(iteration, "membership change")
        original = self._original_ids[gpu]
        spec = self.workload.spec

        if num_gpus == 1:
            # Last device: the whole pipeline falls off the fleet. All
            # embedding state moves to host memory and every placed kernel
            # is evicted to the worker pool.
            evicted: list[KernelDesc] = []
            for per_gpu in self.plan.assignments_per_gpu:
                for stage in sorted(per_gpu):
                    evicted.extend(per_gpu[stage])
            for trailing in self.plan.trailing_per_gpu:
                evicted.extend(trailing)
            self._cpu_kernels.extend(evicted)
            moved_bytes = sum(t.nbytes for t in self.workload.config.tables)
            moved_tables = tuple(t.name for t in self.workload.config.tables)
            reshard_us = reshard_cost_us(moved_bytes, spec)
            self._cpu_only = True
            self._cpu_train_us = None
            self._original_ids.pop(gpu)
            self.plan_epoch += 1
            self._epoch_retry_used = 0
            change = MembershipChange(
                iteration=iteration,
                lost_gpu=gpu,
                lost_gpu_original=original,
                survivors=0,
                moved_tables=moved_tables,
                moved_bytes=moved_bytes,
                reshard_us=reshard_us,
                plan_epoch=self.plan_epoch,
            )
            self._membership_log.append(change)
            self._pending_recovery_us += reshard_us
            self._journal("membership", **change.to_dict())
            return [
                LadderTransition(
                    iteration=iteration,
                    gpu=gpu,
                    kernel="*",
                    from_rung=CO_RUN,
                    to_rung=CPU_FALLBACK,
                    reason="last GPU lost; pipeline evicted to host pool",
                )
            ]

        survivor_workload, moved_tables, moved_bytes = self.workload.shrunk(gpu)
        live = self._live_graph_set()
        warm = surviving_mapping(self.plan, gpu, survivor_workload, live)
        planner = self.planner_factory(self.planner, survivor_workload)
        self.plan = planner.replan(live, previous=self.plan, initial_mapping=warm)
        self.planner = planner
        self._scale = 1.0
        self._cpu_kernels.clear()
        self.watchdog.reset()
        self._original_ids.pop(gpu)
        reshard_us = reshard_cost_us(moved_bytes, spec)
        self._pending_recovery_us += reshard_us
        self.plan_epoch += 1
        self._epoch_retry_used = 0
        if self.telemetry is not None:
            self.telemetry.note_replan(iteration, "membership", self.plan_epoch)
        change = MembershipChange(
            iteration=iteration,
            lost_gpu=gpu,
            lost_gpu_original=original,
            survivors=survivor_workload.num_gpus,
            moved_tables=moved_tables,
            moved_bytes=moved_bytes,
            reshard_us=reshard_us,
            plan_epoch=self.plan_epoch,
        )
        self._membership_log.append(change)
        self._journal("membership", **change.to_dict())
        return []

    def _run_cpu_only(
        self, iteration: int, epoch: int, num_faults: int = 0
    ) -> IterationRecord:
        """One iteration of the terminal everything-on-CPU regime."""
        pending = self._pending_recovery_us
        self._pending_recovery_us = 0.0
        if self._cpu_train_us is None:
            # Model-training compute relocated to the host: the standalone
            # iteration of the last surviving shape, scaled by the measured
            # GPU-to-CPU throughput gap.
            self._cpu_train_us = self.workload.ideal_iteration_us() * GPU_TO_CPU_SLOWDOWN
        cpu_us = cpu_fallback_production_us(self.pool, self._cpu_kernels, 1)
        if self.telemetry is not None:
            self.telemetry.record_iteration(
                iteration,
                self._cpu_train_us + cpu_us + pending,
                cpu_us + pending,
                plan_epoch=epoch,
                regime="cpu-only",
            )
        return IterationRecord(
            iteration=iteration,
            iteration_us=self._cpu_train_us + cpu_us + pending,
            exposed_us=cpu_us + pending,
            num_faults=num_faults,
            recovery_us=pending,
            cpu_fallback_us=cpu_us,
            plan_epoch=epoch,
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything mutable the runtime needs to resume bit-identically.

        The plan itself rides alongside as its exact serialized text (see
        :meth:`save_checkpoint`); this dict carries the control state plus
        echoes of the injector and workload shape so a resuming process can
        refuse a mismatched configuration instead of silently diverging.
        """
        state = {
            "plan_epoch": self.plan_epoch,
            "scale": self._scale,
            "total_scale": self._total_scale,
            "cpu_only": self._cpu_only,
            "pending_recovery_us": self._pending_recovery_us,
            "cpu_kernels": [kernel_to_dict(k) for k in self._cpu_kernels],
            "membership": [m.to_dict() for m in self._membership_log],
            "original_ids": list(self._original_ids),
            "watchdog": self.watchdog.state_dict(),
            "injector": {
                "seed": getattr(self.injector, "seed", None),
                "specs": [
                    {
                        "kind": s.kind,
                        "rate": s.rate,
                        "magnitude": s.magnitude,
                        "persistence": s.persistence,
                    }
                    for s in getattr(self.injector, "specs", ())
                ],
            },
            "workload": {
                "model": self.workload.config.name,
                "num_gpus": self.workload.num_gpus,
                "local_batch": self.workload.local_batch,
                "fleet": list(self.workload.fleet_profile),
            },
        }
        # The optional extensions below ride in the snapshot only when
        # their feature is live, keeping legacy checkpoints byte-stable.
        schedule = getattr(self.injector, "schedule", None)
        if isinstance(schedule, (list, tuple)) and schedule:
            state["injector"]["schedule"] = [e.to_dict() for e in schedule]
        if self.retry_policy.retry_budget_per_epoch > 0:
            state["epoch_retry_used"] = self._epoch_retry_used
        if self._preempted:
            state["preempted"] = True
        if self.drift_schedule:
            state["drift_schedule"] = [d.to_dict() for d in self.drift_schedule]
        if self.telemetry is not None:
            state["calibration"] = {
                "telemetry": self.telemetry.state_dict(),
                "calibrated": self._calibrated,
            }
        if self.shadow is not None:
            state["shadow"] = self.shadow.state_dict()
        return state

    def save_checkpoint(
        self,
        manager: "CheckpointManager",
        report: ResilienceReport,
        next_iteration: int,
    ):
        """Write one iteration-consistent checkpoint via ``manager``."""
        path = manager.save(
            next_iteration,
            self.state_dict(),
            plan_to_json(self.plan),
            report.to_dict(),
        )
        self._journal("checkpoint", iteration=next_iteration, path=str(path))
        return path

    @classmethod
    def restore(
        cls,
        snapshot: "Snapshot",
        graph_set: GraphSet,
        workload: TrainingWorkload,
        make_planner: Callable[[TrainingWorkload], RapPlanner],
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        watchdog: LatencyWatchdog | None = None,
        pool: CpuWorkerPool | None = None,
        sequential_fault_threshold: int = 3,
        planner_factory: Callable[[RapPlanner, TrainingWorkload], RapPlanner] | None = None,
        journal: RunJournal | None = None,
        telemetry: TelemetrySession | None = None,
        drift_schedule: Sequence[LatencyDrift] | None = None,
        verifier: DataPathVerifier | None = None,
        feeder=None,
        shadow: ShadowPlanner | None = None,
        tenant: str | None = None,
    ) -> tuple["FaultTolerantRuntime", ResilienceReport, int]:
        """Rebuild a runtime from a checkpoint :class:`Snapshot`.

        ``workload`` is the *original* (full-fleet) workload; the snapshot's
        membership history is replayed over it so the restored fleet shape,
        embedding placement, and interconnect match the killed process
        exactly. Returns ``(runtime, report, next_iteration)``; continuing
        with ``runtime.run(..., start_iteration=next_iteration,
        report=report)`` replays the uninterrupted run bit-identically.
        """
        state = snapshot.state
        membership = [MembershipChange.from_dict(m) for m in state.get("membership", [])]
        live = workload
        for change in membership:
            if change.survivors >= 1:
                live, _, _ = live.shrunk(change.lost_gpu)
            # A terminal change (survivors == 0) keeps the last 1-GPU
            # workload object; the cpu_only flag governs execution.
        saved_fleet = state.get("workload", {}).get("fleet")
        if saved_fleet is not None and list(live.fleet_profile) != list(saved_fleet):
            # Stage capacities, bandwidths, and the plan itself were all
            # priced against the checkpointed fleet's device profiles; a
            # different mix would silently diverge from the killed run.
            raise ValueError(
                f"checkpoint was cut on fleet {list(saved_fleet)}, but the resuming "
                f"workload is {list(live.fleet_profile)}"
            )
        planner = make_planner(live)
        plan = plan_from_json(snapshot.plan_text, live, graph_set)
        if drift_schedule is None:
            drift_schedule = [
                LatencyDrift.from_dict(d) for d in state.get("drift_schedule", ())
            ]
        runtime = cls(
            planner,
            graph_set,
            plan=plan,
            injector=injector,
            retry_policy=retry_policy,
            watchdog=watchdog,
            pool=pool,
            sequential_fault_threshold=sequential_fault_threshold,
            planner_factory=planner_factory,
            journal=journal,
            telemetry=telemetry,
            drift_schedule=drift_schedule,
            verifier=verifier,
            feeder=feeder,
            shadow=shadow,
            tenant=tenant,
        )
        if shadow is not None:
            shadow.load_state(state.get("shadow", {}))
        runtime.plan_epoch = int(state.get("plan_epoch", 0))
        runtime._scale = float(state.get("scale", 1.0))
        runtime._total_scale = float(state.get("total_scale", 1.0))
        runtime._cpu_only = bool(state.get("cpu_only", False))
        runtime._pending_recovery_us = float(state.get("pending_recovery_us", 0.0))
        runtime._cpu_kernels = [kernel_from_dict(k) for k in state.get("cpu_kernels", [])]
        runtime._membership_log = membership
        runtime._original_ids = [
            int(g) for g in state.get("original_ids", range(live.num_gpus))
        ]
        runtime._epoch_retry_used = int(state.get("epoch_retry_used", 0))
        runtime._preempted = bool(state.get("preempted", False))
        runtime.watchdog.load_state(state.get("watchdog", {}))
        calibration = state.get("calibration")
        if calibration is not None and telemetry is not None:
            telemetry.load_state(calibration.get("telemetry", {}))
            runtime._calibrated = bool(calibration.get("calibrated", False))
            if runtime._calibrated:
                # The killed process was planning with corrected latencies;
                # resume with the same calibrated predictor so the replayed
                # trajectory (including any further replans) is identical.
                planner.set_predictor(
                    telemetry.calibrated_predictor(planner.cost_model.predictor)
                )
        report = ResilienceReport.from_dict(snapshot.report)
        next_iteration = int(state.get("next_iteration", snapshot.iteration))
        runtime._journal("resume", iteration=next_iteration, checkpoint=str(snapshot.directory))
        return runtime, report, next_iteration

    # ------------------------------------------------------------------
    # Single-kernel recovery ladder
    # ------------------------------------------------------------------

    def _recover_kernel(
        self,
        event: FaultEvent,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> KernelRecovery:
        """Walk one faulted kernel down the degradation ladder."""
        rec = KernelRecovery(event=event)
        site = self._pop_kernel(event, assignments, trailing)
        if site is None:
            return rec
        kernel, stage_idx = site
        stages = self.workload.stages_for_gpu(event.gpu)
        if 0 <= stage_idx < len(stages):
            stage = stages[stage_idx]
            stage_duration = stage.duration_us
        else:
            stage = None
            stage_duration = sum(s.duration_us for s in stages)

        if event.kind == LATENCY_OVERRUN:
            self._recover_overrun(rec, kernel, stage_idx, stage, assignments, trailing)
        elif event.kind == FUSED_OOM:
            self._recover_oom(rec, kernel, stage_idx, stage, assignments, trailing)
        else:
            self._recover_failure(
                rec, kernel, stage_idx, stage, stage_duration, assignments, trailing
            )
        return rec

    def _pop_kernel(
        self,
        event: FaultEvent,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> tuple[KernelDesc, int] | None:
        """Remove the event's target kernel from its placement site."""
        if event.stage >= 0:
            kernels = assignments.get(event.stage, [])
            for i, k in enumerate(kernels):
                if k.name == event.kernel:
                    return kernels.pop(i), event.stage
        for i, k in enumerate(trailing):
            if k.name == event.kernel:
                return trailing.pop(i), -1
        # Fall back to any stage (the plan may have shifted since the event
        # was drawn, e.g. after a replan earlier in the run).
        for stage_idx in sorted(assignments):
            kernels = assignments[stage_idx]
            for i, k in enumerate(kernels):
                if k.name == event.kernel:
                    return kernels.pop(i), stage_idx
        return None

    def _stage_budget_us(self, stage, stage_idx: int, assignments) -> float:
        """Leftover overlapping-capacity budget of a stage, after cohabitants."""
        capacity = self.planner.cost_model.stage_capacity(stage)
        used = sum(
            self.planner.cost_model.kernel_latency(k)
            for k in assignments.get(stage_idx, [])
        )
        return max(0.0, capacity - used)

    def _transition(
        self, rec: KernelRecovery, from_rung: str, to_rung: str, reason: str
    ) -> None:
        rec.transitions.append(
            LadderTransition(
                iteration=rec.event.iteration,
                gpu=rec.event.gpu,
                kernel=rec.event.kernel,
                from_rung=from_rung,
                to_rung=to_rung,
                reason=reason,
            )
        )
        rec.final_rung = to_rung

    # -- fault-class handlers ------------------------------------------

    def _recover_overrun(
        self, rec, kernel, stage_idx, stage, assignments, trailing
    ) -> None:
        """A kernel running longer than predicted may no longer fit its stage."""
        inflated = kernel.with_duration(kernel.duration_us * rec.event.magnitude)
        if stage is None:
            # Trailing work cannot overrun a budget; the exposure just grows.
            trailing.append(inflated)
            return
        budget = self._stage_budget_us(stage, stage_idx, assignments)
        if self.planner.cost_model.kernel_latency(inflated) <= budget:
            assignments.setdefault(stage_idx, []).append(inflated)
            return
        shards = shard_by_latency(inflated, budget)
        if shards is not None:
            first, remainder = shards
            assignments.setdefault(stage_idx, []).append(first)
            trailing.append(remainder)
            self._transition(
                rec,
                CO_RUN,
                SHARD_RETRY,
                f"overran stage budget ({inflated.duration_us:.0f} us > "
                f"{budget:.0f} us); re-sharded",
            )
            self._transition(rec, SHARD_RETRY, TRAILING, "remainder shard demoted to exposed")
        else:
            trailing.append(inflated)
            self._transition(
                rec, CO_RUN, TRAILING, "overran stage budget and is unshardable; demoted"
            )

    def _recover_oom(self, rec, kernel, stage_idx, stage, assignments, trailing) -> None:
        """A fused kernel exceeding device memory recovers at lower degree."""
        persistent = rec.event.recover_after == -1
        members = list(kernel.meta.get("member_kernels", ())) if kernel.meta else []
        if not persistent:
            if len(members) >= 2 and stage is not None:
                # De-fuse: each member has a fraction of the fused footprint.
                assignments.setdefault(stage_idx, []).extend(members)
                rec.wasted_us += kernel.duration_us  # the OOM'd launch itself
                self._transition(
                    rec,
                    CO_RUN,
                    SHARD_RETRY,
                    f"fused OOM; de-fused into {len(members)} member kernel(s)",
                )
                return
            pieces = (
                fit_kernel_to_leftover(
                    kernel,
                    stage.leftover().scale(_RESHARD_LEFTOVER_FRACTION),
                    self.workload.spec,
                )
                if stage is not None
                else None
            )
            if pieces is not None:
                assignments.setdefault(stage_idx, []).extend(pieces)
                rec.wasted_us += kernel.duration_us
                self._transition(
                    rec, CO_RUN, SHARD_RETRY, f"OOM; re-sharded into {len(pieces)} piece(s)"
                )
                return
            trailing.append(kernel)
            rec.wasted_us += kernel.duration_us
            self._transition(rec, CO_RUN, TRAILING, "OOM and unshardable; demoted to exposed")
            return
        # Persistent OOM: no on-GPU shape survives; record the full descent.
        rec.wasted_us += kernel.duration_us
        self._transition(rec, CO_RUN, SHARD_RETRY, "persistent OOM; de-fuse attempted")
        self._transition(rec, SHARD_RETRY, TRAILING, "members still OOM exposed")
        self._transition(rec, TRAILING, SEQUENTIAL, "OOM with device otherwise idle")
        self._transition(rec, SEQUENTIAL, CPU_FALLBACK, "evicted to host worker pool")
        rec.cpu_kernels.extend(members if members else [kernel])

    def _recover_failure(
        self, rec, kernel, stage_idx, stage, stage_duration, assignments, trailing
    ) -> None:
        """A failing kernel retries in place, then descends the ladder."""
        policy = self.retry_policy
        depth = rec.event.recover_after
        # The jitter token is a pure function of the fault event, so a
        # resumed run replays identical (jittered) backoff pauses.
        token = f"{rec.event.iteration}:{rec.event.gpu}:{rec.event.kernel}"
        allowed = policy.attempts_within(stage_duration, kernel.duration_us, token)
        if policy.retry_budget_per_epoch > 0:
            # Correlated-burst guard: once the epoch's shared budget drains,
            # further failures skip straight to demotion instead of
            # retry-spinning through a fault storm.
            remaining = max(0, policy.retry_budget_per_epoch - self._epoch_retry_used)
            allowed = min(allowed, remaining)

        if 0 < depth <= allowed:
            # Recovered in place: depth failed attempts, then success.
            rec.retries = depth
            rec.wasted_us += depth * kernel.duration_us
            rec.backoff_us += sum(policy.backoff_us(i, token) for i in range(depth))
            self._epoch_retry_used += depth
            self._restore(kernel, stage_idx, assignments, trailing)
            return

        rec.retries = allowed
        rec.wasted_us += allowed * kernel.duration_us
        rec.backoff_us += sum(policy.backoff_us(i, token) for i in range(allowed))
        self._epoch_retry_used += allowed

        persistent = depth == -1
        if not persistent and stage is not None:
            pieces = fit_kernel_to_leftover(
                kernel,
                stage.leftover().scale(_RESHARD_LEFTOVER_FRACTION),
                self.workload.spec,
            )
            if pieces is not None:
                assignments.setdefault(stage_idx, []).extend(pieces)
                self._transition(
                    rec,
                    CO_RUN,
                    SHARD_RETRY,
                    f"retries exhausted ({allowed}); re-sharded into {len(pieces)} piece(s)",
                )
                return

        self._transition(
            rec,
            CO_RUN if not rec.transitions else rec.final_rung,
            TRAILING,
            "retries exhausted; demoted to exposed work",
        )
        if not persistent:
            trailing.append(kernel)
            return
        # Persistent: trailing and sequential isolation both fail too.
        rec.wasted_us += kernel.duration_us
        self._transition(rec, TRAILING, SEQUENTIAL, "still failing while exposed; isolated")
        rec.wasted_us += kernel.duration_us
        self._transition(
            rec, SEQUENTIAL, CPU_FALLBACK, "fails even standalone; evicted to host pool"
        )
        rec.cpu_kernels.append(kernel)

    def _restore(
        self,
        kernel: KernelDesc,
        stage_idx: int,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> None:
        if stage_idx >= 0:
            assignments.setdefault(stage_idx, []).append(kernel)
        else:
            trailing.append(kernel)
