"""The fault-tolerant co-running runtime.

:class:`FaultTolerantRuntime` wraps a searched :class:`repro.core.RapPlan`
with the machinery a production input pipeline needs when the plan's
assumptions break mid-iteration: deterministic fault injection
(:mod:`repro.runtime.faults`), in-place retry with exponential backoff and
per-stage deadlines (:mod:`repro.runtime.retry`), the graceful-degradation
ladder (:mod:`repro.runtime.ladder`), and a latency watchdog that triggers
plan regeneration when measured exposure drifts away from the prediction
(:mod:`repro.runtime.watchdog`).

Recovery is priced, never hand-waved: failed attempts waste their own wall
time, backoff pauses stall the bulk-synchronous cluster, demoted kernels
surface as exposed latency, and CPU-evicted kernels pace the iteration
through the hybrid worker pool. With injection disabled the runtime is a
transparent shim: its iteration numbers are bit-identical to
:meth:`repro.core.RapPlanner.evaluate` on the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.torcharrow import CpuWorkerPool
from ..core.adaptation import drift_graph_set, scale_plan_kernels
from ..core.fusion import fit_kernel_to_leftover, shard_by_latency
from ..core.hybrid import cpu_fallback_production_us, degraded_pool
from ..core.planner import RapPlan, RapPlanner
from ..gpusim.kernel import KernelDesc
from ..preprocessing.executor import DataPreparation
from ..preprocessing.graph import GraphSet
from .faults import (
    CPU_POOL_CRASH,
    FUSED_OOM,
    KERNEL_FAILURE,
    LATENCY_OVERRUN,
    PLAN_DRIFT,
    FaultEvent,
    FaultInjector,
)
from .ladder import (
    CO_RUN,
    CPU_FALLBACK,
    SEQUENTIAL,
    SHARD_RETRY,
    TRAILING,
    LadderTransition,
)
from .report import IterationRecord, ResilienceReport
from .retry import RetryPolicy
from .watchdog import LatencyWatchdog

__all__ = ["KernelRecovery", "FaultTolerantRuntime", "POOL_RESTART_BASE_US"]

#: Host-side worker-pool restart latency per unit of crash magnitude.
POOL_RESTART_BASE_US = 1_000.0

#: Fraction of a stage's leftover resources offered to re-sharded pieces;
#: recovering at reduced footprint is what sidesteps OOM-like faults.
_RESHARD_LEFTOVER_FRACTION = 0.5


@dataclass
class KernelRecovery:
    """The full recovery story of one injected kernel fault."""

    event: FaultEvent
    final_rung: str = CO_RUN
    retries: int = 0
    backoff_us: float = 0.0
    wasted_us: float = 0.0
    transitions: list[LadderTransition] = field(default_factory=list)
    cpu_kernels: list[KernelDesc] = field(default_factory=list)

    @property
    def recovery_us(self) -> float:
        return self.backoff_us + self.wasted_us


class FaultTolerantRuntime:
    """Executes plans under injected faults, degrading instead of crashing."""

    def __init__(
        self,
        planner: RapPlanner,
        graph_set: GraphSet,
        plan: RapPlan | None = None,
        injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        watchdog: LatencyWatchdog | None = None,
        pool: CpuWorkerPool | None = None,
        sequential_fault_threshold: int = 3,
    ) -> None:
        if sequential_fault_threshold < 1:
            raise ValueError("sequential_fault_threshold must be >= 1")
        self.planner = planner
        self.graph_set = graph_set
        self.plan = plan if plan is not None else planner.plan(graph_set)
        self.injector = injector or FaultInjector()
        self.retry_policy = retry_policy or RetryPolicy()
        self.watchdog = watchdog or LatencyWatchdog()
        self.pool = pool or CpuWorkerPool()
        self.sequential_fault_threshold = sequential_fault_threshold
        # Drift of the live distribution relative to the *active* plan's
        # graph set, and cumulatively relative to the base graph set.
        self._scale = 1.0
        self._total_scale = 1.0
        # Kernels persistently evicted to the host pool.
        self._cpu_kernels: list[KernelDesc] = []

    @property
    def workload(self):
        return self.planner.workload

    @property
    def cpu_evicted(self) -> list[KernelDesc]:
        return list(self._cpu_kernels)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self, num_iterations: int, start_iteration: int = 0) -> ResilienceReport:
        """Execute ``num_iterations`` iterations, accumulating the report."""
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        report = ResilienceReport()
        for i in range(start_iteration, start_iteration + num_iterations):
            record, faults, transitions = self.run_iteration(i)
            report.iterations.append(record)
            report.faults.extend(faults)
            report.transitions.extend(transitions)
            report.retries += record.retries
            report.backoff_total_us += record.backoff_us
            report.replans += int(record.replanned)
        return report

    def run_iteration(
        self, iteration: int
    ) -> tuple[IterationRecord, list[FaultEvent], list[LadderTransition]]:
        """Execute one iteration under whatever faults the injector draws."""
        faults = self.injector.faults_for_iteration(iteration, self.plan)

        if not faults and self._scale == 1.0 and not self._cpu_kernels:
            # Transparent path: nothing failed, nothing drifted, nothing
            # evicted -- defer to the planner's own evaluation so the
            # wrapped numbers are bit-identical to direct execution.
            report = self.planner.evaluate(self.plan)
            record = IterationRecord(
                iteration=iteration,
                iteration_us=report.iteration_us,
                exposed_us=report.exposed_preprocessing_us,
            )
            decision = self.watchdog.observe(
                self.plan.predicted_exposed_us, report.exposed_preprocessing_us, 0
            )
            if decision.replan:
                self._replan()
                record = IterationRecord(**{**record.to_dict(), "replanned": True})
            return record, [], []

        return self._run_degraded(iteration, faults)

    # ------------------------------------------------------------------
    # Degraded execution
    # ------------------------------------------------------------------

    def _run_degraded(
        self, iteration: int, faults: list[FaultEvent]
    ) -> tuple[IterationRecord, list[FaultEvent], list[LadderTransition]]:
        num_gpus = self.workload.num_gpus
        transitions: list[LadderTransition] = []
        pool_restart_us = 0.0
        pool_fraction = 1.0

        # Environment faults first: they shape the iteration every kernel
        # fault then lands in.
        for event in faults:
            if event.kind == PLAN_DRIFT:
                self._scale *= event.magnitude
                self._total_scale *= event.magnitude
            elif event.kind == CPU_POOL_CRASH:
                pool_restart_us += event.magnitude * POOL_RESTART_BASE_US
                pool_fraction = min(pool_fraction, 0.5)

        assignments, trailing = scale_plan_kernels(self.plan, self._scale)
        recovery = [0.0] * num_gpus
        retries = 0
        backoff_us = 0.0
        faults_per_gpu = [0] * num_gpus

        for event in faults:
            if event.kind not in (KERNEL_FAILURE, LATENCY_OVERRUN, FUSED_OOM):
                continue
            if not 0 <= event.gpu < num_gpus:
                continue
            faults_per_gpu[event.gpu] += 1
            rec = self._recover_kernel(event, assignments[event.gpu], trailing[event.gpu])
            retries += rec.retries
            backoff_us += rec.backoff_us
            recovery[event.gpu] += rec.recovery_us
            transitions.extend(rec.transitions)
            self._cpu_kernels.extend(rec.cpu_kernels)

        # Sequential fallback: a GPU absorbing too many kernel faults in a
        # single iteration abandons co-running entirely for that iteration
        # -- every remaining placed kernel runs exposed, where it cannot
        # perturb training.
        for gpu in range(num_gpus):
            if faults_per_gpu[gpu] < self.sequential_fault_threshold:
                continue
            demoted = [k for stage in sorted(assignments[gpu]) for k in assignments[gpu][stage]]
            if not demoted:
                continue
            assignments[gpu] = {}
            trailing[gpu] = demoted + trailing[gpu]
            transitions.append(
                LadderTransition(
                    iteration=iteration,
                    gpu=gpu,
                    kernel="*",
                    from_rung=CO_RUN,
                    to_rung=SEQUENTIAL,
                    reason=f"{faults_per_gpu[gpu]} faults in one iteration; "
                    "co-running suspended for safety",
                )
            )

        result = self.workload.simulate(
            assignments_per_gpu=assignments,
            trailing_per_gpu=trailing,
            input_comm_bytes=self.plan.input_comm_bytes,
            input_comm_transfers=max(1, self.plan.input_comm_transfers),
            recovery_us_per_gpu=recovery,
        )
        prep = max(
            self.plan.data_prep_per_gpu,
            key=lambda p: p.total_us,
            default=DataPreparation(0.0, 0.0, 0.0),
        )
        timeline = self.planner.interleaver.steady_state(result.iteration_time_us, prep)

        pool = degraded_pool(self.pool, pool_fraction) if pool_fraction < 1.0 else self.pool
        cpu_us = cpu_fallback_production_us(pool, self._cpu_kernels, num_gpus) + pool_restart_us
        iteration_us = max(timeline.iteration_us, cpu_us)
        exposed_us = result.max_exposed_preprocessing_us + result.max_recovery_us

        decision = self.watchdog.observe(
            self.plan.predicted_exposed_us, exposed_us, len(faults)
        )
        if decision.replan:
            self._replan()

        record = IterationRecord(
            iteration=iteration,
            iteration_us=iteration_us,
            exposed_us=exposed_us,
            num_faults=len(faults),
            retries=retries,
            backoff_us=backoff_us,
            recovery_us=sum(recovery),
            cpu_fallback_us=cpu_us,
            replanned=decision.replan,
        )
        return record, faults, transitions

    def _replan(self) -> None:
        """Regenerate the plan for the live (possibly drifted) distribution.

        Goes through the planner's fast path: an unchanged instance is a
        plan-cache hit, and uniform drift (which rescales latencies but not
        graph structure) re-plans incrementally from the active plan's
        mapping instead of re-running the full search.
        """
        drifted = drift_graph_set(self.graph_set, self._total_scale)
        self.plan = self.planner.replan(drifted, previous=self.plan)
        self._scale = 1.0
        self._cpu_kernels.clear()
        self.watchdog.reset()

    # ------------------------------------------------------------------
    # Single-kernel recovery ladder
    # ------------------------------------------------------------------

    def _recover_kernel(
        self,
        event: FaultEvent,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> KernelRecovery:
        """Walk one faulted kernel down the degradation ladder."""
        rec = KernelRecovery(event=event)
        site = self._pop_kernel(event, assignments, trailing)
        if site is None:
            return rec
        kernel, stage_idx = site
        stages = self.workload.stages_for_gpu(event.gpu)
        if 0 <= stage_idx < len(stages):
            stage = stages[stage_idx]
            stage_duration = stage.duration_us
        else:
            stage = None
            stage_duration = sum(s.duration_us for s in stages)

        if event.kind == LATENCY_OVERRUN:
            self._recover_overrun(rec, kernel, stage_idx, stage, assignments, trailing)
        elif event.kind == FUSED_OOM:
            self._recover_oom(rec, kernel, stage_idx, stage, assignments, trailing)
        else:
            self._recover_failure(
                rec, kernel, stage_idx, stage, stage_duration, assignments, trailing
            )
        return rec

    def _pop_kernel(
        self,
        event: FaultEvent,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> tuple[KernelDesc, int] | None:
        """Remove the event's target kernel from its placement site."""
        if event.stage >= 0:
            kernels = assignments.get(event.stage, [])
            for i, k in enumerate(kernels):
                if k.name == event.kernel:
                    return kernels.pop(i), event.stage
        for i, k in enumerate(trailing):
            if k.name == event.kernel:
                return trailing.pop(i), -1
        # Fall back to any stage (the plan may have shifted since the event
        # was drawn, e.g. after a replan earlier in the run).
        for stage_idx in sorted(assignments):
            kernels = assignments[stage_idx]
            for i, k in enumerate(kernels):
                if k.name == event.kernel:
                    return kernels.pop(i), stage_idx
        return None

    def _stage_budget_us(self, stage, stage_idx: int, assignments) -> float:
        """Leftover overlapping-capacity budget of a stage, after cohabitants."""
        capacity = self.planner.cost_model.stage_capacity(stage)
        used = sum(
            self.planner.cost_model.kernel_latency(k)
            for k in assignments.get(stage_idx, [])
        )
        return max(0.0, capacity - used)

    def _transition(
        self, rec: KernelRecovery, from_rung: str, to_rung: str, reason: str
    ) -> None:
        rec.transitions.append(
            LadderTransition(
                iteration=rec.event.iteration,
                gpu=rec.event.gpu,
                kernel=rec.event.kernel,
                from_rung=from_rung,
                to_rung=to_rung,
                reason=reason,
            )
        )
        rec.final_rung = to_rung

    # -- fault-class handlers ------------------------------------------

    def _recover_overrun(
        self, rec, kernel, stage_idx, stage, assignments, trailing
    ) -> None:
        """A kernel running longer than predicted may no longer fit its stage."""
        inflated = kernel.with_duration(kernel.duration_us * rec.event.magnitude)
        if stage is None:
            # Trailing work cannot overrun a budget; the exposure just grows.
            trailing.append(inflated)
            return
        budget = self._stage_budget_us(stage, stage_idx, assignments)
        if self.planner.cost_model.kernel_latency(inflated) <= budget:
            assignments.setdefault(stage_idx, []).append(inflated)
            return
        shards = shard_by_latency(inflated, budget)
        if shards is not None:
            first, remainder = shards
            assignments.setdefault(stage_idx, []).append(first)
            trailing.append(remainder)
            self._transition(
                rec,
                CO_RUN,
                SHARD_RETRY,
                f"overran stage budget ({inflated.duration_us:.0f} us > "
                f"{budget:.0f} us); re-sharded",
            )
            self._transition(rec, SHARD_RETRY, TRAILING, "remainder shard demoted to exposed")
        else:
            trailing.append(inflated)
            self._transition(
                rec, CO_RUN, TRAILING, "overran stage budget and is unshardable; demoted"
            )

    def _recover_oom(self, rec, kernel, stage_idx, stage, assignments, trailing) -> None:
        """A fused kernel exceeding device memory recovers at lower degree."""
        persistent = rec.event.recover_after == -1
        members = list(kernel.meta.get("member_kernels", ())) if kernel.meta else []
        if not persistent:
            if len(members) >= 2 and stage is not None:
                # De-fuse: each member has a fraction of the fused footprint.
                assignments.setdefault(stage_idx, []).extend(members)
                rec.wasted_us += kernel.duration_us  # the OOM'd launch itself
                self._transition(
                    rec,
                    CO_RUN,
                    SHARD_RETRY,
                    f"fused OOM; de-fused into {len(members)} member kernel(s)",
                )
                return
            pieces = (
                fit_kernel_to_leftover(
                    kernel,
                    stage.leftover().scale(_RESHARD_LEFTOVER_FRACTION),
                    self.workload.spec,
                )
                if stage is not None
                else None
            )
            if pieces is not None:
                assignments.setdefault(stage_idx, []).extend(pieces)
                rec.wasted_us += kernel.duration_us
                self._transition(
                    rec, CO_RUN, SHARD_RETRY, f"OOM; re-sharded into {len(pieces)} piece(s)"
                )
                return
            trailing.append(kernel)
            rec.wasted_us += kernel.duration_us
            self._transition(rec, CO_RUN, TRAILING, "OOM and unshardable; demoted to exposed")
            return
        # Persistent OOM: no on-GPU shape survives; record the full descent.
        rec.wasted_us += kernel.duration_us
        self._transition(rec, CO_RUN, SHARD_RETRY, "persistent OOM; de-fuse attempted")
        self._transition(rec, SHARD_RETRY, TRAILING, "members still OOM exposed")
        self._transition(rec, TRAILING, SEQUENTIAL, "OOM with device otherwise idle")
        self._transition(rec, SEQUENTIAL, CPU_FALLBACK, "evicted to host worker pool")
        rec.cpu_kernels.extend(members if members else [kernel])

    def _recover_failure(
        self, rec, kernel, stage_idx, stage, stage_duration, assignments, trailing
    ) -> None:
        """A failing kernel retries in place, then descends the ladder."""
        policy = self.retry_policy
        depth = rec.event.recover_after
        allowed = policy.attempts_within(stage_duration, kernel.duration_us)

        if 0 < depth <= allowed:
            # Recovered in place: depth failed attempts, then success.
            rec.retries = depth
            rec.wasted_us += depth * kernel.duration_us
            rec.backoff_us += sum(policy.backoff_us(i) for i in range(depth))
            self._restore(kernel, stage_idx, assignments, trailing)
            return

        rec.retries = allowed
        rec.wasted_us += allowed * kernel.duration_us
        rec.backoff_us += sum(policy.backoff_us(i) for i in range(allowed))

        persistent = depth == -1
        if not persistent and stage is not None:
            pieces = fit_kernel_to_leftover(
                kernel,
                stage.leftover().scale(_RESHARD_LEFTOVER_FRACTION),
                self.workload.spec,
            )
            if pieces is not None:
                assignments.setdefault(stage_idx, []).extend(pieces)
                self._transition(
                    rec,
                    CO_RUN,
                    SHARD_RETRY,
                    f"retries exhausted ({allowed}); re-sharded into {len(pieces)} piece(s)",
                )
                return

        self._transition(
            rec,
            CO_RUN if not rec.transitions else rec.final_rung,
            TRAILING,
            "retries exhausted; demoted to exposed work",
        )
        if not persistent:
            trailing.append(kernel)
            return
        # Persistent: trailing and sequential isolation both fail too.
        rec.wasted_us += kernel.duration_us
        self._transition(rec, TRAILING, SEQUENTIAL, "still failing while exposed; isolated")
        rec.wasted_us += kernel.duration_us
        self._transition(
            rec, SEQUENTIAL, CPU_FALLBACK, "fails even standalone; evicted to host pool"
        )
        rec.cpu_kernels.append(kernel)

    def _restore(
        self,
        kernel: KernelDesc,
        stage_idx: int,
        assignments: dict[int, list[KernelDesc]],
        trailing: list[KernelDesc],
    ) -> None:
        if stage_idx >= 0:
            assignments.setdefault(stage_idx, []).append(kernel)
        else:
            trailing.append(kernel)
