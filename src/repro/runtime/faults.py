"""Deterministic, seeded fault injection for plan execution.

The searched plan is only correct while its assumptions hold; production
input pipelines treat kernel failures, latency overruns, OOMs, worker
crashes, and input drift as first-class events rather than exceptions.
This module decides *what goes wrong when*: given a seed and an iteration
index, :class:`FaultInjector` draws a reproducible set of
:class:`FaultEvent` objects against a concrete plan's kernel placement.

Determinism contract: the events for ``(seed, iteration, plan placement)``
are a pure function -- re-running a workload with the same seed replays
the exact same fault schedule, which is what makes resilience regressions
bisectable. The per-iteration RNG is derived from a string seed, so the
stream is independent of Python hash randomization.

The fault classes mirror the error taxonomy of
:mod:`repro.preprocessing.executor`; :data:`FAULT_EXCEPTIONS` maps each
kind to the exception a real execution backend would raise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.planner import RapPlan
from ..preprocessing.executor import (
    DeviceLostError,
    KernelExecutionError,
    KernelOOMError,
    PreprocessingError,
    WorkerPoolError,
)

__all__ = [
    "KERNEL_FAILURE",
    "LATENCY_OVERRUN",
    "FUSED_OOM",
    "CPU_POOL_CRASH",
    "PLAN_DRIFT",
    "GPU_LOST",
    "FAULT_KINDS",
    "FAULT_KIND_IDS",
    "FAULT_EXCEPTIONS",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
]

KERNEL_FAILURE = "kernel_failure"
LATENCY_OVERRUN = "latency_overrun"
FUSED_OOM = "fused_oom"
CPU_POOL_CRASH = "cpu_pool_crash"
PLAN_DRIFT = "plan_drift"
GPU_LOST = "gpu_lost"

#: APPEND-ONLY contract: fault kinds are persisted by name in journals,
#: checkpoints, plan artifacts, and forge scenarios, and the injector's
#: per-iteration RNG consumes one draw per spec *in this tuple's order*.
#: Reordering or removing an entry silently changes every replayed fault
#: schedule; new kinds must be appended at the end. The positional ids in
#: :data:`FAULT_KIND_IDS` are regression-pinned.
FAULT_KINDS = (
    KERNEL_FAILURE, LATENCY_OVERRUN, FUSED_OOM, CPU_POOL_CRASH, PLAN_DRIFT, GPU_LOST,
)

#: Stable positional identifier of each kind (see the append-only contract
#: on :data:`FAULT_KINDS`).
FAULT_KIND_IDS = {kind: i for i, kind in enumerate(FAULT_KINDS)}

#: Kinds that target one placed kernel (as opposed to the host or the plan).
KERNEL_FAULT_KINDS = (KERNEL_FAILURE, LATENCY_OVERRUN, FUSED_OOM)

FAULT_EXCEPTIONS: dict[str, type[PreprocessingError]] = {
    KERNEL_FAILURE: KernelExecutionError,
    LATENCY_OVERRUN: KernelExecutionError,
    FUSED_OOM: KernelOOMError,
    CPU_POOL_CRASH: WorkerPoolError,
    PLAN_DRIFT: PreprocessingError,
    GPU_LOST: DeviceLostError,
}


@dataclass(frozen=True)
class FaultSpec:
    """Injection parameters for one fault class.

    ``rate`` is the per-iteration probability of one event of this kind.
    ``magnitude`` is kind-specific: the latency inflation factor for
    overruns, the drift scale step for plan drift, and the restart latency
    multiplier for pool crashes. ``persistence`` is the probability that an
    injected fault resists *every* same-placement recovery attempt and
    forces the full descent of the degradation ladder.
    """

    kind: str
    rate: float
    magnitude: float = 2.0
    persistence: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a probability in [0, 1]")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if not 0.0 <= self.persistence <= 1.0:
            raise ValueError("persistence must be a probability in [0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, bound to a concrete target.

    ``stage`` is the training-stage index hosting the kernel (-1 for
    trailing kernels and non-kernel faults). ``recover_after`` encodes the
    injected failure's depth: a retry of the same placement succeeds after
    that many failed attempts, and ``-1`` marks a persistent fault that no
    GPU placement survives (the ladder must fall through to CPU fallback).
    """

    kind: str
    iteration: int
    gpu: int = -1
    stage: int = -1
    kernel: str = ""
    magnitude: float = 1.0
    recover_after: int = 1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "iteration": self.iteration,
            "gpu": self.gpu,
            "stage": self.stage,
            "kernel": self.kernel,
            "magnitude": self.magnitude,
            "recover_after": self.recover_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(**data)


def _kernel_sites(plan: RapPlan, include_trailing: bool) -> list[tuple[int, int, str]]:
    """Every (gpu, stage, kernel-name) placement site in the plan."""
    sites: list[tuple[int, int, str]] = []
    for gpu, per_gpu in enumerate(plan.assignments_per_gpu):
        for stage in sorted(per_gpu):
            for kernel in per_gpu[stage]:
                sites.append((gpu, stage, kernel.name))
    if include_trailing:
        for gpu, kernels in enumerate(plan.trailing_per_gpu):
            for kernel in kernels:
                sites.append((gpu, -1, kernel.name))
    return sites


def _fused_sites(plan: RapPlan) -> list[tuple[int, int, str]]:
    """Placement sites holding fused kernels (OOM's preferred victims)."""
    sites: list[tuple[int, int, str]] = []
    for gpu, per_gpu in enumerate(plan.assignments_per_gpu):
        for stage in sorted(per_gpu):
            for kernel in per_gpu[stage]:
                if int(kernel.meta.get("members", 1)) > 1:
                    sites.append((gpu, stage, kernel.name))
    return sites


@dataclass
class FaultInjector:
    """Draws a deterministic fault schedule against a plan, per iteration.

    Two fault sources compose:

    - ``specs``: independent per-iteration Bernoulli draws, one per kind
      (the PR-1 behavior, byte-for-byte unchanged for existing seeds).
    - ``schedule``: explicit pre-drawn :class:`FaultEvent` objects -- the
      carrier for *correlated* fault patterns (same-host ``gpu_lost``
      pairs, cascading pool crashes, drift storms) that independent draws
      cannot express. Scheduled events fire before rate-drawn events in
      their listed order and never consume RNG state, so adding a schedule
      leaves the rate-drawn stream of a given seed untouched.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    schedule: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        kinds = [s.kind for s in self.specs]
        if len(kinds) != len(set(kinds)):
            raise ValueError("at most one FaultSpec per fault kind")
        self.schedule = tuple(self.schedule)
        for event in self.schedule:
            if event.kind not in FAULT_KINDS:
                raise ValueError(
                    f"scheduled event has unknown fault kind {event.kind!r}; "
                    f"expected one of {FAULT_KINDS}"
                )
            if event.iteration < 0:
                raise ValueError("scheduled events need a non-negative iteration")

    @property
    def enabled(self) -> bool:
        return any(spec.rate > 0 for spec in self.specs) or bool(self.schedule)

    # ------------------------------------------------------------------

    def _rng(self, iteration: int) -> random.Random:
        # String seeding goes through a stable hash in CPython, so the
        # stream survives PYTHONHASHSEED and process restarts.
        return random.Random(f"rap-fault:{self.seed}:{iteration}")

    def faults_for_iteration(self, iteration: int, plan: RapPlan) -> list[FaultEvent]:
        """The fault schedule for one iteration of one plan."""
        events: list[FaultEvent] = []
        if not self.enabled:
            return events
        events.extend(e for e in self.schedule if e.iteration == iteration)
        rng = self._rng(iteration)
        for spec in self.specs:
            if rng.random() >= spec.rate:
                continue
            event = self._draw_event(rng, spec, iteration, plan)
            if event is not None:
                events.append(event)
        return events

    def _draw_event(
        self,
        rng: random.Random,
        spec: FaultSpec,
        iteration: int,
        plan: RapPlan,
    ) -> FaultEvent | None:
        if spec.kind == CPU_POOL_CRASH:
            return FaultEvent(
                kind=spec.kind,
                iteration=iteration,
                magnitude=spec.magnitude,
                recover_after=1,
            )
        if spec.kind == GPU_LOST:
            # Terminal device loss: no same-device recovery exists, so the
            # depth is always persistent. The victim is drawn from the
            # *current* fleet, which shrinks as earlier losses land.
            return FaultEvent(
                kind=spec.kind,
                iteration=iteration,
                gpu=rng.randrange(plan.workload.num_gpus),
                magnitude=spec.magnitude,
                recover_after=-1,
            )
        if spec.kind == PLAN_DRIFT:
            # Drift a step up or down; magnitude bounds the step factor.
            direction = 1.0 if rng.random() < 0.5 else -1.0
            step = spec.magnitude ** direction
            return FaultEvent(
                kind=spec.kind,
                iteration=iteration,
                magnitude=step,
                recover_after=0,
            )

        if spec.kind == FUSED_OOM:
            sites = _fused_sites(plan) or _kernel_sites(plan, include_trailing=False)
        else:
            sites = _kernel_sites(plan, include_trailing=spec.kind == KERNEL_FAILURE)
        if not sites:
            return None
        gpu, stage, kernel = sites[rng.randrange(len(sites))]
        if rng.random() < spec.persistence:
            recover_after = -1
        else:
            # Depth of the failure: 1-2 recovers under in-place retry, 3+
            # exhausts the default retry budget and exercises re-sharding.
            recover_after = 1 + rng.randrange(4)
        return FaultEvent(
            kind=spec.kind,
            iteration=iteration,
            gpu=gpu,
            stage=stage,
            kernel=kernel,
            magnitude=spec.magnitude,
            recover_after=recover_after,
        )
