"""Append-only, crash-safe run journal.

Every control-plane event of a fault-tolerant run -- ladder transitions,
replans, membership changes, checkpoints, simulated kills -- is appended
as one JSON line, flushed and fsynced before the runtime proceeds. A
process killed mid-epoch therefore leaves a journal whose tail explains
exactly how far it got; a resumed run appends a ``resume`` record and
continues the same file.

A torn final line (the crash landed mid-write) is expected, not an
error: :meth:`RunJournal.read` skips unparseable lines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO

__all__ = ["JournalFlaw", "RunJournal", "validate_records"]


@dataclass(frozen=True)
class JournalFlaw:
    """One unparseable journal line found by :meth:`RunJournal.scan`.

    ``kind`` is ``"torn_tail"`` when the flaw is the journal's final
    non-empty line (the expected signature of a crash mid-append) and
    ``"corrupt"`` anywhere else (which indicates real damage: the
    appender never writes a record without a trailing newline).
    """

    line: int
    kind: str
    snippet: str

    def to_dict(self) -> dict:
        return {"line": self.line, "kind": self.kind, "snippet": self.snippet}


class RunJournal:
    """One append-only JSONL journal for a run directory.

    Journaling is best-effort by design: a full disk or revoked handle
    must degrade observability, never crash the simulated training loop,
    so every OS error in :meth:`append` is swallowed.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            torn_tail = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with self.path.open("rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    torn_tail = existing.read(1) != b"\n"
            self._handle = self.path.open("a", encoding="utf-8")
            if torn_tail:
                # The previous process died mid-append; start on a fresh
                # line so the torn fragment can't swallow our first record.
                self._handle.write("\n")
        return self._handle

    def append(self, record_type: str, **fields) -> None:
        """Durably append one event record (type + arbitrary JSON fields)."""
        record = {"type": record_type, **fields}
        try:
            handle = self._file()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            pass

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            try:
                self._handle.close()
            except OSError:
                pass
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All parseable records in the journal, oldest first.

        Unparseable lines (a torn tail from a crash mid-append) are
        skipped rather than raised.
        """
        records, _ = RunJournal.scan(path)
        return records

    @staticmethod
    def scan(path: str | Path) -> tuple[list[dict], list[JournalFlaw]]:
        """Parse the journal, reporting every flawed line alongside.

        Same tolerance as :meth:`read` -- flawed lines never abort the
        scan -- but each one is returned as a :class:`JournalFlaw` so
        post-mortem tooling (the ``journal`` CLI subcommand) can
        distinguish the expected torn tail of a crash from mid-file
        corruption.
        """
        records: list[dict] = []
        flawed: list[tuple[int, str]] = []
        journal = Path(path)
        if not journal.exists():
            return records, []
        last_content_line = 0
        with journal.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                last_content_line = number
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    flawed.append((number, line))
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    flawed.append((number, line))
        flaws = [
            JournalFlaw(
                line=number,
                kind="torn_tail" if number == last_content_line else "corrupt",
                snippet=text[:80],
            )
            for number, text in flawed
        ]
        return records, flaws


def validate_records(records: list[dict]) -> tuple[list[str], list[str]]:
    """Structural validation of a scanned journal: ``(errors, warnings)``.

    Checks the invariants the runtime guarantees within one process
    lifetime: the plan epoch is monotone non-decreasing, promotions and
    ``promotion_result`` records pair up one-to-one, and probation
    outcomes are drawn from the known set. ``run`` and ``resume``
    records reset both trackers -- a resumed process deterministically
    *replays* the tail of the killed one, so epochs may legitimately
    regress and an open promotion may be re-journaled across the
    boundary. A probation left open at the end of the journal is a
    warning (the run may simply have ended mid-probation), not an error.
    """
    errors: list[str] = []
    warnings: list[str] = []
    last_epoch: int | None = None
    # None = no promotion may be open; "open" = one is; "unknown" = a
    # run/resume boundary was just crossed and either state is legal.
    promotion_state: str | None = None
    valid_outcomes = ("committed", "rolled_back", "aborted")
    for index, record in enumerate(records, start=1):
        record_type = record.get("type")
        if not isinstance(record_type, str):
            errors.append(f"record {index}: missing record type")
            continue
        if record_type in ("run", "resume"):
            last_epoch = None
            promotion_state = "unknown"
            continue
        epoch = record.get("plan_epoch")
        if isinstance(epoch, (int, float)):
            if last_epoch is not None and epoch < last_epoch:
                errors.append(
                    f"record {index} ({record_type}): plan epoch regressed "
                    f"{last_epoch} -> {epoch} without an intervening resume"
                )
            last_epoch = int(epoch)
        if record_type == "promotion":
            if promotion_state == "open":
                errors.append(
                    f"record {index}: promotion while the previous promotion "
                    "is still in probation"
                )
            promotion_state = "open"
        elif record_type == "promotion_result":
            if promotion_state is None:
                errors.append(
                    f"record {index}: promotion_result without a matching "
                    "promotion record"
                )
            outcome = record.get("outcome")
            if outcome not in valid_outcomes:
                errors.append(
                    f"record {index}: unknown probation outcome {outcome!r} "
                    f"(expected one of {', '.join(valid_outcomes)})"
                )
            promotion_state = None
    if promotion_state == "open":
        warnings.append(
            "journal ends with an open probation (no promotion_result yet)"
        )
    return errors, warnings
