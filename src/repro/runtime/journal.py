"""Append-only, crash-safe run journal.

Every control-plane event of a fault-tolerant run -- ladder transitions,
replans, membership changes, checkpoints, simulated kills -- is appended
as one JSON line, flushed and fsynced before the runtime proceeds. A
process killed mid-epoch therefore leaves a journal whose tail explains
exactly how far it got; a resumed run appends a ``resume`` record and
continues the same file.

A torn final line (the crash landed mid-write) is expected, not an
error: :meth:`RunJournal.read` skips unparseable lines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

__all__ = ["RunJournal"]


class RunJournal:
    """One append-only JSONL journal for a run directory.

    Journaling is best-effort by design: a full disk or revoked handle
    must degrade observability, never crash the simulated training loop,
    so every OS error in :meth:`append` is swallowed.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            torn_tail = False
            if self.path.exists() and self.path.stat().st_size > 0:
                with self.path.open("rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    torn_tail = existing.read(1) != b"\n"
            self._handle = self.path.open("a", encoding="utf-8")
            if torn_tail:
                # The previous process died mid-append; start on a fresh
                # line so the torn fragment can't swallow our first record.
                self._handle.write("\n")
        return self._handle

    def append(self, record_type: str, **fields) -> None:
        """Durably append one event record (type + arbitrary JSON fields)."""
        record = {"type": record_type, **fields}
        try:
            handle = self._file()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            pass

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            try:
                self._handle.close()
            except OSError:
                pass
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """All parseable records in the journal, oldest first.

        Unparseable lines (a torn tail from a crash mid-append) are
        skipped rather than raised.
        """
        records: list[dict] = []
        journal = Path(path)
        if not journal.exists():
            return records
        with journal.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records
