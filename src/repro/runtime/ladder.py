"""The graceful-degradation ladder.

Every fault recovery walks the same ordered ladder, from the plan's
optimal placement down to the host:

1. ``co_run`` -- the searched placement; in-place retry with backoff.
2. ``shard_retry`` -- re-shard / de-fuse the kernel so smaller pieces
   co-run within the stage's leftover (smaller footprint sidesteps OOM and
   restores the contention-free guarantee after an overrun).
3. ``trailing`` -- demote to exposed work after the training stages; the
   iteration absorbs the latency but keeps its GPU placement.
4. ``sequential`` -- run standalone with the device otherwise idle (no
   co-running at all), the safest on-GPU regime.
5. ``cpu_fallback`` -- evict to the host CPU worker pool through the
   hybrid pipeline; the GPU plan no longer carries the kernel at all.

Each demotion is recorded as a :class:`LadderTransition` so a
:class:`repro.runtime.report.ResilienceReport` can reconstruct exactly how
an iteration survived.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CO_RUN",
    "SHARD_RETRY",
    "TRAILING",
    "SEQUENTIAL",
    "CPU_FALLBACK",
    "LADDER",
    "next_rung",
    "LadderTransition",
]

CO_RUN = "co_run"
SHARD_RETRY = "shard_retry"
TRAILING = "trailing"
SEQUENTIAL = "sequential"
CPU_FALLBACK = "cpu_fallback"

#: Rungs in demotion order; recovery never climbs back up mid-iteration.
LADDER: tuple[str, ...] = (CO_RUN, SHARD_RETRY, TRAILING, SEQUENTIAL, CPU_FALLBACK)


def next_rung(rung: str) -> str | None:
    """The rung one demotion below ``rung`` (``None`` at the bottom)."""
    idx = LADDER.index(rung)
    return LADDER[idx + 1] if idx + 1 < len(LADDER) else None


@dataclass(frozen=True)
class LadderTransition:
    """One demotion (or recovery) step taken for one kernel."""

    iteration: int
    gpu: int
    kernel: str
    from_rung: str
    to_rung: str
    reason: str

    def __post_init__(self) -> None:
        for rung in (self.from_rung, self.to_rung):
            if rung not in LADDER:
                raise ValueError(f"unknown ladder rung {rung!r}; expected one of {LADDER}")

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "gpu": self.gpu,
            "kernel": self.kernel,
            "from_rung": self.from_rung,
            "to_rung": self.to_rung,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LadderTransition":
        return cls(**data)
