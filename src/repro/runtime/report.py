"""The structured outcome of fault-tolerant plan execution.

A :class:`ResilienceReport` is the runtime's answer to "what did the plan
survive": every injected fault, every retry and its backoff, every
degradation-ladder transition, and every watchdog-triggered replan, plus
per-iteration timing so degradation is visible in the numbers rather than
buried in logs. It serializes to plain dicts so it can ride along a plan
artifact (:func:`repro.core.serialization.plan_to_json`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .elastic import MembershipChange
from .faults import FaultEvent
from .ladder import LadderTransition

__all__ = ["IterationRecord", "ResilienceReport"]


@dataclass(frozen=True)
class IterationRecord:
    """Timing and recovery accounting for one executed iteration."""

    iteration: int
    iteration_us: float
    exposed_us: float
    num_faults: int = 0
    retries: int = 0
    backoff_us: float = 0.0
    recovery_us: float = 0.0
    cpu_fallback_us: float = 0.0
    replanned: bool = False
    #: The plan generation this iteration *started* under. Faults observed
    #: during a replanned iteration are charged to this (old) epoch only,
    #: never to the plan that replaced it mid-window.
    plan_epoch: int = 0

    @property
    def degraded(self) -> bool:
        return self.num_faults > 0 or self.recovery_us > 0 or self.cpu_fallback_us > 0

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "iteration_us": self.iteration_us,
            "exposed_us": self.exposed_us,
            "num_faults": self.num_faults,
            "retries": self.retries,
            "backoff_us": self.backoff_us,
            "recovery_us": self.recovery_us,
            "cpu_fallback_us": self.cpu_fallback_us,
            "replanned": self.replanned,
            "plan_epoch": self.plan_epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationRecord":
        data = dict(data)
        data.setdefault("plan_epoch", 0)
        return cls(**data)


@dataclass
class ResilienceReport:
    """Aggregated resilience accounting across a run."""

    iterations: list[IterationRecord] = field(default_factory=list)
    faults: list[FaultEvent] = field(default_factory=list)
    transitions: list[LadderTransition] = field(default_factory=list)
    retries: int = 0
    backoff_total_us: float = 0.0
    replans: int = 0
    membership_changes: list[MembershipChange] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    @property
    def degraded_iterations(self) -> int:
        return sum(1 for r in self.iterations if r.degraded)

    @property
    def fault_rate(self) -> float:
        return self.num_faults / self.num_iterations if self.iterations else 0.0

    @property
    def mean_iteration_us(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(r.iteration_us for r in self.iterations) / len(self.iterations)

    @property
    def total_recovery_us(self) -> float:
        return sum(r.recovery_us for r in self.iterations)

    def faults_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.faults:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def faults_by_epoch(self) -> dict[int, int]:
        """Fault counts keyed by the plan epoch each fault was charged to.

        Each fault is attributed to exactly the epoch its iteration
        *started* under (:attr:`IterationRecord.plan_epoch`): a fault that
        triggers a replan mid-window belongs to the plan it hit, not to the
        plan installed in response. Summing the values therefore always
        equals :attr:`num_faults` -- double-counting a replan-window fault
        against both plans was a bug this accounting pins down.
        """
        epoch_of_iteration = {r.iteration: r.plan_epoch for r in self.iterations}
        counts: dict[int, int] = {}
        for event in self.faults:
            epoch = epoch_of_iteration.get(event.iteration, 0)
            counts[epoch] = counts.get(epoch, 0) + 1
        return counts

    def fault_rate_for_epoch(self, epoch: int) -> float:
        """Faults per iteration, restricted to one plan epoch."""
        iterations = sum(1 for r in self.iterations if r.plan_epoch == epoch)
        if iterations == 0:
            return 0.0
        return self.faults_by_epoch().get(epoch, 0) / iterations

    def rungs_reached(self) -> dict[str, int]:
        """How many demotions landed on each ladder rung."""
        counts: dict[str, int] = {}
        for t in self.transitions:
            counts[t.to_rung] = counts.get(t.to_rung, 0) + 1
        return counts

    def recovery_path(self, kernel: str, iteration: int | None = None) -> list[str]:
        """The rung sequence one kernel walked (optionally in one iteration)."""
        path: list[str] = []
        for t in self.transitions:
            if t.kernel != kernel:
                continue
            if iteration is not None and t.iteration != iteration:
                continue
            if not path:
                path.append(t.from_rung)
            path.append(t.to_rung)
        return path

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "iterations": [r.to_dict() for r in self.iterations],
            "faults": [f.to_dict() for f in self.faults],
            "transitions": [t.to_dict() for t in self.transitions],
            "retries": self.retries,
            "backoff_total_us": self.backoff_total_us,
            "replans": self.replans,
            "membership_changes": [m.to_dict() for m in self.membership_changes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        return cls(
            iterations=[IterationRecord.from_dict(r) for r in data.get("iterations", [])],
            faults=[FaultEvent.from_dict(f) for f in data.get("faults", [])],
            transitions=[LadderTransition.from_dict(t) for t in data.get("transitions", [])],
            retries=int(data.get("retries", 0)),
            backoff_total_us=float(data.get("backoff_total_us", 0.0)),
            replans=int(data.get("replans", 0)),
            membership_changes=[
                MembershipChange.from_dict(m) for m in data.get("membership_changes", [])
            ],
        )

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One human-readable paragraph for CLI output."""
        lines = [
            f"iterations: {self.num_iterations} "
            f"({self.degraded_iterations} degraded), "
            f"mean iteration {self.mean_iteration_us:.1f} us",
            f"faults: {self.num_faults} ({self.fault_rate:.2f}/iter)"
            + (f" by kind {self.faults_by_kind()}" if self.faults else ""),
            f"retries: {self.retries}, total backoff {self.backoff_total_us:.1f} us, "
            f"total recovery {self.total_recovery_us:.1f} us",
            f"ladder demotions: {self.rungs_reached() or 'none'}",
            f"replans: {self.replans}",
        ]
        if self.membership_changes:
            last = self.membership_changes[-1]
            lines.append(
                f"membership changes: {len(self.membership_changes)} "
                f"(fleet now {last.survivors} GPU{'s' if last.survivors != 1 else ''}, "
                f"{sum(m.moved_bytes for m in self.membership_changes) / 1e6:.1f} MB resharded)"
            )
        return "\n".join(lines)
