"""Retry policy: exponential backoff with per-stage deadlines.

A failed kernel is retried in place before any demotion, but retries are
not free: each failed attempt wastes the kernel's own wall time, and each
backoff pause stalls the GPU's iteration (the cluster is bulk-synchronous,
so one recovering GPU stalls them all). The per-stage deadline caps how
much recovery time a single placement may burn relative to its host
stage's overlapping capacity -- beyond it the runtime stops retrying and
demotes down the degradation ladder instead, mirroring how tf.data-service
style pipelines bound head-of-line blocking from a sick worker.

Two mechanisms bound *correlated* fault bursts (many kernels failing in
the same window, as a forge-generated fault storm produces):

- **Deterministic jitter**: with ``jitter_fraction > 0`` each backoff
  pause is perturbed by a pure function of ``(token, attempt)``, so
  co-failing kernels decorrelate their retry pressure instead of hammering
  the device in lockstep -- while the same run replays bit-identically.
- **Per-epoch retry budget**: ``retry_budget_per_epoch`` caps the total
  retry attempts charged against one plan epoch. A storm drains the budget
  and every further failure demotes down the ladder immediately --
  deterministic exhaustion instead of unbounded retry-spinning. The budget
  refills when a replan installs a new epoch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for one placement rung.

    ``max_attempts`` bounds retries of the same placement;
    ``stage_deadline_fraction`` additionally bounds the *time* spent
    recovering at a stage to a fraction of that stage's duration, whichever
    limit hits first. ``jitter_fraction`` spreads each backoff pause by up
    to that fraction of its nominal value (deterministically, keyed by the
    caller's ``token``), and ``retry_budget_per_epoch`` (0 = unlimited)
    caps total retries per plan epoch across all kernels.
    """

    max_attempts: int = 2
    base_backoff_us: float = 25.0
    backoff_multiplier: float = 2.0
    max_backoff_us: float = 5_000.0
    stage_deadline_fraction: float = 2.0
    jitter_fraction: float = 0.0
    retry_budget_per_epoch: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be non-negative")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.stage_deadline_fraction <= 0:
            raise ValueError("stage_deadline_fraction must be positive")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.retry_budget_per_epoch < 0:
            raise ValueError("retry_budget_per_epoch must be non-negative")

    def backoff_us(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), capped and jittered.

        ``token`` identifies the retrying site (kernel/GPU/iteration); two
        sites backing off from a correlated burst draw different jitter, a
        replay of the same site draws the same. With ``jitter_fraction=0``
        the jitter RNG is never constructed and the value matches the
        pre-jitter policy exactly.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        nominal = min(
            self.max_backoff_us, self.base_backoff_us * self.backoff_multiplier**attempt
        )
        if self.jitter_fraction <= 0.0 or nominal <= 0.0:
            return nominal
        # String seeding survives PYTHONHASHSEED, matching the fault
        # injector's determinism contract.
        u = random.Random(f"rap-retry:{token}:{attempt}").random()
        return nominal * (1.0 + self.jitter_fraction * (2.0 * u - 1.0))

    def stage_deadline_us(self, stage_duration_us: float) -> float:
        """Maximum recovery wall time budgeted against one stage."""
        return self.stage_deadline_fraction * max(0.0, stage_duration_us)

    def attempts_within(
        self, stage_duration_us: float, attempt_cost_us: float, token: str = ""
    ) -> int:
        """How many retry attempts fit the stage deadline.

        Each attempt costs one wasted kernel run plus its (jittered)
        backoff pause; the count is clipped to ``max_attempts``.
        """
        deadline = self.stage_deadline_us(stage_duration_us)
        spent = 0.0
        attempts = 0
        while attempts < self.max_attempts:
            cost = attempt_cost_us + self.backoff_us(attempts, token)
            if spent + cost > deadline:
                break
            spent += cost
            attempts += 1
        return attempts


DEFAULT_RETRY_POLICY = RetryPolicy()
