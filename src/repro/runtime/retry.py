"""Retry policy: exponential backoff with per-stage deadlines.

A failed kernel is retried in place before any demotion, but retries are
not free: each failed attempt wastes the kernel's own wall time, and each
backoff pause stalls the GPU's iteration (the cluster is bulk-synchronous,
so one recovering GPU stalls them all). The per-stage deadline caps how
much recovery time a single placement may burn relative to its host
stage's overlapping capacity -- beyond it the runtime stops retrying and
demotes down the degradation ladder instead, mirroring how tf.data-service
style pipelines bound head-of-line blocking from a sick worker.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for one placement rung.

    ``max_attempts`` bounds retries of the same placement;
    ``stage_deadline_fraction`` additionally bounds the *time* spent
    recovering at a stage to a fraction of that stage's duration, whichever
    limit hits first.
    """

    max_attempts: int = 2
    base_backoff_us: float = 25.0
    backoff_multiplier: float = 2.0
    max_backoff_us: float = 5_000.0
    stage_deadline_fraction: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be non-negative")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.stage_deadline_fraction <= 0:
            raise ValueError("stage_deadline_fraction must be positive")

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.max_backoff_us, self.base_backoff_us * self.backoff_multiplier**attempt)

    def stage_deadline_us(self, stage_duration_us: float) -> float:
        """Maximum recovery wall time budgeted against one stage."""
        return self.stage_deadline_fraction * max(0.0, stage_duration_us)

    def attempts_within(self, stage_duration_us: float, attempt_cost_us: float) -> int:
        """How many retry attempts fit the stage deadline.

        Each attempt costs one wasted kernel run plus its backoff pause;
        the count is clipped to ``max_attempts``.
        """
        deadline = self.stage_deadline_us(stage_duration_us)
        spent = 0.0
        attempts = 0
        while attempts < self.max_attempts:
            cost = attempt_cost_us + self.backoff_us(attempts)
            if spent + cost > deadline:
                break
            spent += cost
            attempts += 1
        return attempts


DEFAULT_RETRY_POLICY = RetryPolicy()
