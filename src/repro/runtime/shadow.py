"""Shadow planning: guarded plan promotion with automatic rollback.

The drift watchdog and the calibration loop (§10, §13) are *edge*
triggers: when they fire, the runtime swaps plans blind, trusting that a
freshly searched plan is better than the stale one. This module turns
that one-shot replan into a continuous, guarded optimization loop
(DESIGN.md §15): while :class:`~repro.runtime.executor.FaultTolerantRuntime`
executes the live plan, a :class:`ShadowPlanner` keeps a replay window of
recent iteration conditions (uniform drift scale, per-op drift factors,
measured latencies), periodically searches a candidate plan against the
live calibrated costs, and scores the candidate *in gpusim shadow mode*
-- both plans simulated like-for-like under the recorded window
conditions via :meth:`repro.core.RapPlanner.evaluate_scaled` -- without
perturbing the live run.

A candidate is promoted only when its predicted exposed-latency win
clears a guardrail::

    win      = (baseline_exposed - candidate_exposed) / baseline_exposed
    required = promote_margin (+ hysteresis after a rollback)
    promote  = baseline_exposed > 0 and win >= required

The hysteresis band widens the bar after a rollback so a marginal
candidate cannot flap the plan back and forth; a cooldown separates
consecutive promotion attempts.

Promotion is transactional. The runtime seals a pinned *rollback anchor*
checkpoint of the pre-swap state, journals a ``promotion`` record, swaps
plans, and enters **probation**: for ``probation_iters`` iterations the
realized iteration latency is compared against both the pre-promotion
measured baseline and the candidate's own prediction. If the running
mean regresses past ``rollback_threshold`` over either reference, the
plan is rolled back to the anchor automatically; otherwise the promotion
commits. Either way a ``promotion_result`` record closes the
transaction. The drift watchdog is suppressed during probation so the
two replan triggers cannot race.

Every decision here is a pure function of recorded observations, so
promotions and rollbacks replay bit-identically under a fixed seed and
across checkpoint restore (the full state machine rides in
:meth:`ShadowPlanner.state_dict`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "PROBATION_ABORTED",
    "PROBATION_COMMITTED",
    "PROBATION_ROLLED_BACK",
    "PROBATION_OUTCOMES",
    "CandidateVerdict",
    "ShadowConfig",
    "ShadowObservation",
    "ShadowPlanner",
]

#: Probation outcomes recorded in ``promotion_result`` journal records.
PROBATION_COMMITTED = "committed"
PROBATION_ROLLED_BACK = "rolled_back"
PROBATION_ABORTED = "aborted"
PROBATION_OUTCOMES = (PROBATION_COMMITTED, PROBATION_ROLLED_BACK, PROBATION_ABORTED)


@dataclass(frozen=True)
class ShadowConfig:
    """Guardrail and pacing knobs of the shadow promotion loop.

    ``promote_margin`` is the minimum predicted exposed-latency win;
    ``hysteresis`` is added to it after a rollback until a promotion
    commits. ``rollback_threshold`` is the tolerated realized regression
    during the ``probation_iters``-iteration probation window.
    ``eval_every`` paces trigger-free candidate searches (0 = only on
    drift/watchdog triggers); ``window`` is the number of recorded
    iterations a candidate is scored over; ``cooldown_iters`` separates
    a probation outcome from the next candidate evaluation.
    """

    promote_margin: float = 0.10
    hysteresis: float = 0.05
    probation_iters: int = 5
    rollback_threshold: float = 0.10
    eval_every: int = 5
    window: int = 4
    cooldown_iters: int = 5

    def __post_init__(self) -> None:
        if self.promote_margin <= 0:
            raise ValueError("promote_margin must be positive")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        if self.probation_iters < 1:
            raise ValueError("probation_iters must be >= 1")
        if self.rollback_threshold <= 0:
            raise ValueError("rollback_threshold must be positive")
        if self.eval_every < 0:
            raise ValueError("eval_every must be >= 0")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cooldown_iters < 0:
            raise ValueError("cooldown_iters must be >= 0")

    def to_dict(self) -> dict:
        return {
            "promote_margin": self.promote_margin,
            "hysteresis": self.hysteresis,
            "probation_iters": self.probation_iters,
            "rollback_threshold": self.rollback_threshold,
            "eval_every": self.eval_every,
            "window": self.window,
            "cooldown_iters": self.cooldown_iters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShadowConfig":
        return cls(
            promote_margin=float(data.get("promote_margin", 0.10)),
            hysteresis=float(data.get("hysteresis", 0.05)),
            probation_iters=int(data.get("probation_iters", 5)),
            rollback_threshold=float(data.get("rollback_threshold", 0.10)),
            eval_every=int(data.get("eval_every", 5)),
            window=int(data.get("window", 4)),
            cooldown_iters=int(data.get("cooldown_iters", 5)),
        )


@dataclass(frozen=True)
class ShadowObservation:
    """One live iteration's conditions and outcome, as the window sees it.

    ``scale`` is the runtime's uniform drift relative to the active plan
    and ``drift_factors`` the per-op-type injected drift at this
    iteration -- together they let a candidate be re-simulated under the
    exact regime the live plan was measured in.
    """

    iteration: int
    plan_epoch: int
    scale: float
    drift_factors: dict
    exposed_us: float
    iteration_us: float

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "plan_epoch": self.plan_epoch,
            "scale": self.scale,
            "drift_factors": dict(sorted(self.drift_factors.items())),
            "exposed_us": self.exposed_us,
            "iteration_us": self.iteration_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShadowObservation":
        return cls(
            iteration=int(data["iteration"]),
            plan_epoch=int(data["plan_epoch"]),
            scale=float(data["scale"]),
            drift_factors={str(k): float(v) for k, v in data.get("drift_factors", {}).items()},
            exposed_us=float(data["exposed_us"]),
            iteration_us=float(data["iteration_us"]),
        )


@dataclass(frozen=True)
class CandidateVerdict:
    """The guardrail's ruling on one shadow candidate."""

    iteration: int
    reason: str
    baseline_exposed_us: float
    candidate_exposed_us: float
    predicted_win: float
    required_win: float
    promote: bool

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "reason": self.reason,
            "baseline_exposed_us": round(self.baseline_exposed_us, 3),
            "candidate_exposed_us": round(self.candidate_exposed_us, 3),
            "predicted_win": round(self.predicted_win, 6),
            "required_win": round(self.required_win, 6),
            "promote": self.promote,
        }


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass
class ShadowPlanner:
    """The shadow promotion state machine (idle -> probation -> outcome).

    Owns the replay window, the guardrail arithmetic, the probation
    monitor, and the rollback anchor payload; the runtime owns the plan
    swap itself (:meth:`FaultTolerantRuntime._shadow_step`). Everything
    mutable serializes via :meth:`state_dict` so a resumed run replays
    the identical promotion/rollback trajectory.
    """

    config: ShadowConfig = field(default_factory=ShadowConfig)
    candidates_evaluated: int = 0
    promotions: int = 0
    commits: int = 0
    rollbacks: int = 0
    aborts: int = 0
    suppressed_triggers: int = 0
    pending_trigger: str | None = None
    last_predicted_win: float | None = None
    last_realized_win: float | None = None
    _window: deque = field(default_factory=deque, repr=False)
    _cooldown_until: int = 0
    _post_rollback: bool = False
    _probation: dict | None = None

    # ------------------------------------------------------------------
    # Observation and pacing

    def observe(self, obs: ShadowObservation) -> str | None:
        """Feed one completed live iteration; return the required action.

        Returns ``"rollback"`` when the probation monitor breaches,
        ``"commit"`` when probation completes clean, else ``None``.
        """
        self._window.append(obs)
        while len(self._window) > self.config.window:
            self._window.popleft()
        if self._probation is None:
            return None
        probation = self._probation
        probation["observed"].append(
            {"exposed_us": obs.exposed_us, "iteration_us": obs.iteration_us}
        )
        mean_iter = _mean(o["iteration_us"] for o in probation["observed"])
        limit = 1.0 + self.config.rollback_threshold
        regressed = (
            mean_iter > limit * probation["predicted_iteration_us"]
            or mean_iter > limit * probation["baseline_iteration_us"]
        )
        if regressed:
            return PROBATION_ROLLED_BACK
        if len(probation["observed"]) >= self.config.probation_iters:
            return PROBATION_COMMITTED
        return None

    def note_trigger(self, iteration: int, source: str) -> None:
        """Route a drift/watchdog firing into the guarded loop.

        During probation the trigger is swallowed (the suppression the
        tentpole requires: the two replan paths must not race); otherwise
        it requests a candidate evaluation at this iteration's shadow
        step, ahead of the normal cadence.
        """
        if self._probation is not None:
            self.suppressed_triggers += 1
            return
        if self.pending_trigger is None:
            self.pending_trigger = source

    def window_for_epoch(self, plan_epoch: int) -> list[ShadowObservation]:
        """Window entries measured under the given plan epoch, oldest first."""
        return [o for o in self._window if o.plan_epoch == plan_epoch]

    def window_ready(self, plan_epoch: int) -> bool:
        return len(self.window_for_epoch(plan_epoch)) >= self.config.window

    def wants_candidate(self, iteration: int, plan_epoch: int) -> bool:
        """Should the runtime search and score a candidate this iteration?"""
        if self._probation is not None or iteration < self._cooldown_until:
            return False
        if not self.window_ready(plan_epoch):
            return False
        if self.pending_trigger is not None:
            return True
        every = self.config.eval_every
        return every > 0 and (iteration + 1) % every == 0

    # ------------------------------------------------------------------
    # Guardrail

    @property
    def required_win(self) -> float:
        """The live promotion bar: margin, plus hysteresis after a rollback."""
        extra = self.config.hysteresis if self._post_rollback else 0.0
        return self.config.promote_margin + extra

    def judge(
        self,
        iteration: int,
        baseline_exposed_us: float,
        candidate_exposed_us: float,
        reason: str,
    ) -> CandidateVerdict:
        """Score one candidate against the guardrail; consumes the trigger."""
        self.candidates_evaluated += 1
        self.pending_trigger = None
        required = self.required_win
        baseline_exposed_us = float(baseline_exposed_us)
        candidate_exposed_us = float(candidate_exposed_us)
        if baseline_exposed_us > 0:
            win = (baseline_exposed_us - candidate_exposed_us) / baseline_exposed_us
        else:
            win = 0.0  # nothing exposed: there is nothing to improve
        promote = bool(baseline_exposed_us > 0 and win >= required)
        self.last_predicted_win = win
        return CandidateVerdict(
            iteration=iteration,
            reason=reason,
            baseline_exposed_us=baseline_exposed_us,
            candidate_exposed_us=candidate_exposed_us,
            predicted_win=win,
            required_win=required,
            promote=promote,
        )

    # ------------------------------------------------------------------
    # Probation

    @property
    def in_probation(self) -> bool:
        return self._probation is not None

    @property
    def anchor(self) -> dict | None:
        """The rollback anchor payload of the open probation, if any."""
        return self._probation["anchor"] if self._probation is not None else None

    def begin_probation(
        self,
        iteration: int,
        verdict: CandidateVerdict,
        *,
        predicted_exposed_us: float,
        predicted_iteration_us: float,
        baseline_iteration_us: float,
        from_epoch: int,
        to_epoch: int,
        anchor: dict,
    ) -> None:
        """Enter probation for a just-promoted candidate."""
        if self._probation is not None:
            raise RuntimeError("probation already open; commit or roll back first")
        self.promotions += 1
        self._probation = {
            "start_iteration": iteration,
            "reason": verdict.reason,
            "predicted_win": verdict.predicted_win,
            "required_win": verdict.required_win,
            "baseline_exposed_us": verdict.baseline_exposed_us,
            "baseline_iteration_us": baseline_iteration_us,
            "predicted_exposed_us": predicted_exposed_us,
            "predicted_iteration_us": predicted_iteration_us,
            "from_epoch": from_epoch,
            "to_epoch": to_epoch,
            "anchor": anchor,
            "observed": [],
        }

    def finish_probation(self, outcome: str, iteration: int) -> dict:
        """Close the open probation; returns the ``promotion_result`` payload.

        The caller (the runtime) performs the actual rollback/commit
        side effects; this just settles the state machine: counters, the
        hysteresis flag, the cooldown, and the realized-vs-predicted win.
        """
        if self._probation is None:
            raise RuntimeError("no open probation to finish")
        if outcome not in PROBATION_OUTCOMES:
            raise ValueError(f"unknown probation outcome {outcome!r}")
        probation, self._probation = self._probation, None
        observed = probation["observed"]
        realized_exposed = _mean(o["exposed_us"] for o in observed) if observed else None
        realized_iter = _mean(o["iteration_us"] for o in observed) if observed else None
        baseline = probation["baseline_exposed_us"]
        realized_win = (
            (baseline - realized_exposed) / baseline
            if realized_exposed is not None and baseline > 0
            else None
        )
        if outcome == PROBATION_COMMITTED:
            self.commits += 1
            self._post_rollback = False
        elif outcome == PROBATION_ROLLED_BACK:
            self.rollbacks += 1
            self._post_rollback = True
        else:
            self.aborts += 1
        self._cooldown_until = iteration + 1 + self.config.cooldown_iters
        self.last_realized_win = realized_win
        return {
            "outcome": outcome,
            "iteration": iteration,
            "start_iteration": probation["start_iteration"],
            "reason": probation["reason"],
            "from_epoch": probation["from_epoch"],
            "to_epoch": probation["to_epoch"],
            "probation_len": len(observed),
            "predicted_win": probation["predicted_win"],
            "realized_win": realized_win,
            "baseline_exposed_us": baseline,
            "baseline_iteration_us": probation["baseline_iteration_us"],
            "predicted_exposed_us": probation["predicted_exposed_us"],
            "predicted_iteration_us": probation["predicted_iteration_us"],
            "realized_exposed_us": realized_exposed,
            "realized_iteration_us": realized_iter,
            "anchor": probation["anchor"],
        }

    # ------------------------------------------------------------------
    # Introspection

    def counters(self) -> dict:
        """The rap_shadow_* counter values as plain ints (CLI + tests)."""
        return {
            "candidates_evaluated": self.candidates_evaluated,
            "promotions": self.promotions,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "aborts": self.aborts,
            "suppressed_triggers": self.suppressed_triggers,
        }

    # ------------------------------------------------------------------
    # Checkpointing

    def state_dict(self) -> dict:
        """Everything needed to resume the state machine bit-identically."""
        state = {
            "config": self.config.to_dict(),
            "counters": self.counters(),
            "window": [o.to_dict() for o in self._window],
            "pending_trigger": self.pending_trigger,
            "cooldown_until": self._cooldown_until,
            "post_rollback": self._post_rollback,
            "last_predicted_win": self.last_predicted_win,
            "last_realized_win": self.last_realized_win,
        }
        if self._probation is not None:
            state["probation"] = self._probation
        return state

    def load_state(self, state: dict) -> None:
        counters = state.get("counters", {})
        self.candidates_evaluated = int(counters.get("candidates_evaluated", 0))
        self.promotions = int(counters.get("promotions", 0))
        self.commits = int(counters.get("commits", 0))
        self.rollbacks = int(counters.get("rollbacks", 0))
        self.aborts = int(counters.get("aborts", 0))
        self.suppressed_triggers = int(counters.get("suppressed_triggers", 0))
        self._window = deque(
            ShadowObservation.from_dict(o) for o in state.get("window", ())
        )
        trigger = state.get("pending_trigger")
        self.pending_trigger = str(trigger) if trigger is not None else None
        self._cooldown_until = int(state.get("cooldown_until", 0))
        self._post_rollback = bool(state.get("post_rollback", False))
        self.last_predicted_win = state.get("last_predicted_win")
        self.last_realized_win = state.get("last_realized_win")
        self._probation = state.get("probation")
